//! The §II measurement study, re-run against a synthetic Internet.
//!
//! The paper measured the real Internet: 16/30 pool nameservers fragment to
//! MTU 548 without DNSSEC, 90% of resolvers accept fragments (64% even
//! 68-byte ones), 14% are triggerable via third parties. Here the same
//! *apparatus* (ICMP-forced-fragmentation probes, fragment-delivery probes)
//! scans a population whose behaviour distribution is calibrated to those
//! marginals — and recovers them from behaviour alone.
//!
//! Run with: `cargo run --example measurement_study`

use chronos_pitfalls::experiments::run_e7;
use chronos_pitfalls::montecarlo::{default_threads, run_grid};
use chronos_pitfalls::study::{probe_nameserver_fragments, NameserverProfile};

fn main() {
    let result = run_e7(7, 1000);
    println!("{}", result.table());

    // Re-run the whole scan across independent seeds through the sweep
    // engine: the marginals should be stable properties of the apparatus,
    // not artefacts of one lucky population draw.
    let seeds: Vec<u64> = (0..8u64).map(|i| 100 + i).collect();
    let sweeps = run_grid(&seeds, default_threads(), 1, |&seed, _, _| {
        let r = run_e7(seed, 1000).measured;
        (r.resolvers_accept_any_pct, r.resolvers_accept_tiny_pct)
    });
    let flat: Vec<(f64, f64)> = sweeps.into_iter().flatten().collect();
    let mean = |sel: fn(&(f64, f64)) -> f64| flat.iter().map(sel).sum::<f64>() / flat.len() as f64;
    println!(
        "stability across {} seeds (sweep engine, {} threads): accept-any {:.1}%, accept-tiny {:.1}%\n",
        flat.len(),
        default_threads(),
        mean(|r| r.0),
        mean(|r| r.1),
    );

    println!("how the nameserver probe works (three behaviours):\n");
    for (label, profile) in [
        (
            "honours ICMP down to 296  ",
            NameserverProfile {
                accepts_pmtu_updates: true,
                min_accepted_pmtu: 296,
                dnssec: false,
            },
        ),
        (
            "clamps PMTU at 548        ",
            NameserverProfile {
                accepts_pmtu_updates: true,
                min_accepted_pmtu: 548,
                dnssec: true,
            },
        ),
        (
            "ignores ICMP frag-needed  ",
            NameserverProfile {
                accepts_pmtu_updates: false,
                min_accepted_pmtu: 1500,
                dnssec: false,
            },
        ),
    ] {
        let fragments = probe_nameserver_fragments(profile, 1);
        println!(
            "  {label} -> {}",
            if fragments {
                "fragments at 548 (exploitable unless DNSSEC-signed)"
            } else {
                "never fragments (immune to defrag poisoning)"
            }
        );
    }
}
