//! The §II measurement study, re-run against a synthetic Internet.
//!
//! The paper measured the real Internet: 16/30 pool nameservers fragment to
//! MTU 548 without DNSSEC, 90% of resolvers accept fragments (64% even
//! 68-byte ones), 14% are triggerable via third parties. Here the same
//! *apparatus* (ICMP-forced-fragmentation probes, fragment-delivery probes)
//! scans a population whose behaviour distribution is calibrated to those
//! marginals — and recovers them from behaviour alone.
//!
//! Run with: `cargo run --example measurement_study`

use chronos_pitfalls::experiments::run_e7;
use chronos_pitfalls::study::{probe_nameserver_fragments, NameserverProfile};

fn main() {
    let result = run_e7(7, 1000);
    println!("{}", result.table());

    println!("how the nameserver probe works (three behaviours):\n");
    for (label, profile) in [
        (
            "honours ICMP down to 296  ",
            NameserverProfile {
                accepts_pmtu_updates: true,
                min_accepted_pmtu: 296,
                dnssec: false,
            },
        ),
        (
            "clamps PMTU at 548        ",
            NameserverProfile {
                accepts_pmtu_updates: true,
                min_accepted_pmtu: 548,
                dnssec: true,
            },
        ),
        (
            "ignores ICMP frag-needed  ",
            NameserverProfile {
                accepts_pmtu_updates: false,
                min_accepted_pmtu: 1500,
                dnssec: false,
            },
        ),
    ] {
        let fragments = probe_nameserver_fragments(profile, 1);
        println!(
            "  {label} -> {}",
            if fragments {
                "fragments at 548 (exploitable unless DNSSEC-signed)"
            } else {
                "never fragments (immune to defrag poisoning)"
            }
        );
    }
}
