//! The population view of the attack (experiment E14).
//!
//! The packet-level examples show one Chronos victim losing its pool to a
//! poisoned resolver cache. This example runs the same story for a whole
//! client *population* behind that resolver: 50 000 lightweight Chronos
//! clients (struct-of-arrays fleet engine, timer-wheel scheduling, the
//! real `chronos::core` decision machinery) boot staggered, gather their
//! pools through one shared cache, and the attacker's single poisoning
//! lands on every one of them. The fleet steps its shards on every
//! available core (`FleetConfig::threads`, plumbed through `run_e14`) —
//! byte-identical to a single-threaded run, just faster.
//!
//! Output: the E14 table (per-variant population outcome), the
//! fraction-of-fleet-shifted-vs-time figure, the offset histogram of
//! the early-poisoning variant — and the E16 cohort sweep: a mixed
//! Chronos/§V-mitigated/plain-NTP population hashed over 8 resolver
//! caches, capture per tier as the attacker's resolver coverage grows.
//!
//! Run with: `cargo run --release --example fleet_attack`

use chronos_pitfalls::experiments::{e14_table, e16_table, run_e14, run_e16};
use chronos_pitfalls::montecarlo::default_threads;
use chronos_pitfalls::report::Series;

fn main() {
    let threads = default_threads();
    let clients = 50_000;
    println!(
        "simulating {clients} Chronos clients per variant on {threads} threads \
         (sharded intra-fleet stepping)...\n"
    );
    let result = run_e14(7, clients, threads);

    println!("{}", e14_table(&result));
    println!("fraction of fleet shifted beyond the 100 ms safety bound vs time:");
    println!("{}", Series::render_columns(&result.series, "t (s)", 20));

    let early = result
        .rows
        .iter()
        .find(|r| r.label.contains("early"))
        .expect("early variant present");
    println!(
        "early-poisoning variant: {} clients poisoned, {} panics, final |offset| histogram:",
        early.report.poisoned_clients, early.report.totals.panics
    );
    for (edge_ns, count) in early.report.histogram.nonzero_bins() {
        let label = if edge_ns == u64::MAX {
            "overflow".to_string()
        } else {
            format!("< {:.3} ms", edge_ns as f64 / 1e6)
        };
        println!("  {label:>14}  {count:>10}");
    }
    println!(
        "\nfleet sweep: {} trials over {} pooled fleet(s); one DNS poisoning,",
        result.stats.trials, result.stats.config_groups
    );
    println!("one resolver cache — and every client behind it inherits the attacker's time.");

    // E16: the same question with a *heterogeneous* population across
    // many resolvers, of which the attacker controls only a fraction.
    let resolvers = 8;
    println!(
        "\nsweeping partial poisoning: 20 000 mixed clients (2:1:1 \
         chronos : §V : plain NTP) over {resolvers} resolvers...\n"
    );
    let e16 = run_e16(7, 20_000, resolvers, threads);
    println!("{}", e16_table(&e16));
    println!("fraction shifted vs fraction of resolvers poisoned, per tier:");
    println!(
        "{}",
        Series::render_columns(&e16.series, "poisoned", resolvers + 1)
    );
    println!(
        "attack reach is the poisoned-resolver share times each tier's \
         vulnerability: stock Chronos\ntracks it 1:1, plain NTP at the \
         fraction that resolved late, the §V tier not at all."
    );
}
