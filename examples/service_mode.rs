//! The population experiments as daemon clients (service mode).
//!
//! `fleet_attack` and `degraded_network` run their fleets batch-style:
//! build, run, print, exit. This example drives the same E16/E17 fleets
//! *through chronosd*: it boots the daemon in-process on a scratch
//! socket, submits both fleets as named jobs over the wire, streams live
//! progress snapshots while they step, pauses the E16 job mid-run,
//! checkpoints it to a file, resumes the checkpoint as a new job, and
//! shows that the resumed report matches a batch run byte for byte —
//! the whole operator loop from `docs/OPERATIONS.md`, minus the
//! terminal.
//!
//! Run with: `cargo run --release --example service_mode`

use std::time::Duration;

use chronosd::json::Json;
use chronosd::render::report_json;
use chronosd::{Client, Daemon};
use fleet::Fleet;

fn main() {
    let mut socket = std::env::temp_dir();
    socket.push(format!("chronosd-example-{}.sock", std::process::id()));
    let daemon = Daemon::bind(&socket).expect("bind scratch socket");
    let server = std::thread::spawn(move || daemon.serve().expect("serve"));
    println!("chronosd up on {}", socket.display());

    let mut ctl = Client::connect(&socket).expect("connect");

    // Submit the two population experiments as named jobs. E16: 2000
    // mixed clients, half the resolver caches poisoned. E17: the same
    // scenario degraded by 5% loss with an outage over every cache.
    for (name, spec) in [
        (
            "e16",
            r#"{"kind":"e16-fleet","seed":7,"clients":2000,"resolvers":4,"poisoned_resolvers":2,"threads":2,"slice_s":500,"pause_at_s":3000}"#,
        ),
        (
            "e17",
            r#"{"kind":"e17-fleet","seed":7,"clients":2000,"resolvers":4,"loss":0.05,"outage_coverage":4,"threads":2,"slice_s":500}"#,
        ),
    ] {
        ctl.request(
            "submit",
            vec![
                ("name".into(), Json::str(name)),
                ("spec".into(), Json::parse(spec).expect("spec literal")),
            ],
        )
        .expect("submit");
        println!("submitted job {name:?}");
    }

    // Live observability: stream E16 snapshots until it pauses.
    let mut watcher = Client::connect(&socket).expect("watch connection");
    let mut event = watcher
        .request("watch", vec![("name".into(), Json::str("e16"))])
        .expect("watch");
    loop {
        let state = event.get("state").and_then(Json::as_str).unwrap_or("?");
        if let Some(p) = event.get("progress") {
            if let (Some(now), Some(frac)) = (
                p.get("now_s").and_then(Json::as_f64),
                p.get("shifted_fraction").and_then(Json::as_f64),
            ) {
                println!("  e16 [{state}] t = {now:>6.0} s, shifted fraction {frac:.3}");
            }
        }
        if event.get("event").and_then(Json::as_str) == Some("end") {
            break;
        }
        event = watcher.read_response().expect("watch stream");
    }

    // Checkpoint the paused job, resume it as a fresh job, let both
    // finish, and compare the resumed report against a batch run.
    let mut ckpt = std::env::temp_dir();
    ckpt.push(format!("chronosd-example-{}.ckpt", std::process::id()));
    let saved = ctl
        .request(
            "checkpoint",
            vec![
                ("name".into(), Json::str("e16")),
                ("path".into(), Json::str(ckpt.display().to_string())),
            ],
        )
        .expect("checkpoint");
    println!(
        "checkpointed e16 at t = 3000 s: {} bytes",
        saved.get("bytes").and_then(Json::as_usize).unwrap_or(0)
    );
    ctl.request(
        "resume",
        vec![
            ("name".into(), Json::str("e16-resumed")),
            ("path".into(), Json::str(ckpt.display().to_string())),
            ("threads".into(), Json::u64(2)),
        ],
    )
    .expect("resume");
    ctl.request("stop", vec![("name".into(), Json::str("e16"))])
        .expect("stop the paused first leg");

    for name in ["e16-resumed", "e17"] {
        ctl.wait_for_state(name, "done", Duration::from_secs(600))
            .expect("job finishes");
        let response = ctl
            .request("report", vec![("name".into(), Json::str(name))])
            .expect("report");
        let report = response.get("report").expect("payload");
        println!(
            "job {name:?} done: final shifted fraction {}",
            report
                .get("final_shifted_fraction")
                .map(Json::render)
                .unwrap_or_default()
        );
        if name == "e16-resumed" {
            let batch = Fleet::new(chronos_pitfalls::experiments::e16_config(7, 2000, 4, 2)).run();
            assert_eq!(
                report.render(),
                report_json(&batch).render(),
                "daemon-resumed report must equal the batch run byte-for-byte"
            );
            println!("  …byte-identical to the batch e16_config run ✓");
        }
    }

    ctl.request("shutdown", Vec::new()).expect("shutdown");
    server.join().expect("daemon exits");
    let _ = std::fs::remove_file(&ckpt);
    println!("daemon shut down cleanly");
}
