//! Quickstart: the paper's attack in ~40 lines.
//!
//! Builds a world with the `pool.ntp.org` infrastructure, a recursive
//! resolver, 120 honest NTP servers, a Chronos client — and an off-path
//! attacker whose DNS poisoning lands at pool-generation round 12. Prints
//! the resulting pool composition and what happens to the victim's clock.
//!
//! Run with: `cargo run --example quickstart`

use attacklab::plan::AttackPlan;
use chronos_pitfalls::experiments::compressed_chronos;
use chronos_pitfalls::scenario::{Scenario, ScenarioConfig};
use netsim::time::SimDuration;

fn main() {
    // The paper's §IV attack: 89 records, TTL 86 401 s, poisoning at round
    // 12 of 24, malicious servers lying by +500 ms. (Pool rounds run every
    // 200 simulated seconds here instead of hourly; the arithmetic is
    // identical and the demo finishes instantly.)
    let plan = AttackPlan::paper_default(SimDuration::from_millis(500));
    let mut scenario = Scenario::build(ScenarioConfig {
        seed: 2020,
        benign_universe: 120,
        chronos: compressed_chronos(24, SimDuration::from_secs(200)),
        attack: Some(plan),
        ..ScenarioConfig::default()
    });

    println!("running Chronos pool generation (24 DNS rounds)...");
    scenario.run_pool_generation(SimDuration::from_hours(3));

    let (benign, malicious) = scenario.chronos_pool_composition();
    println!("pool after generation: {benign} benign + {malicious} malicious servers");
    println!(
        "attacker fraction: {:.1}% (needs 66.7%)",
        100.0 * scenario.attacker_fraction()
    );

    println!("\nletting Chronos synchronise against the captured pool...");
    scenario.run_for(SimDuration::from_secs(600));
    let err_ms = scenario.chronos().offset_from_true(scenario.world.now()) as f64 / 1e6;
    println!("victim clock error vs true time: {err_ms:+.1} ms");
    println!(
        "(panic-mode episodes: {}, accepted updates: {})",
        scenario.chronos().stats().panics,
        scenario.chronos().stats().accepts
    );

    if scenario.attacker_fraction() >= 2.0 / 3.0 && err_ms.abs() > 400.0 {
        println!("\n=> the provably secure client follows the attacker's clock.");
    } else {
        println!("\n=> attack did not complete (unexpected with these parameters).");
    }
}
