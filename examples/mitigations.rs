//! The §V mitigations, evaluated (experiment E8).
//!
//! The paper proposes two pool-generation fixes — accept at most 4
//! addresses per DNS response, and discard responses with suspiciously high
//! TTLs — and then immediately notes their limit: an attacker who hijacks
//! the victim's DNS path for the whole 24-hour generation window (BGP) can
//! serve perfectly inconspicuous responses that are nevertheless 100%
//! malicious.
//!
//! Run with: `cargo run --example mitigations`

use chronos_pitfalls::experiments::{e8_table, run_e8};
use chronos_pitfalls::montecarlo::default_threads;

fn main() {
    let rows = run_e8(11, default_threads());
    println!("{}", e8_table(&rows));
    println!("reading:");
    println!("  - unmitigated: poisoning at round 12 yields the paper's 44 vs 89 capture;");
    println!("  - either mitigation alone stops the single-shot 89-record injection;");
    println!("  - a 24h BGP hijack serving 4 ordinary-looking records per response");
    println!("    defeats both: every pool member is the attacker's. The dependency");
    println!("    on insecure DNS remains — the paper's concluding point.");
}
