//! Figure 1, twice: the pool-capture timeline with (a) oracle poisoning at
//! round 12 — the paper's exact arithmetic — and (b) the full packet-level
//! defragmentation attack, where the poisoning round emerges from ICMP
//! PMTU forcing, IP-ID prediction and fragment pre-planting instead of
//! being assumed.
//!
//! Run with: `cargo run --example attack_timeline`

use chronos_pitfalls::experiments::{run_e1, E1Strategy};

fn main() {
    println!("=== (a) Oracle poisoning at round 12 (paper Figure 1) ===\n");
    let oracle = run_e1(42, E1Strategy::Oracle { round: 12 }, 24);
    println!("{}", oracle.table());
    summary(&oracle);

    println!("\n=== (b) Packet-level defragmentation poisoning ===\n");
    let packets = run_e1(42, E1Strategy::Fragmentation, 24);
    println!("{}", packets.table());
    summary(&packets);
    if let Some(stats) = packets.frag_stats {
        println!(
            "attacker effort: {} probes, {} plant cycles, {} spoofed fragments, {} ICMP",
            stats.probes, stats.plants, stats.fragments_sent, stats.icmp_sent
        );
    }
}

fn summary(result: &chronos_pitfalls::experiments::E1Result) {
    match result.first_malicious_round {
        Some(round) => println!(
            "malicious records entered at round {round}; final attacker share {:.1}% -> attack {}",
            100.0 * result.final_fraction,
            if result.attack_succeeds {
                "SUCCEEDS (>= 2/3)"
            } else {
                "fails (< 2/3)"
            }
        ),
        None => println!("the poison never landed; pool stayed clean"),
    }
}
