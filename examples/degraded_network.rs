//! The attack on a degraded network (experiment E17).
//!
//! `fleet_attack` runs the population attack over a perfect network:
//! every NTP sample arrives, every DNS query resolves. This example
//! degrades it the way real networks degrade — 5 % NTP sample loss,
//! 5 % DNS SERVFAILs, a mid-run outage taking down half the resolver
//! caches for 1 000 s, RFC 8767 serve-stale bridging the gap — and asks
//! whether the faults weaken or *widen* the paper's attack.
//!
//! The answer (printed as the E17 tier table): wider. Lossy rounds
//! starve Chronos' sampler into real reject → panic escalation;
//! serve-stale re-serves the poisoned entry at its short stale TTL,
//! laundering the attacker's day-long TTL past the §V reject-TTL
//! mitigation; and plain-NTP boots that fail during an outage retry
//! with backoff straight into the poison window. The mid-run outage
//! itself leaves no trace — the poisoned entry's day-long TTL keeps
//! every query a cache hit, so only cold (boot-time) caches feel
//! outages. Every fault draw comes from a dedicated per-client
//! substream, so the whole degraded run is byte-identical across
//! thread counts.
//!
//! Run with: `cargo run --release --example degraded_network`

use chronos_pitfalls::experiments::{e17_config, e17_table, run_e17, E17_LOSSES};
use chronos_pitfalls::montecarlo::default_threads;
use chronos_pitfalls::report::{Series, Table};
use fleet::{Fleet, OutageWindow};

fn main() {
    const NS: u64 = 1_000_000_000;
    let threads = default_threads();
    let clients = 50_000;
    let resolvers = 8;
    println!(
        "simulating {clients} mixed clients (2:1:1 chronos : §V : plain NTP) on \
         {threads} threads:\n5% sample loss, 5% SERVFAILs, resolvers 0-3 dark \
         from t = 1000 s to 2000 s,\nserve-stale bridging the outage, every \
         resolver cache poisoned at t = 100 s...\n"
    );
    let mut config = e17_config(7, clients, resolvers, 0.05, 0);
    config.threads = threads;
    // Swap the boot-time outage the E17 grid uses for a mid-run one:
    // half the resolvers dark across rounds ~5-10 of the pool window.
    config.faults.outages = (0..resolvers / 2)
        .map(|_| {
            vec![OutageWindow {
                start_ns: 1_000 * NS,
                duration_ns: 1_000 * NS,
            }]
        })
        .collect();
    let mut fleet = Fleet::new(config);
    let report = fleet.run();

    let mut t = Table::new(
        "E17 — 50k mixed clients under 5% loss + mid-run resolver outage",
        &[
            "tier",
            "clients",
            "shifted %",
            "panics",
            "rejects",
            "pool fails",
            "servfails",
            "outage hits",
            "stale served",
            "boot retries",
            "ntp losses",
        ],
    );
    for tier in &report.tiers {
        t.push_row(vec![
            tier.label.clone(),
            tier.clients.to_string(),
            format!("{:.1}", 100.0 * tier.final_shifted_fraction),
            tier.totals.panics.to_string(),
            tier.totals.rejects.to_string(),
            tier.totals.pool_failures.to_string(),
            tier.faults.dns_servfails.to_string(),
            tier.faults.outage_hits.to_string(),
            tier.faults.stale_served.to_string(),
            tier.faults.boot_retries.to_string(),
            tier.faults.ntp_losses.to_string(),
        ]);
    }
    println!("{t}");
    println!(
        "note the empty outage columns: the mid-run outage leaves no trace, \
         because every\nquery during it hits the still-valid poisoned entry \
         (TTL ~1 day) — resilience\nironically bought by the attack itself. \
         Outages only bite cold caches, which is\nwhy the grid below places \
         them over the boot window.\n"
    );
    println!(
        "fleet-wide: {:.1}% shifted, {} poisoned, {} panic episodes, {} NTP \
         samples lost,\n{} SERVFAILs, {} stale answers served, {} boot retries\n",
        100.0 * report.final_shifted_fraction,
        report.poisoned_clients,
        report.totals.panics,
        report.faults.ntp_losses,
        report.faults.dns_servfails,
        report.faults.stale_served,
        report.faults.boot_retries,
    );

    // The full E17 grid (loss × outage coverage) at survey scale.
    println!("sweeping the loss × outage grid at 5 000 clients per fleet...\n");
    let grid = run_e17(7, 5_000, 4, threads);
    println!("{}", e17_table(&grid));
    println!("per-tier capture/panic/retry curves over the loss axis:");
    println!(
        "{}",
        Series::render_columns(&grid.series, "loss", E17_LOSSES.len())
    );
    println!(
        "a degraded network *widens* the attack: serve-stale launders the \
         poison's day-long TTL\npast the §V mitigation, and outage retries walk \
         plain-NTP boots into the poison window."
    );
}
