//! The headline comparison (experiment E6): clock error over time for a
//! plain 4-server NTP client and a Chronos client, with and without the
//! DNS attack.
//!
//! Unattacked, both stay within milliseconds of true time. Attacked through
//! DNS, the plain client falls only if its *single* bootstrap lookup is
//! poisoned, while Chronos — with 24 lookups, 12 of them fatal — hands the
//! attacker a far wider window and ends up equally captured: +500 ms.
//!
//! Run with: `cargo run --example plain_ntp_vs_chronos`

use chronos_pitfalls::report::Series;
use chronos_pitfalls::shift::{run_time_shift, TimeShiftConfig};

fn main() {
    // Compressed time base (200 s per "hour"); pass `--full` for the
    // 36-hour real-cadence run (a few seconds of wall clock).
    let full = std::env::args().any(|a| a == "--full");
    let config = if full {
        TimeShiftConfig::default()
    } else {
        TimeShiftConfig::compressed(42)
    };
    println!(
        "simulating {} of pool generation + sync (attacker shift +500 ms)...\n",
        if full { "36 hours" } else { "compressed hours" }
    );
    let result = run_time_shift(&config);

    println!("clock error vs true time [ms] by simulated hour:\n");
    let series = [
        result.plain_benign.clone(),
        result.chronos_benign.clone(),
        result.plain_attacked.clone(),
        result.chronos_attacked.clone(),
    ];
    println!("{}", Series::render_columns(&series, "hour", 24));

    let (benign, malicious) = result.attacked_pool;
    println!("attacked Chronos pool: {benign} benign + {malicious} malicious");
    println!(
        "final clock error: plain(attacked) = {:.0} ms, chronos(attacked) = {:.0} ms",
        result.plain_final_error_ms, result.chronos_final_error_ms
    );
}
