//! The Chronos security bound and its collapse (experiment E5).
//!
//! Chronos' NDSS'18 analysis: an attacker controlling a small fraction of
//! the pool needs years of expected effort to shift a client by 100 ms,
//! because it must win the sampling lottery repeatedly. This example sweeps
//! the attacker's pool fraction and prints the expected effort — showing
//! the cliff at 2/3, which is precisely where the DNS attack teleports the
//! adversary: 89 of 133 = 66.9%.
//!
//! Run with: `cargo run --example security_bound`

use chronos::analysis::{monte_carlo_sample_controlled, prob_sample_controlled};
use chronos_pitfalls::experiments::{e5_table, run_e5};
use netsim::rng::SimRng;

fn main() {
    // Pre-attack pool: n = 96 (the honest 24x4). Post-attack: n = 133.
    let fractions = [0.05, 0.10, 0.20, 0.25, 0.33, 0.45, 0.55, 0.60, 0.65, 0.669, 0.75];
    for n in [96usize, 133] {
        let rows = run_e5(n, 15, 5, &fractions);
        println!("{}", e5_table(n, &rows));
    }

    // Cross-check the hypergeometric engine behind the table.
    let mut rng = SimRng::seed_from(9);
    let exact = prob_sample_controlled(133, 89, 15, 5);
    let mc = monte_carlo_sample_controlled(133, 89, 15, 5, 50_000, &mut rng);
    println!("sample-capture probability at the paper's 89/133:");
    println!("  closed form  {exact:.4}");
    println!("  monte carlo  {mc:.4}   (50k trials)");
    println!("\nat 2/3 the attacker also owns panic mode deterministically —");
    println!("expected time-to-shift collapses from years to one poll.");
}
