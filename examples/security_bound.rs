//! The Chronos security bound and its collapse (experiment E5).
//!
//! Chronos' NDSS'18 analysis: an attacker controlling a small fraction of
//! the pool needs years of expected effort to shift a client by 100 ms,
//! because it must win the sampling lottery repeatedly. This example sweeps
//! the attacker's pool fraction and prints the expected effort — showing
//! the cliff at 2/3, which is precisely where the DNS attack teleports the
//! adversary: 89 of 133 = 66.9%.
//!
//! Both sweeps run through the `core::montecarlo` grid engine: the
//! analytic table via `run_e5` (a 1-trial-per-point `run_grid`), and the
//! hypergeometric cross-check as a parallel Monte-Carlo grid with per-seed
//! determinism via `trial_seed`.
//!
//! Run with: `cargo run --example security_bound`

use chronos::analysis::{prob_sample_controlled, sample_is_controlled};
use chronos_pitfalls::experiments::{e5_series_from_rows, e5_table, run_e5};
use chronos_pitfalls::montecarlo::{default_threads, run_grid, success_rates, trial_seed};
use chronos_pitfalls::report::Series;
use netsim::rng::SimRng;

fn main() {
    let threads = default_threads();
    // Pre-attack pool: n = 96 (the honest 24x4). Post-attack: n = 133.
    let fractions = [
        0.05, 0.10, 0.20, 0.25, 0.33, 0.45, 0.55, 0.60, 0.65, 0.669, 0.75,
    ];
    for n in [96usize, 133] {
        // One sweep yields the table and the figure-shaped series.
        let rows = run_e5(n, 15, 5, &fractions, threads);
        println!("{}", e5_table(n, &rows));
        println!(
            "{}",
            Series::render_columns(&e5_series_from_rows(&rows), "frac", fractions.len())
        );
    }

    // Cross-check the hypergeometric engine behind the table: one grid
    // point per malicious count, 50k trials each, over all cores.
    let points = [(133usize, 85usize), (133, 89), (133, 93)];
    let outcomes = run_grid(&points, threads, 50_000, |&(n, k), point, t| {
        let mut rng = SimRng::seed_from(trial_seed(9 ^ ((point as u64) << 32), t));
        sample_is_controlled(n, k, 15, 5, &mut rng)
    });
    println!("sample-capture probability around the paper's 89/133 (50k trials/point):");
    for (&(n, k), rate) in points.iter().zip(success_rates(&outcomes)) {
        let exact = prob_sample_controlled(n, k, 15, 5);
        println!(
            "  {k:>3}/{n}  closed form {exact:.4}   monte carlo {:.4} ± {:.4}",
            rate.rate, rate.ci95_half_width
        );
    }
    println!("\nat 2/3 the attacker also owns panic mode deterministically —");
    println!("expected time-to-shift collapses from years to one poll.");
}
