//! # chronos-ntp-repro
//!
//! Reproduction of *"Pitfalls of Provably Secure Systems in the Internet:
//! The Case of Chronos-NTP"* (Jeitner, Shulman, Waidner; DSN-S 2020,
//! arXiv:2010.08460), as a Rust workspace:
//!
//! | crate | role |
//! |-------|------|
//! | [`netsim`] | deterministic discrete-event IPv4/UDP/ICMP simulator with fragmentation |
//! | [`dnslab`] | DNS wire format, authoritative servers, caching resolvers |
//! | [`ntplab`] | NTPv4, the ntpd selection pipeline, the plain-NTP baseline client |
//! | [`chronos`] | the Chronos client (NDSS'18), its security analysis and §V mitigations |
//! | [`attacklab`] | defragmentation poisoning, BGP MitM, blind spoofing, triggering, farms |
//! | [`fleet`] | population-scale fleets: 10⁵–10⁶ lightweight Chronos clients in one world |
//! | [`chronos_pitfalls`] | scenarios, analytic models and the E1–E14 experiment runners |
//!
//! This facade re-exports all member crates; the runnable entry points are
//! the examples (`cargo run --example quickstart`) and the benches
//! (`cargo bench`), each regenerating one of the paper's tables or figures.
//!
//! ```
//! use chronos_ntp_repro::chronos_pitfalls::poolmodel::{
//!     composition_after_poison, PoolModelParams,
//! };
//!
//! // The paper's §IV arithmetic: poisoning at round 12 leaves 44 benign
//! // servers against 89 malicious ones — a 2/3 attacker majority.
//! let row = composition_after_poison(PoolModelParams::default(), 12);
//! assert_eq!((row.benign, row.malicious), (44, 89));
//! assert!(row.controls_panic);
//! ```
//!
//! *(Workspace map: see `ARCHITECTURE.md` at the repo root — crate-by-crate
//! architecture, the data-flow diagram, and the determinism contract.)*

pub use attacklab;
pub use chronos;
pub use chronos_pitfalls;
pub use dnslab;
pub use fleet;
pub use netsim;
pub use ntplab;
