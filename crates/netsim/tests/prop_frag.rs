//! Property tests: fragmentation, reassembly and checksum invariants.

use bytes::Bytes;
use netsim::frag::{OverlapPolicy, ReassemblyCache, ReassemblyOutcome};
use netsim::ip::{IpProto, Ipv4Packet};
use netsim::time::SimTime;
use netsim::udp::{checksum_compensation, fold_checksum, ones_complement_sum, UdpDatagram};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn packet(payload: Vec<u8>, id: u16) -> Ipv4Packet {
    let mut p = Ipv4Packet::new(
        Ipv4Addr::new(10, 0, 0, 1),
        Ipv4Addr::new(10, 0, 0, 2),
        IpProto::Udp,
        Bytes::from(payload),
    );
    p.id = id;
    p
}

proptest! {
    /// fragment ∘ reassemble = identity, for any payload and legal MTU,
    /// in any delivery order.
    #[test]
    fn fragment_reassemble_round_trip(
        len in 1usize..4000,
        mtu in 68u16..1500,
        id in any::<u16>(),
        seed in any::<u64>(),
        policy_idx in 0usize..4,
    ) {
        let payload: Vec<u8> = (0..len).map(|i| (i as u64 ^ seed) as u8).collect();
        let pkt = packet(payload.clone(), id);
        let mut frags = pkt.fragment(mtu).unwrap();
        // Shuffle deterministically from the seed.
        let mut s = seed;
        for i in (1..frags.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            frags.swap(i, (s % (i as u64 + 1)) as usize);
        }
        let policy = [
            OverlapPolicy::First,
            OverlapPolicy::Last,
            OverlapPolicy::Bsd,
            OverlapPolicy::StrictNoOverlap,
        ][policy_idx];
        let mut cache = ReassemblyCache::new(policy);
        let mut complete = None;
        for f in frags {
            match cache.insert(SimTime::ZERO, f) {
                ReassemblyOutcome::Complete(p) | ReassemblyOutcome::NotFragmented(p) => {
                    complete = Some(p);
                }
                ReassemblyOutcome::Pending => {}
                ReassemblyOutcome::Dropped(r) => {
                    panic!("unexpected drop: {r:?}");
                }
            }
        }
        let whole = complete.expect("must complete");
        prop_assert_eq!(&whole.payload[..], &payload[..]);
        prop_assert!(!whole.is_fragment());
    }

    /// Every fragment respects the MTU and non-final fragments carry
    /// 8-byte-aligned payloads.
    #[test]
    fn fragments_respect_mtu_and_alignment(len in 1usize..6000, mtu in 68u16..1500) {
        let pkt = packet(vec![7u8; len], 1);
        let frags = pkt.fragment(mtu).unwrap();
        for (i, f) in frags.iter().enumerate() {
            prop_assert!(f.total_len() <= mtu as usize);
            if i + 1 < frags.len() {
                prop_assert_eq!(f.payload.len() % 8, 0);
                prop_assert!(f.more_fragments);
            }
        }
        // Coverage is exact and gapless.
        let mut expected_offset = 0usize;
        for f in &frags {
            prop_assert_eq!(f.frag_offset_bytes(), expected_offset);
            expected_offset += f.payload.len();
        }
        prop_assert_eq!(expected_offset, len);
    }

    /// UDP encode/decode round-trips and checksum validation accepts
    /// exactly the unmodified wire bytes.
    #[test]
    fn udp_round_trip_and_checksum(
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        sport in any::<u16>(),
        dport in any::<u16>(),
        flip_byte in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        let src = Ipv4Addr::new(198, 51, 100, 1);
        let dst = Ipv4Addr::new(203, 0, 113, 1);
        let dgram = UdpDatagram::new(sport, dport, Bytes::from(payload.clone()));
        let wire = dgram.encode(src, dst);
        let back = UdpDatagram::decode(src, dst, &wire, true).unwrap();
        prop_assert_eq!(back.payload.as_ref(), &payload[..]);
        prop_assert_eq!(back.src_port, sport);
        prop_assert_eq!(back.dst_port, dport);

        // Any single-bit corruption is caught (unless it hits the checksum
        // complement pair in a way that still sums — impossible for one bit).
        let mut corrupted = wire.to_vec();
        let idx = flip_byte % corrupted.len();
        corrupted[idx] ^= 1 << flip_bit;
        prop_assert!(UdpDatagram::decode(src, dst, &corrupted, true).is_err());
    }

    /// The attack's checksum compensation works for arbitrary even-length
    /// tails (the helper requires the compensation word to land 16-bit
    /// aligned; the attack code handles odd alignment by byte-swapping).
    #[test]
    fn compensation_equalises_sums(
        mut original in proptest::collection::vec(any::<u8>(), 4..600),
        forged_seed in any::<u64>(),
    ) {
        if original.len() % 2 == 1 {
            original.pop();
        }
        let mut forged: Vec<u8> = original[..original.len() - 2]
            .iter()
            .enumerate()
            .map(|(i, &b)| b ^ (forged_seed.wrapping_add(i as u64) as u8))
            .collect();
        let comp = checksum_compensation(&original, &forged);
        forged.extend_from_slice(&comp);
        // Ones-complement sums are equal modulo 0xffff (0x0000 and 0xffff
        // both represent zero); the UDP checksum maps both to the same
        // wire value, which is what the receiver actually validates.
        prop_assert_eq!(
            u32::from(fold_checksum(ones_complement_sum(&original))) % 0xffff,
            u32::from(fold_checksum(ones_complement_sum(&forged))) % 0xffff
        );
    }
}
