//! # netsim — deterministic discrete-event network simulation
//!
//! The substrate underneath the Chronos-NTP attack reproduction: a
//! single-threaded, seed-deterministic simulator of an IPv4 internet with
//! just enough fidelity for the attacks that matter here —
//!
//! * **IPv4 fragmentation and reassembly** with configurable overlap
//!   policies ([`frag`]), the target of defragmentation cache poisoning;
//! * **UDP with real RFC 768 checksums** ([`udp`]), so forged fragments must
//!   perform genuine checksum compensation;
//! * **ICMP "fragmentation needed"** ([`icmp`]) and per-destination PMTU
//!   caches ([`stack`]), so attackers can force servers to fragment;
//! * **source-address spoofing and BGP prefix hijacks** ([`world`]),
//!   the two MitM-capability models the paper considers;
//! * per-path latency/jitter/loss and per-node MTUs ([`link`]).
//!
//! Protocol logic (DNS, NTP, Chronos) lives in the sibling crates and plugs
//! in through the [`node::Node`] trait.
//!
//! # Quick start
//!
//! ```
//! use netsim::prelude::*;
//! use std::any::Any;
//! use bytes::Bytes;
//!
//! struct Hello {
//!     stack: IpStack,
//!     target: std::net::Ipv4Addr,
//!     heard: usize,
//! }
//!
//! impl Node for Hello {
//!     fn on_start(&mut self, ctx: &mut Context<'_>) {
//!         let me = self.stack.addr();
//!         self.stack.send_udp(ctx, me, 9000, self.target, 9000,
//!                             Bytes::from_static(b"hi"));
//!     }
//!     fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Ipv4Packet) {
//!         if self.stack.handle(ctx, pkt).is_some() {
//!             self.heard += 1;
//!         }
//!     }
//!     fn as_any(&self) -> &dyn Any { self }
//!     fn as_any_mut(&mut self) -> &mut dyn Any { self }
//! }
//!
//! let mut world = World::new(7);
//! let a: std::net::Ipv4Addr = "10.0.0.1".parse()?;
//! let b: std::net::Ipv4Addr = "10.0.0.2".parse()?;
//! let pa = world.add_node("a", Box::new(Hello { stack: IpStack::new(a), target: b, heard: 0 }), &[a]);
//! let pb = world.add_node("b", Box::new(Hello { stack: IpStack::new(b), target: a, heard: 0 }), &[b]);
//! world.run_for(SimDuration::from_secs(1));
//! assert_eq!(world.node::<Hello>(pa).heard, 1);
//! assert_eq!(world.node::<Hello>(pb).heard, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! *(Workspace map: see `ARCHITECTURE.md` at the repo root — crate-by-crate
//! architecture, the data-flow diagram, and the determinism contract.)*

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod frag;
pub mod icmp;
pub mod ip;
pub mod link;
pub mod node;
pub mod par;
pub mod pool;
pub mod rng;
pub mod stack;
pub mod time;
pub mod trace;
pub mod udp;
pub mod world;

/// Convenient glob-import of the commonly used types.
pub mod prelude {
    pub use crate::frag::{OverlapPolicy, ReassemblyCache, ReassemblyOutcome};
    pub use crate::icmp::IcmpMessage;
    pub use crate::ip::{IpProto, Ipv4Net, Ipv4Packet};
    pub use crate::link::{LatencyModel, PathProfile};
    pub use crate::node::{Context, Node, NodeId};
    pub use crate::pool::{WorldPool, WorldPoolStats};
    pub use crate::rng::SimRng;
    pub use crate::stack::{FragFilter, IpIdPolicy, IpStack, StackConfig, StackEvent};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::udp::UdpDatagram;
    pub use crate::world::World;
}
