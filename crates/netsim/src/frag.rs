//! IPv4 reassembly: the defragmentation cache that poisoning attacks target.
//!
//! A receiving host keys fragments by `(src, dst, id, proto)` and buffers
//! them until the datagram is complete. Two properties make this cache a
//! classic attack surface (Herzberg & Shulman, "Fragmentation Considered
//! Poisonous", CNS'13):
//!
//! 1. Fragments are matched **only** by the 4-tuple and the 16-bit IP `id` —
//!    there is no cryptographic binding between fragments. An off-path
//!    attacker who predicts the `id` can plant a spoofed fragment *before*
//!    the genuine ones arrive.
//! 2. When fragments overlap, different stacks keep different bytes
//!    ([`OverlapPolicy`]). Under first-wins reassembly, the attacker's
//!    pre-planted tail beats the authentic tail.
//!
//! # Examples
//!
//! ```
//! use netsim::frag::{ReassemblyCache, ReassemblyOutcome, OverlapPolicy};
//! use netsim::ip::{Ipv4Packet, IpProto};
//! use netsim::time::SimTime;
//! use bytes::Bytes;
//!
//! let mut cache = ReassemblyCache::new(OverlapPolicy::First);
//! let pkt = Ipv4Packet::new(
//!     "10.0.0.1".parse()?, "10.0.0.2".parse()?,
//!     IpProto::Udp, Bytes::from(vec![7u8; 1000]),
//! );
//! let frags = pkt.fragment(576)?;
//! let now = SimTime::ZERO;
//! assert!(matches!(cache.insert(now, frags[0].clone()), ReassemblyOutcome::Pending));
//! match cache.insert(now, frags[1].clone()) {
//!     ReassemblyOutcome::Complete(whole) => assert_eq!(whole.payload, pkt.payload),
//!     other => panic!("expected completion, got {other:?}"),
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::ip::{IpProto, Ipv4Packet};
use crate::time::{SimDuration, SimTime};
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// How a stack resolves overlapping fragment data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OverlapPolicy {
    /// Bytes already in the buffer win; later fragments only fill holes.
    /// This is the policy exploited by pre-planting a spoofed fragment.
    First,
    /// The most recent fragment overwrites overlapping bytes.
    Last,
    /// BSD-style: a new fragment's bytes win for offsets strictly *before*
    /// existing data, otherwise existing bytes win. Approximates the
    /// left-trimming behaviour of the historical 4.4BSD reassembler.
    Bsd,
    /// RFC 5722-style: any overlap that disagrees with buffered bytes causes
    /// the whole reassembly queue for that datagram to be discarded
    /// (modern Linux behaviour).
    StrictNoOverlap,
}

/// Identifies one in-progress reassembly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FragKey {
    /// IP source address of the fragments.
    pub src: Ipv4Addr,
    /// IP destination address.
    pub dst: Ipv4Addr,
    /// IP identification field.
    pub id: u16,
    /// Transport protocol.
    pub proto: IpProto,
}

impl FragKey {
    /// Extracts the reassembly key from a fragment.
    pub fn of(pkt: &Ipv4Packet) -> Self {
        FragKey {
            src: pkt.src,
            dst: pkt.dst,
            id: pkt.id,
            proto: pkt.proto,
        }
    }
}

/// Result of offering a packet to the cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReassemblyOutcome {
    /// The packet was not a fragment; handed back unchanged.
    NotFragmented(Ipv4Packet),
    /// Fragment buffered; datagram still incomplete.
    Pending,
    /// Reassembly finished; the returned packet carries the full payload.
    Complete(Ipv4Packet),
    /// The fragment (or its whole queue) was dropped.
    Dropped(DropReason),
}

/// Why a fragment was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropReason {
    /// Overlapping data conflicted under [`OverlapPolicy::StrictNoOverlap`].
    OverlapConflict,
    /// The cache is full and the fragment's queue was not resident.
    CacheFull,
    /// Reassembled datagram would exceed the 65 535-byte IPv4 maximum.
    TooLarge,
    /// Queue expired before completion (returned by [`ReassemblyCache::expire`]).
    Timeout,
}

#[derive(Debug)]
struct Hole {
    start: usize,
    end: usize, // exclusive
}

#[derive(Debug)]
struct Buffer {
    data: Vec<u8>,
    /// Sorted, disjoint byte ranges that have been filled.
    filled: Vec<Hole>,
    /// Total datagram length, known once the MF=0 fragment arrives.
    total_len: Option<usize>,
    first_arrival: SimTime,
    fragments_seen: usize,
    template: Ipv4Packet,
}

impl Buffer {
    fn new(now: SimTime, pkt: &Ipv4Packet) -> Self {
        Buffer {
            data: Vec::new(),
            filled: Vec::new(),
            total_len: None,
            first_arrival: now,
            fragments_seen: 0,
            template: Ipv4Packet {
                payload: Bytes::new(),
                ..pkt.clone()
            },
        }
    }

    fn ensure_len(&mut self, len: usize) {
        if self.data.len() < len {
            self.data.resize(len, 0);
        }
    }

    /// Returns `true` if `range` overlaps any filled byte whose current value
    /// differs from the incoming data.
    fn conflicts(&self, start: usize, bytes: &[u8]) -> bool {
        let end = start + bytes.len();
        for r in &self.filled {
            let lo = r.start.max(start);
            let hi = r.end.min(end);
            if lo < hi && self.data[lo..hi] != bytes[lo - start..hi - start] {
                return true;
            }
        }
        false
    }

    fn write(&mut self, start: usize, bytes: &[u8], policy: OverlapPolicy) {
        let end = start + bytes.len();
        self.ensure_len(end);
        match policy {
            OverlapPolicy::Last => {
                self.data[start..end].copy_from_slice(bytes);
            }
            OverlapPolicy::First | OverlapPolicy::StrictNoOverlap => {
                // Copy only bytes not already covered.
                let mut cursor = start;
                for r in covered_within(&self.filled, start, end) {
                    if cursor < r.0 {
                        self.data[cursor..r.0].copy_from_slice(&bytes[cursor - start..r.0 - start]);
                    }
                    cursor = cursor.max(r.1);
                }
                if cursor < end {
                    self.data[cursor..end].copy_from_slice(&bytes[cursor - start..]);
                }
            }
            OverlapPolicy::Bsd => {
                // New data wins for bytes before the first already-filled
                // offset ≥ start; existing bytes win afterwards.
                let first_existing = covered_within(&self.filled, start, end)
                    .first()
                    .map(|r| r.0)
                    .unwrap_or(end);
                if start < first_existing {
                    self.data[start..first_existing]
                        .copy_from_slice(&bytes[..first_existing - start]);
                }
                let mut cursor = first_existing;
                for r in covered_within(&self.filled, first_existing, end) {
                    if cursor < r.0 {
                        self.data[cursor..r.0].copy_from_slice(&bytes[cursor - start..r.0 - start]);
                    }
                    cursor = cursor.max(r.1);
                }
                if cursor < end {
                    self.data[cursor..end].copy_from_slice(&bytes[cursor - start..]);
                }
            }
        }
        insert_range(&mut self.filled, start, end);
    }

    fn is_complete(&self) -> bool {
        match self.total_len {
            Some(total) => {
                self.filled.len() == 1 && self.filled[0].start == 0 && self.filled[0].end >= total
            }
            None => false,
        }
    }

    fn assemble(&self) -> Ipv4Packet {
        let total = self.total_len.expect("assemble called before completion");
        let mut pkt = self.template.clone();
        pkt.more_fragments = false;
        pkt.frag_offset_units = 0;
        pkt.payload = Bytes::from(self.data[..total].to_vec());
        pkt
    }
}

/// Returns the portions of `filled` intersecting `[start, end)` as
/// `(clamped_start, clamped_end)` pairs, in order.
fn covered_within(filled: &[Hole], start: usize, end: usize) -> Vec<(usize, usize)> {
    filled
        .iter()
        .filter(|r| r.start < end && r.end > start)
        .map(|r| (r.start.max(start), r.end.min(end)))
        .collect()
}

fn insert_range(filled: &mut Vec<Hole>, start: usize, end: usize) {
    filled.push(Hole { start, end });
    filled.sort_by_key(|r| r.start);
    let mut merged: Vec<Hole> = Vec::with_capacity(filled.len());
    for r in filled.drain(..) {
        match merged.last_mut() {
            Some(last) if r.start <= last.end => last.end = last.end.max(r.end),
            _ => merged.push(r),
        }
    }
    *filled = merged;
}

/// Statistics exposed by a [`ReassemblyCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReassemblyStats {
    /// Datagrams successfully reassembled.
    pub completed: u64,
    /// Fragments accepted into buffers.
    pub fragments_buffered: u64,
    /// Queues dropped due to overlap conflicts.
    pub overlap_drops: u64,
    /// Queues evicted because the cache was full.
    pub evictions: u64,
    /// Queues expired by timeout.
    pub timeouts: u64,
}

/// A bounded, time-limited IPv4 reassembly cache.
#[derive(Debug)]
pub struct ReassemblyCache {
    policy: OverlapPolicy,
    timeout: SimDuration,
    capacity: usize,
    buffers: HashMap<FragKey, Buffer>,
    stats: ReassemblyStats,
}

/// Default reassembly timeout (Linux: 30 s).
pub const DEFAULT_REASSEMBLY_TIMEOUT: SimDuration = SimDuration::from_secs(30);

/// Default maximum number of concurrent reassembly queues.
pub const DEFAULT_REASSEMBLY_CAPACITY: usize = 1024;

/// Maximum reassembled datagram size (IPv4 total-length field limit).
pub const MAX_DATAGRAM: usize = 65_535;

impl ReassemblyCache {
    /// Creates a cache with the given overlap policy and default timeout and
    /// capacity.
    pub fn new(policy: OverlapPolicy) -> Self {
        ReassemblyCache {
            policy,
            timeout: DEFAULT_REASSEMBLY_TIMEOUT,
            capacity: DEFAULT_REASSEMBLY_CAPACITY,
            buffers: HashMap::new(),
            stats: ReassemblyStats::default(),
        }
    }

    /// Creates a cache with explicit timeout and capacity.
    pub fn with_limits(policy: OverlapPolicy, timeout: SimDuration, capacity: usize) -> Self {
        ReassemblyCache {
            policy,
            timeout,
            capacity,
            buffers: HashMap::new(),
            stats: ReassemblyStats::default(),
        }
    }

    /// The configured overlap policy.
    pub fn policy(&self) -> OverlapPolicy {
        self.policy
    }

    /// Counters describing cache activity so far.
    pub fn stats(&self) -> ReassemblyStats {
        self.stats
    }

    /// Number of in-progress reassembly queues.
    pub fn pending(&self) -> usize {
        self.buffers.len()
    }

    /// Offers a packet to the cache.
    ///
    /// Whole (unfragmented) packets are returned immediately as
    /// [`ReassemblyOutcome::NotFragmented`].
    pub fn insert(&mut self, now: SimTime, pkt: Ipv4Packet) -> ReassemblyOutcome {
        if !pkt.is_fragment() {
            return ReassemblyOutcome::NotFragmented(pkt);
        }
        let key = FragKey::of(&pkt);
        let start = pkt.frag_offset_bytes();
        let end = start + pkt.payload.len();
        if end > MAX_DATAGRAM {
            self.buffers.remove(&key);
            return ReassemblyOutcome::Dropped(DropReason::TooLarge);
        }
        if !self.buffers.contains_key(&key) {
            if self.buffers.len() >= self.capacity && !self.evict_oldest() {
                return ReassemblyOutcome::Dropped(DropReason::CacheFull);
            }
            self.buffers.insert(key, Buffer::new(now, &pkt));
        }
        let buf = self.buffers.get_mut(&key).expect("buffer just ensured");

        if self.policy == OverlapPolicy::StrictNoOverlap && buf.conflicts(start, &pkt.payload) {
            self.buffers.remove(&key);
            self.stats.overlap_drops += 1;
            return ReassemblyOutcome::Dropped(DropReason::OverlapConflict);
        }

        buf.write(start, &pkt.payload, self.policy);
        buf.fragments_seen += 1;
        self.stats.fragments_buffered += 1;
        if !pkt.more_fragments {
            // Last fragment pins the total datagram length. First-wins: keep
            // the earliest claim so a pre-planted tail defines the length.
            if buf.total_len.is_none() {
                buf.total_len = Some(end);
            }
        }
        if buf.is_complete() {
            let whole = buf.assemble();
            self.buffers.remove(&key);
            self.stats.completed += 1;
            ReassemblyOutcome::Complete(whole)
        } else {
            ReassemblyOutcome::Pending
        }
    }

    /// Drops queues older than the timeout. Returns the number expired.
    pub fn expire(&mut self, now: SimTime) -> usize {
        let timeout = self.timeout;
        let before = self.buffers.len();
        self.buffers
            .retain(|_, buf| now.duration_since(buf.first_arrival) <= timeout);
        let expired = before - self.buffers.len();
        self.stats.timeouts += expired as u64;
        expired
    }

    /// Removes the queue for `key`, if present (used by failure injection).
    pub fn purge(&mut self, key: &FragKey) -> bool {
        self.buffers.remove(key).is_some()
    }

    /// Drops every in-progress queue and zeroes the statistics, keeping the
    /// policy/timeout/capacity configuration (world-reuse support).
    pub fn reset(&mut self) {
        self.buffers.clear();
        self.stats = ReassemblyStats::default();
    }

    fn evict_oldest(&mut self) -> bool {
        let oldest = self
            .buffers
            .iter()
            .min_by_key(|(_, buf)| buf.first_arrival)
            .map(|(k, _)| *k);
        match oldest {
            Some(k) => {
                self.buffers.remove(&k);
                self.stats.evictions += 1;
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ip::IpProto;

    fn base_packet(len: usize) -> Ipv4Packet {
        let payload: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        let mut p = Ipv4Packet::new(
            Ipv4Addr::new(192, 0, 2, 1),
            Ipv4Addr::new(192, 0, 2, 2),
            IpProto::Udp,
            Bytes::from(payload),
        );
        p.id = 0xbeef;
        p
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn out_of_order_fragments_reassemble() {
        let pkt = base_packet(1200);
        let frags = pkt.fragment(576).unwrap();
        let mut cache = ReassemblyCache::new(OverlapPolicy::First);
        // Deliver in reverse order.
        let mut result = None;
        for f in frags.iter().rev() {
            match cache.insert(t(0), f.clone()) {
                ReassemblyOutcome::Complete(p) => result = Some(p),
                ReassemblyOutcome::Pending => {}
                other => panic!("unexpected {other:?}"),
            }
        }
        let whole = result.expect("should complete");
        assert_eq!(whole.payload, pkt.payload);
        assert!(!whole.is_fragment());
        assert_eq!(cache.pending(), 0);
        assert_eq!(cache.stats().completed, 1);
    }

    #[test]
    fn unfragmented_passes_through() {
        let pkt = base_packet(100);
        let mut cache = ReassemblyCache::new(OverlapPolicy::First);
        match cache.insert(t(0), pkt.clone()) {
            ReassemblyOutcome::NotFragmented(p) => assert_eq!(p, pkt),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn duplicate_fragment_is_harmless() {
        let pkt = base_packet(1000);
        let frags = pkt.fragment(576).unwrap();
        let mut cache = ReassemblyCache::new(OverlapPolicy::First);
        cache.insert(t(0), frags[0].clone());
        cache.insert(t(0), frags[0].clone());
        match cache.insert(t(0), frags[1].clone()) {
            ReassemblyOutcome::Complete(p) => assert_eq!(p.payload, pkt.payload),
            other => panic!("unexpected {other:?}"),
        }
    }

    /// The poisoning primitive: a spoofed second fragment planted before the
    /// genuine fragments wins under first-wins reassembly.
    #[test]
    fn preplanted_spoofed_tail_wins_under_first_policy() {
        let pkt = base_packet(1000);
        let frags = pkt.fragment(576).unwrap();
        assert_eq!(frags.len(), 2);
        let genuine_first = frags[0].clone();
        let genuine_second = frags[1].clone();

        let mut spoofed_tail = genuine_second.clone();
        spoofed_tail.payload = Bytes::from(vec![0xAA; genuine_second.payload.len()]);

        let mut cache = ReassemblyCache::new(OverlapPolicy::First);
        assert!(matches!(
            cache.insert(t(0), spoofed_tail.clone()),
            ReassemblyOutcome::Pending
        ));
        let out = cache.insert(t(0), genuine_first.clone());
        let whole = match out {
            ReassemblyOutcome::Complete(p) => p,
            other => panic!("expected completion, got {other:?}"),
        };
        let split = genuine_first.payload.len();
        assert_eq!(&whole.payload[..split], &pkt.payload[..split]);
        assert!(whole.payload[split..].iter().all(|&b| b == 0xAA));
        // The genuine tail arriving afterwards finds no queue and starts a
        // fresh, never-completing one.
        assert!(matches!(
            cache.insert(t(0), genuine_second),
            ReassemblyOutcome::Pending
        ));
    }

    #[test]
    fn last_policy_lets_genuine_tail_overwrite() {
        let pkt = base_packet(1000);
        let frags = pkt.fragment(576).unwrap();
        let mut spoofed_tail = frags[1].clone();
        spoofed_tail.payload = Bytes::from(vec![0xAA; frags[1].payload.len()]);

        let mut cache = ReassemblyCache::new(OverlapPolicy::Last);
        cache.insert(t(0), spoofed_tail);
        // Genuine fragments arrive afterwards; the genuine tail overwrites.
        cache.insert(t(0), frags[1].clone());
        match cache.insert(t(0), frags[0].clone()) {
            ReassemblyOutcome::Complete(p) => assert_eq!(p.payload, pkt.payload),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn strict_policy_drops_queue_on_conflicting_overlap() {
        let pkt = base_packet(1000);
        let frags = pkt.fragment(576).unwrap();
        let mut spoofed_tail = frags[1].clone();
        spoofed_tail.payload = Bytes::from(vec![0xAA; frags[1].payload.len()]);

        let mut cache = ReassemblyCache::new(OverlapPolicy::StrictNoOverlap);
        cache.insert(t(0), spoofed_tail);
        assert_eq!(
            cache.insert(t(0), frags[1].clone()),
            ReassemblyOutcome::Dropped(DropReason::OverlapConflict)
        );
        assert_eq!(cache.pending(), 0);
        assert_eq!(cache.stats().overlap_drops, 1);
    }

    #[test]
    fn strict_policy_allows_identical_overlap() {
        let pkt = base_packet(1000);
        let frags = pkt.fragment(576).unwrap();
        let mut cache = ReassemblyCache::new(OverlapPolicy::StrictNoOverlap);
        cache.insert(t(0), frags[0].clone());
        cache.insert(t(0), frags[0].clone()); // identical duplicate: fine
        match cache.insert(t(0), frags[1].clone()) {
            ReassemblyOutcome::Complete(p) => assert_eq!(p.payload, pkt.payload),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bsd_policy_prefers_new_data_on_the_left() {
        // Buffer holds bytes [480, 960); a new fragment covering [0, 576)
        // should win for [0, 480) and lose for [480, 576).
        let mut cache = ReassemblyCache::new(OverlapPolicy::Bsd);
        let mut mid = base_packet(0);
        mid.payload = Bytes::from(vec![0xBB; 480]);
        mid.frag_offset_units = 60; // byte 480
        mid.more_fragments = true;
        cache.insert(t(0), mid);

        let mut left = base_packet(0);
        left.payload = Bytes::from(vec![0xCC; 576]);
        left.frag_offset_units = 0;
        left.more_fragments = true;
        cache.insert(t(0), left);

        let mut tail = base_packet(0);
        tail.payload = Bytes::from(vec![0xDD; 40]);
        tail.frag_offset_units = 120; // byte 960
        tail.more_fragments = false;
        let whole = match cache.insert(t(0), tail) {
            ReassemblyOutcome::Complete(p) => p,
            other => panic!("unexpected {other:?}"),
        };
        assert!(whole.payload[..480].iter().all(|&b| b == 0xCC));
        assert!(whole.payload[480..960].iter().all(|&b| b == 0xBB));
        assert!(whole.payload[960..].iter().all(|&b| b == 0xDD));
    }

    #[test]
    fn timeout_expires_stale_queues() {
        let pkt = base_packet(1000);
        let frags = pkt.fragment(576).unwrap();
        let mut cache =
            ReassemblyCache::with_limits(OverlapPolicy::First, SimDuration::from_secs(30), 16);
        cache.insert(t(0), frags[0].clone());
        assert_eq!(cache.expire(t(10)), 0);
        assert_eq!(cache.expire(t(31)), 1);
        assert_eq!(cache.pending(), 0);
        assert_eq!(cache.stats().timeouts, 1);
        // The tail arriving now cannot complete anything.
        assert!(matches!(
            cache.insert(t(31), frags[1].clone()),
            ReassemblyOutcome::Pending
        ));
    }

    #[test]
    fn capacity_evicts_oldest_queue() {
        let mut cache =
            ReassemblyCache::with_limits(OverlapPolicy::First, SimDuration::from_secs(30), 2);
        for i in 0..3u16 {
            let mut p = base_packet(1000);
            p.id = i;
            let frags = p.fragment(576).unwrap();
            cache.insert(t(i as u64), frags[0].clone());
        }
        assert_eq!(cache.pending(), 2);
        assert_eq!(cache.stats().evictions, 1);
        // The evicted queue is the oldest (id 0): completing it now fails.
        let mut p0 = base_packet(1000);
        p0.id = 0;
        let frags = p0.fragment(576).unwrap();
        assert!(matches!(
            cache.insert(t(3), frags[1].clone()),
            ReassemblyOutcome::Pending
        ));
    }

    #[test]
    fn oversized_reassembly_is_rejected() {
        let mut cache = ReassemblyCache::new(OverlapPolicy::First);
        let mut p = base_packet(0);
        p.payload = Bytes::from(vec![0u8; 1000]);
        p.frag_offset_units = 0x1fff; // byte offset 65528
        p.more_fragments = false;
        assert_eq!(
            cache.insert(t(0), p),
            ReassemblyOutcome::Dropped(DropReason::TooLarge)
        );
    }

    #[test]
    fn different_ids_do_not_mix() {
        let pkt = base_packet(1000);
        let frags = pkt.fragment(576).unwrap();
        let mut other_tail = frags[1].clone();
        other_tail.id = 0x1111;
        let mut cache = ReassemblyCache::new(OverlapPolicy::First);
        cache.insert(t(0), frags[0].clone());
        assert!(matches!(
            cache.insert(t(0), other_tail),
            ReassemblyOutcome::Pending
        ));
        assert_eq!(cache.pending(), 2);
    }

    #[test]
    fn purge_removes_queue() {
        let pkt = base_packet(1000);
        let frags = pkt.fragment(576).unwrap();
        let mut cache = ReassemblyCache::new(OverlapPolicy::First);
        cache.insert(t(0), frags[0].clone());
        assert!(cache.purge(&FragKey::of(&frags[0])));
        assert!(!cache.purge(&FragKey::of(&frags[0])));
        assert_eq!(cache.pending(), 0);
    }
}
