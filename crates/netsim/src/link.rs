//! Link and path models: latency, jitter, loss and MTU.
//!
//! The simulator models the Internet as a full mesh: every pair of nodes has
//! a *path* whose properties derive from a default profile plus optional
//! per-pair overrides, and each node has an *access link* whose MTU bounds
//! the path MTU. Core routers fragment (or reject, for DF) packets larger
//! than the path MTU.

use crate::node::NodeId;
use crate::rng::SimRng;
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A one-way latency distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Fixed delay.
    Constant(SimDuration),
    /// Uniform in `[min, max]`.
    Uniform {
        /// Lower bound.
        min: SimDuration,
        /// Upper bound (inclusive).
        max: SimDuration,
    },
    /// Normally distributed with a floor.
    Normal {
        /// Mean delay.
        mean: SimDuration,
        /// Standard deviation.
        std_dev: SimDuration,
        /// Hard lower bound applied after sampling.
        floor: SimDuration,
    },
}

impl LatencyModel {
    /// Samples a delay.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        match *self {
            LatencyModel::Constant(d) => d,
            LatencyModel::Uniform { min, max } => {
                debug_assert!(min <= max, "uniform latency requires min <= max");
                let span = max.as_nanos() - min.as_nanos();
                if span == 0 {
                    min
                } else {
                    use rand::Rng;
                    SimDuration::from_nanos(min.as_nanos() + rng.gen_range(0..=span))
                }
            }
            LatencyModel::Normal {
                mean,
                std_dev,
                floor,
            } => {
                let sampled = rng.normal(mean.as_nanos() as f64, std_dev.as_nanos() as f64);
                let clamped = sampled.max(floor.as_nanos() as f64);
                SimDuration::from_nanos(clamped as u64)
            }
        }
    }

    /// A typical wide-area path: 40 ms ± 8 ms, floored at 5 ms.
    pub fn internet_default() -> Self {
        LatencyModel::Normal {
            mean: SimDuration::from_millis(40),
            std_dev: SimDuration::from_millis(8),
            floor: SimDuration::from_millis(5),
        }
    }
}

/// Properties of the path between two nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathProfile {
    /// One-way latency distribution.
    pub latency: LatencyModel,
    /// Independent per-packet loss probability in `[0, 1]`.
    pub loss: f64,
}

impl PathProfile {
    /// A lossless path with constant latency — convenient in tests.
    pub fn constant(latency: SimDuration) -> Self {
        PathProfile {
            latency: LatencyModel::Constant(latency),
            loss: 0.0,
        }
    }
}

impl Default for PathProfile {
    fn default() -> Self {
        PathProfile {
            latency: LatencyModel::internet_default(),
            loss: 0.0,
        }
    }
}

/// Per-node access link configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccessLink {
    /// MTU of the node's access link.
    pub mtu: u16,
}

impl Default for AccessLink {
    fn default() -> Self {
        AccessLink {
            mtu: crate::ip::ETHERNET_MTU,
        }
    }
}

/// The full-mesh topology: default path profile, per-node access links and
/// per-pair overrides.
#[derive(Debug, Clone)]
pub struct Topology {
    default_path: PathProfile,
    access: Vec<AccessLink>,
    overrides: HashMap<(NodeId, NodeId), PathProfile>,
    /// MTU of the simulated core; paths never exceed it.
    core_mtu: u16,
}

impl Default for Topology {
    fn default() -> Self {
        Topology {
            default_path: PathProfile::default(),
            access: Vec::new(),
            overrides: HashMap::new(),
            core_mtu: crate::ip::ETHERNET_MTU,
        }
    }
}

impl Topology {
    /// Creates a topology with the given default path profile.
    pub fn new(default_path: PathProfile) -> Self {
        Topology {
            default_path,
            ..Topology::default()
        }
    }

    /// Registers a node's access link; called by the world as nodes join.
    pub(crate) fn register_node(&mut self, link: AccessLink) {
        self.access.push(link);
    }

    /// Sets the access-link MTU for `node`.
    ///
    /// # Panics
    ///
    /// Panics if the node has not been registered.
    pub fn set_access_mtu(&mut self, node: NodeId, mtu: u16) {
        self.access[node.index()].mtu = mtu;
    }

    /// Sets the core MTU shared by all paths.
    pub fn set_core_mtu(&mut self, mtu: u16) {
        self.core_mtu = mtu;
    }

    /// Overrides the profile of the (directed) path `from -> to`.
    pub fn set_path(&mut self, from: NodeId, to: NodeId, profile: PathProfile) {
        self.overrides.insert((from, to), profile);
    }

    /// Overrides both directions between `a` and `b`.
    pub fn set_path_bidirectional(&mut self, a: NodeId, b: NodeId, profile: PathProfile) {
        self.overrides.insert((a, b), profile);
        self.overrides.insert((b, a), profile);
    }

    /// Changes the default profile applied to unconfigured paths.
    pub fn set_default_path(&mut self, profile: PathProfile) {
        self.default_path = profile;
    }

    /// The profile of the path `from -> to`.
    pub fn path(&self, from: NodeId, to: NodeId) -> PathProfile {
        self.overrides
            .get(&(from, to))
            .copied()
            .unwrap_or(self.default_path)
    }

    /// The path MTU between two nodes: the minimum of both access links and
    /// the core.
    pub fn path_mtu(&self, from: NodeId, to: NodeId) -> u16 {
        let a = self
            .access
            .get(from.index())
            .copied()
            .unwrap_or_default()
            .mtu;
        let b = self.access.get(to.index()).copied().unwrap_or_default().mtu;
        a.min(b).min(self.core_mtu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_latency_is_exact() {
        let mut rng = SimRng::seed_from(1);
        let m = LatencyModel::Constant(SimDuration::from_millis(25));
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), SimDuration::from_millis(25));
        }
    }

    #[test]
    fn uniform_latency_in_bounds() {
        let mut rng = SimRng::seed_from(2);
        let (min, max) = (SimDuration::from_millis(10), SimDuration::from_millis(20));
        let m = LatencyModel::Uniform { min, max };
        for _ in 0..1000 {
            let d = m.sample(&mut rng);
            assert!(d >= min && d <= max, "sample {d} out of bounds");
        }
    }

    #[test]
    fn degenerate_uniform_is_constant() {
        let mut rng = SimRng::seed_from(2);
        let d = SimDuration::from_millis(7);
        let m = LatencyModel::Uniform { min: d, max: d };
        assert_eq!(m.sample(&mut rng), d);
    }

    #[test]
    fn normal_latency_respects_floor() {
        let mut rng = SimRng::seed_from(3);
        let m = LatencyModel::Normal {
            mean: SimDuration::from_millis(10),
            std_dev: SimDuration::from_millis(50),
            floor: SimDuration::from_millis(5),
        };
        for _ in 0..1000 {
            assert!(m.sample(&mut rng) >= SimDuration::from_millis(5));
        }
    }

    #[test]
    fn path_mtu_is_min_of_links_and_core() {
        let mut topo = Topology::default();
        topo.register_node(AccessLink { mtu: 1500 });
        topo.register_node(AccessLink { mtu: 576 });
        assert_eq!(path_between(&topo), 576);
        topo.set_core_mtu(548);
        assert_eq!(path_between(&topo), 548);
        topo.set_access_mtu(NodeId::new(0), 100);
        assert_eq!(path_between(&topo), 100);
    }

    fn path_between(topo: &Topology) -> u16 {
        topo.path_mtu(NodeId::new(0), NodeId::new(1))
    }

    #[test]
    fn overrides_apply_per_direction() {
        let mut topo = Topology::default();
        topo.register_node(AccessLink::default());
        topo.register_node(AccessLink::default());
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        let fast = PathProfile::constant(SimDuration::from_millis(1));
        topo.set_path(a, b, fast);
        assert_eq!(topo.path(a, b), fast);
        assert_ne!(topo.path(b, a), fast);
        topo.set_path_bidirectional(a, b, fast);
        assert_eq!(topo.path(b, a), fast);
    }
}
