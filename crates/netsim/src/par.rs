//! The lock-free work dispatcher underneath every parallel engine in the
//! workspace.
//!
//! Monte-Carlo trials (`chronos_pitfalls::montecarlo`), scenario sweeps,
//! and intra-fleet shard stepping (`fleet::engine`) all reduce to the same
//! problem: hand out independent units of work to a fixed set of worker
//! threads, with results (or mutations) landing in caller-owned slots.
//! This module is that engine, index-deterministic by construction:
//!
//! * **Pre-allocated slots, disjoint `&mut` batches.** Output cells are
//!   split into contiguous batches handed to workers through unique
//!   claims, so no worker ever touches another worker's slots — there is
//!   no lock on the per-unit result path.
//! * **Work-stealing-style load balancing.** A single atomic batch cursor
//!   hands out the next unclaimed batch, so a worker stuck on an expensive
//!   unit doesn't strand the rest of a statically assigned range.
//! * **Scheduling-independent outcomes.** Work unit `i` writes slot `i`
//!   (or mutates element `i`) no matter which worker ran it, so outputs
//!   are a pure function of the inputs.
//!
//! It lives in `netsim` (the bottom of the crate stack) so both the
//! experiment layer above and the fleet engine beside it can share one
//! implementation; `chronos_pitfalls::montecarlo` re-exports the trial
//! API unchanged.
//!
//! # Examples
//!
//! Fan independent trials over worker threads — results come back in
//! trial order no matter which worker ran what:
//!
//! ```
//! use netsim::par::run_trials;
//!
//! let squares = run_trials(100, 4, |i| u64::from(i) * u64::from(i));
//! assert_eq!(squares.len(), 100);
//! assert_eq!(squares[7], 49);
//! // Byte-identical to the single-threaded run: trial i fills slot i.
//! assert_eq!(squares, run_trials(100, 1, |i| u64::from(i) * u64::from(i)));
//! ```
//!
//! Mutate a slice of independent work units in place (the fleet engine
//! steps its shards through exactly this call):
//!
//! ```
//! use netsim::par::for_each_mut;
//!
//! let mut cells: Vec<u64> = (0..64).collect();
//! for_each_mut(&mut cells, 4, |cell, index| {
//!     *cell += index as u64; // each unit sees its own index
//! });
//! assert!(cells.iter().enumerate().all(|(i, &v)| v == 2 * i as u64));
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};

/// Batching policy for [`run_trials_with_budget`].
///
/// A batch is the unit of work a worker claims from the shared cursor: all
/// trials in a batch run on one thread, back to back, with a single atomic
/// operation for the whole batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialBudget {
    /// Trials claimed per atomic dispatch. `None` picks a size that yields
    /// roughly [`TrialBudget::AUTO_BATCHES_PER_THREAD`] batches per worker —
    /// enough slack for stealing, few enough that dispatch stays amortized.
    pub batch_size: Option<usize>,
}

impl TrialBudget {
    /// Batches each worker gets on average under the automatic policy.
    pub const AUTO_BATCHES_PER_THREAD: usize = 8;

    /// The automatic policy (recommended).
    pub const fn auto() -> Self {
        TrialBudget { batch_size: None }
    }

    /// A fixed batch size.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn fixed(size: usize) -> Self {
        assert!(size > 0, "batch size must be positive");
        TrialBudget {
            batch_size: Some(size),
        }
    }

    /// Resolves the batch size for a workload.
    pub fn resolve(self, trials: u32, threads: usize) -> usize {
        match self.batch_size {
            Some(n) => n.max(1),
            None => {
                let target = threads.max(1) * Self::AUTO_BATCHES_PER_THREAD;
                ((trials as usize).div_ceil(target.max(1))).max(1)
            }
        }
    }
}

impl Default for TrialBudget {
    fn default() -> Self {
        TrialBudget::auto()
    }
}

/// A sensible worker count: the machine's available parallelism (1 when it
/// cannot be determined).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `trials` independent evaluations of `f` (called with the trial
/// index) across `threads` worker threads, returning results in index
/// order. Batching follows [`TrialBudget::auto`]; use
/// [`run_trials_with_budget`] to tune it.
///
/// Determinism: `f` must derive all randomness from its trial index (e.g.
/// `seed ^ index`); results are written to slot `index` regardless of which
/// worker ran the trial, so the output is independent of scheduling.
///
/// Guarantee: when `trials == 0` the call returns immediately without
/// spawning any worker threads.
///
/// # Panics
///
/// Propagates panics from `f` and panics if `threads` is zero.
pub fn run_trials<T, F>(trials: u32, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u32) -> T + Sync,
{
    run_trials_with_budget(trials, threads, TrialBudget::auto(), f)
}

/// [`run_trials`] with an explicit [`TrialBudget`].
///
/// # Panics
///
/// Propagates panics from `f` and panics if `threads` is zero.
pub fn run_trials_with_budget<T, F>(
    trials: u32,
    threads: usize,
    budget: TrialBudget,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(u32) -> T + Sync,
{
    run_trials_stateful(trials, threads, budget, || (), |(), i| f(i))
}

/// The dispatcher underneath [`run_trials`] and the sweep engines: like
/// [`run_trials_with_budget`], but each worker thread carries private state
/// created by `init` and threaded through every trial it claims.
///
/// This is what makes world pooling possible: the state holds the worker's
/// current scenario, so consecutive trials of one configuration reuse a
/// constructed world instead of rebuilding it. The state never crosses
/// threads and is dropped when the worker runs out of batches.
///
/// Determinism contract: `f`'s *result* must depend only on the trial
/// index, never on the worker state's history — state may only be used as a
/// cache whose observable behaviour is reset per trial.
///
/// # Panics
///
/// Propagates panics from `f` and panics if `threads` is zero.
pub fn run_trials_stateful<T, S, I, F>(
    trials: u32,
    threads: usize,
    budget: TrialBudget,
    init: I,
    f: F,
) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, u32) -> T + Sync,
{
    assert!(threads > 0, "need at least one worker thread");
    if trials == 0 {
        return Vec::new();
    }
    let batch = budget.resolve(trials, threads);
    let mut slots: Vec<Option<T>> = (0..trials).map(|_| None).collect();

    // Serial fast path: one worker needs neither threads nor atomics.
    if threads == 1 || trials == 1 {
        let mut state = init();
        for (i, slot) in slots.iter_mut().enumerate() {
            *slot = Some(f(&mut state, i as u32));
        }
        return unwrap_slots(slots);
    }

    // Disjoint &mut batches behind an atomic claim cursor: each batch index
    // is handed out exactly once, so every slot has a unique writer and no
    // result write ever takes a lock.
    {
        let cells: Vec<Cell<'_, Option<T>>> = slots.chunks_mut(batch).map(Cell::new).collect();
        let cells = &cells[..];
        let cursor = AtomicUsize::new(0);
        let workers = threads.min(cells.len());
        std::thread::scope(|scope| {
            let cursor = &cursor;
            let init = &init;
            let f = &f;
            for _ in 0..workers {
                scope.spawn(move || {
                    let mut state = init();
                    loop {
                        let b = cursor.fetch_add(1, Ordering::Relaxed);
                        if b >= cells.len() {
                            break;
                        }
                        // Safety: the cursor returns each index exactly
                        // once, so this worker is the sole accessor of
                        // batch `b`.
                        let chunk = unsafe { cells[b].take() };
                        let base = (b * batch) as u32;
                        for (off, slot) in chunk.iter_mut().enumerate() {
                            *slot = Some(f(&mut state, base + off as u32));
                        }
                    }
                });
            }
        });
    }
    unwrap_slots(slots)
}

/// Runs `f` once on every element of `items` (with its index) across
/// `threads` worker threads — the in-place analogue of [`run_trials`], for
/// work that lives in caller-owned slabs (fleet shards) rather than in
/// per-trial return values.
///
/// Elements are claimed one at a time off the atomic cursor (an element is
/// the stealing unit: callers hand in coarse slabs, not fine-grained
/// items). Outcomes are scheduling-independent as long as each element's
/// mutation depends only on that element and shared immutable context.
///
/// Guarantee: with one thread, one element, or an empty slice, everything
/// runs on the calling thread and no workers are spawned.
///
/// # Panics
///
/// Propagates panics from `f` and panics if `threads` is zero.
pub fn for_each_mut<T, F>(items: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(&mut T, usize) + Sync,
{
    assert!(threads > 0, "need at least one worker thread");
    if threads == 1 || items.len() <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(item, i);
        }
        return;
    }
    let cells: Vec<Cell<'_, T>> = items.chunks_mut(1).map(Cell::new).collect();
    let cells = &cells[..];
    let cursor = AtomicUsize::new(0);
    let workers = threads.min(cells.len());
    std::thread::scope(|scope| {
        let cursor = &cursor;
        let f = &f;
        for _ in 0..workers {
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= cells.len() {
                    break;
                }
                // Safety: the cursor returns each index exactly once, so
                // this worker is the sole accessor of element `i`.
                let chunk = unsafe { cells[i].take() };
                f(&mut chunk[0], i);
            });
        }
    });
}

/// A chunk of caller-owned slots claimed by exactly one worker (enforced
/// by the atomic cursor handing out each index once).
struct Cell<'a, T> {
    chunk: std::cell::UnsafeCell<*mut [T]>,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// Safety: workers only dereference a cell after uniquely claiming its index
// from the atomic cursor; the scoped-thread join provides the release/acquire
// edge back to the owning thread.
unsafe impl<T: Send> Sync for Cell<'_, T> {}

impl<'a, T> Cell<'a, T> {
    fn new(chunk: &'a mut [T]) -> Self {
        Cell {
            chunk: std::cell::UnsafeCell::new(chunk as *mut _),
            _marker: std::marker::PhantomData,
        }
    }

    /// # Safety
    ///
    /// Must be called at most once per cell (guaranteed by the cursor).
    #[allow(clippy::mut_from_ref)] // unique access enforced by the claim cursor
    unsafe fn take(&self) -> &mut [T] {
        &mut **self.chunk.get()
    }
}

fn unwrap_slots<T>(slots: Vec<Option<T>>) -> Vec<T> {
    slots
        .into_iter()
        .map(|r| r.expect("every trial filled"))
        .collect()
}

/// The seed implementation retained as the benchmark baseline: one global
/// mutex acquisition per trial result. Kept (not re-exported from the crate
/// root) so `e12_montecarlo_dispatch` can measure the win of the lock-free
/// path against it; do not use in new code.
#[doc(hidden)]
pub fn baseline_run_trials<T, F>(trials: u32, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u32) -> T + Sync,
{
    use std::sync::atomic::AtomicU32;
    assert!(threads > 0, "need at least one worker thread");
    let results: std::sync::Mutex<Vec<Option<T>>> =
        std::sync::Mutex::new((0..trials).map(|_| None).collect());
    let next = AtomicU32::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(trials.max(1) as usize) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= trials {
                    break;
                }
                let out = f(i);
                results.lock().expect("not poisoned")[i as usize] = Some(out);
            });
        }
    });
    results
        .into_inner()
        .expect("not poisoned")
        .into_iter()
        .map(|r| r.expect("every trial filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;
    use rand::Rng;

    #[test]
    fn results_are_in_trial_order() {
        let out = run_trials(100, 8, |i| i * 2);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u32 * 2);
        }
    }

    #[test]
    fn parallel_equals_serial() {
        let f = |i: u32| {
            let mut rng = SimRng::seed_from(1000 + u64::from(i));
            rng.gen::<u64>()
        };
        let serial = run_trials(64, 1, f);
        let parallel = run_trials(64, 8, f);
        assert_eq!(serial, parallel, "outcomes independent of threading");
    }

    #[test]
    fn parallel_equals_serial_across_budgets() {
        let f = |i: u32| {
            let mut rng = SimRng::seed_from(9000 + u64::from(i));
            rng.gen::<u64>()
        };
        let reference = run_trials_with_budget(257, 1, TrialBudget::auto(), f);
        for batch in [1usize, 2, 7, 64, 300] {
            let got = run_trials_with_budget(257, 6, TrialBudget::fixed(batch), f);
            assert_eq!(reference, got, "batch size {batch} changed outcomes");
        }
    }

    #[test]
    fn matches_baseline_implementation() {
        let f = |i: u32| u64::from(i).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        assert_eq!(run_trials(500, 4, f), baseline_run_trials(500, 4, f));
    }

    #[test]
    fn zero_trials_spawns_nothing() {
        // Would deadlock/panic if a worker were spawned with a waiting
        // barrier-style closure; mostly documents the no-spawn guarantee.
        let out: Vec<u32> = run_trials(0, 4, |i| i);
        assert!(out.is_empty());
        let out: Vec<u32> = run_trials_with_budget(0, 4, TrialBudget::fixed(3), |i| i);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        run_trials(1, 0, |i| i);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn for_each_zero_threads_rejected() {
        for_each_mut(&mut [1, 2, 3], 0, |_, _| {});
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_rejected() {
        TrialBudget::fixed(0);
    }

    #[test]
    fn auto_budget_scales_with_workload() {
        assert_eq!(TrialBudget::auto().resolve(10_000, 8), 157);
        assert_eq!(TrialBudget::auto().resolve(4, 8), 1);
        assert_eq!(TrialBudget::fixed(32).resolve(10_000, 8), 32);
    }

    #[test]
    fn more_threads_than_trials_is_fine() {
        let out = run_trials(3, 16, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn stateful_state_is_per_worker_and_reused() {
        let inits = AtomicUsize::new(0);
        let out = run_trials_stateful(
            100,
            4,
            TrialBudget::fixed(5),
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0u32
            },
            |calls, i| {
                *calls += 1;
                i * 3
            },
        );
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u32 * 3);
        }
        assert!(
            inits.load(Ordering::Relaxed) <= 4,
            "at most one state per worker"
        );
    }

    #[test]
    fn for_each_mut_touches_every_element_exactly_once() {
        for threads in [1usize, 2, 3, 8] {
            let mut items: Vec<u64> = (0..37).collect();
            for_each_mut(&mut items, threads, |item, i| {
                assert_eq!(*item, i as u64, "index matches element");
                *item = item.wrapping_mul(3).wrapping_add(1);
            });
            let expected: Vec<u64> = (0..37u64).map(|v| v.wrapping_mul(3) + 1).collect();
            assert_eq!(items, expected, "threads={threads}");
        }
    }

    #[test]
    fn for_each_mut_degenerate_shapes() {
        let mut empty: Vec<u32> = Vec::new();
        for_each_mut(&mut empty, 4, |_, _| unreachable!("no elements"));
        let mut one = [7u32];
        for_each_mut(&mut one, 4, |item, i| {
            assert_eq!(i, 0);
            *item += 1;
        });
        assert_eq!(one, [8]);
    }
}
