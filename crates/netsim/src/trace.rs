//! Packet tracing for assertions and debugging.
//!
//! The world records a bounded history of transmission outcomes. Tests use
//! it to assert, e.g., that a response really was fragmented in transit or
//! that a spoofed packet reached the victim.

use crate::ip::{IpProto, Ipv4Packet};
use crate::node::NodeId;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::net::Ipv4Addr;

/// A compact record of one packet transmission attempt.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// When the packet entered the network.
    pub time: SimTime,
    /// The transmitting node.
    pub from: NodeId,
    /// The node it was routed to, if any.
    pub to: Option<NodeId>,
    /// What happened to it.
    pub outcome: TraceOutcome,
    /// Source address on the wire (may be spoofed).
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Transport protocol.
    pub proto: IpProto,
    /// Total length in bytes.
    pub len: usize,
    /// IP identification field.
    pub id: u16,
    /// Fragment offset in bytes (0 for unfragmented).
    pub frag_offset: usize,
    /// More-fragments flag.
    pub more_fragments: bool,
}

/// Transmission outcome recorded in the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceOutcome {
    /// Scheduled for delivery.
    Delivered,
    /// Lost to random packet loss.
    Lost,
    /// No node owns the destination address.
    NoRoute,
    /// Fragmented in transit by a core router (this entry describes the
    /// original packet; fragments get their own `Delivered` entries).
    FragmentedInTransit,
    /// Dropped because DF was set and the packet exceeded the path MTU;
    /// an ICMP "fragmentation needed" was generated.
    DfDropped,
    /// Routed to a hijacker instead of the legitimate owner.
    Hijacked,
}

/// A bounded in-memory packet trace.
#[derive(Debug)]
pub struct Trace {
    enabled: bool,
    capacity: usize,
    entries: VecDeque<TraceEntry>,
    total_recorded: u64,
}

impl Default for Trace {
    fn default() -> Self {
        Trace::new(65_536)
    }
}

impl Trace {
    /// Creates an enabled trace holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Trace {
            enabled: true,
            capacity,
            entries: VecDeque::new(),
            total_recorded: 0,
        }
    }

    /// Enables or disables recording (counters keep advancing).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// `true` if recording is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    pub(crate) fn record(
        &mut self,
        time: SimTime,
        from: NodeId,
        to: Option<NodeId>,
        outcome: TraceOutcome,
        pkt: &Ipv4Packet,
    ) {
        self.total_recorded += 1;
        if !self.enabled {
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(TraceEntry {
            time,
            from,
            to,
            outcome,
            src: pkt.src,
            dst: pkt.dst,
            proto: pkt.proto,
            len: pkt.total_len(),
            id: pkt.id,
            frag_offset: pkt.frag_offset_bytes(),
            more_fragments: pkt.more_fragments,
        });
    }

    /// All retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Entries matching a predicate.
    pub fn filter<'a>(
        &'a self,
        mut pred: impl FnMut(&TraceEntry) -> bool + 'a,
    ) -> impl Iterator<Item = &'a TraceEntry> {
        self.entries.iter().filter(move |e| pred(e))
    }

    /// Count of entries matching a predicate.
    pub fn count(&self, pred: impl FnMut(&&TraceEntry) -> bool) -> usize {
        self.entries.iter().filter(pred).count()
    }

    /// Number of record calls made over the trace's lifetime (including
    /// while disabled or after eviction).
    pub fn total_recorded(&self) -> u64 {
        self.total_recorded
    }

    /// Drops all retained entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Drops all entries *and* zeroes the lifetime counter, keeping the
    /// enabled flag and capacity (world-reuse support).
    pub fn reset(&mut self) {
        self.entries.clear();
        self.total_recorded = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn pkt() -> Ipv4Packet {
        Ipv4Packet::new(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            IpProto::Udp,
            Bytes::from_static(b"abc"),
        )
    }

    #[test]
    fn records_and_filters() {
        let mut trace = Trace::new(10);
        trace.record(
            SimTime::ZERO,
            NodeId::new(0),
            Some(NodeId::new(1)),
            TraceOutcome::Delivered,
            &pkt(),
        );
        trace.record(
            SimTime::from_secs(1),
            NodeId::new(0),
            None,
            TraceOutcome::NoRoute,
            &pkt(),
        );
        assert_eq!(trace.entries().count(), 2);
        assert_eq!(trace.count(|e| e.outcome == TraceOutcome::Delivered), 1);
        assert_eq!(trace.total_recorded(), 2);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut trace = Trace::new(2);
        for i in 0..3 {
            trace.record(
                SimTime::from_secs(i),
                NodeId::new(0),
                None,
                TraceOutcome::Delivered,
                &pkt(),
            );
        }
        assert_eq!(trace.entries().count(), 2);
        assert_eq!(
            trace.entries().next().unwrap().time,
            SimTime::from_secs(1),
            "oldest entry evicted"
        );
        assert_eq!(trace.total_recorded(), 3);
    }

    #[test]
    fn disabled_trace_counts_but_keeps_nothing() {
        let mut trace = Trace::new(10);
        trace.set_enabled(false);
        trace.record(
            SimTime::ZERO,
            NodeId::new(0),
            None,
            TraceOutcome::Delivered,
            &pkt(),
        );
        assert_eq!(trace.entries().count(), 0);
        assert_eq!(trace.total_recorded(), 1);
        assert!(!trace.is_enabled());
    }
}
