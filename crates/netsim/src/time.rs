//! Simulation time.
//!
//! All simulation state is ordered by a single virtual clock with nanosecond
//! resolution. [`SimTime`] is an instant on that clock, [`SimDuration`] a
//! non-negative span between instants. Host-local (possibly wrong) clocks are
//! modelled elsewhere (`ntplab::clock`) on top of this true time.
//!
//! # Examples
//!
//! ```
//! use netsim::time::{SimTime, SimDuration};
//!
//! let t0 = SimTime::ZERO;
//! let t1 = t0 + SimDuration::from_secs(3600);
//! assert_eq!(t1.as_secs_f64(), 3600.0);
//! assert_eq!(t1 - t0, SimDuration::from_secs(3600));
//! ```

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// An instant on the simulation's true clock, in nanoseconds since the
/// simulation epoch.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A non-negative span of simulation time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after the epoch.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `secs` seconds after the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Creates an instant `millis` milliseconds after the epoch.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole seconds since the epoch (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Seconds since the epoch as a floating point value.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since: `earlier` is later than `self`"),
        )
    }

    /// Signed nanosecond difference `self - other`; negative when `other`
    /// is later. Saturates at `i64` bounds (±292 years).
    pub fn signed_nanos_since(self, other: SimTime) -> i64 {
        let diff = self.0 as i128 - other.0 as i128;
        diff.clamp(i64::MIN as i128, i64::MAX as i128) as i64
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// Checked subtraction of a duration; `None` on underflow.
    pub fn checked_sub(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_sub(d.0).map(SimTime)
    }

    /// Adds a signed nanosecond offset, saturating at the epoch and `MAX`.
    pub fn offset_by_nanos(self, nanos: i64) -> SimTime {
        if nanos >= 0 {
            SimTime(self.0.saturating_add(nanos as u64))
        } else {
            SimTime(self.0.saturating_sub(nanos.unsigned_abs()))
        }
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration of `mins` minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60 * 1_000_000_000)
    }

    /// Creates a duration of `hours` hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3600 * 1_000_000_000)
    }

    /// Creates a duration from floating point seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large to represent.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0 && secs <= u64::MAX as f64 / 1e9,
            "invalid duration in seconds: {secs}"
        );
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Length in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Length in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Length in whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Length in seconds as a floating point value.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `true` when the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating duration addition.
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// Saturating duration subtraction (clamps at zero).
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies by a floating point factor.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or NaN.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "invalid duration factor: {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("SimTime overflow on addition"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime underflow on subtraction"),
        )
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_add(rhs.0)
                .expect("SimDuration overflow on addition"),
        )
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration underflow on subtraction"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(
            self.0
                .checked_mul(rhs)
                .expect("SimDuration overflow on multiplication"),
        )
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let secs = self.0 / 1_000_000_000;
        let sub_ms = (self.0 % 1_000_000_000) / 1_000_000;
        let (h, rem) = (secs / 3600, secs % 3600);
        let (m, s) = (rem / 60, rem % 60);
        write!(f, "{h:02}:{m:02}:{s:02}.{sub_ms:03}")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1000));
        assert_eq!(SimDuration::from_mins(2), SimDuration::from_secs(120));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_mins(60));
        assert_eq!(SimTime::from_secs(3), SimTime::from_millis(3000));
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_secs(10);
        assert_eq!(t + SimDuration::from_secs(5), SimTime::from_secs(15));
        assert_eq!(t - SimDuration::from_secs(5), SimTime::from_secs(5));
        assert_eq!(
            SimTime::from_secs(15) - SimTime::from_secs(10),
            SimDuration::from_secs(5)
        );
    }

    #[test]
    fn signed_difference() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(3);
        assert_eq!(b.signed_nanos_since(a), 2_000_000_000);
        assert_eq!(a.signed_nanos_since(b), -2_000_000_000);
        assert_eq!(a.signed_nanos_since(a), 0);
    }

    #[test]
    fn offset_by_nanos_saturates_at_epoch() {
        let t = SimTime::from_nanos(5);
        assert_eq!(t.offset_by_nanos(-10), SimTime::ZERO);
        assert_eq!(t.offset_by_nanos(10), SimTime::from_nanos(15));
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn duration_since_panics_on_reversed_order() {
        let _ = SimTime::from_secs(1).duration_since(SimTime::from_secs(2));
    }

    #[test]
    fn duration_float_round_trip() {
        let d = SimDuration::from_secs_f64(1.25);
        assert_eq!(d, SimDuration::from_millis(1250));
        assert!((d.as_secs_f64() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn duration_scaling() {
        assert_eq!(SimDuration::from_secs(2) * 3, SimDuration::from_secs(6));
        assert_eq!(SimDuration::from_secs(6) / 3, SimDuration::from_secs(2));
        assert_eq!(
            SimDuration::from_secs(10).mul_f64(0.5),
            SimDuration::from_secs(5)
        );
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            SimDuration::MAX.saturating_add(SimDuration::from_secs(1)),
            SimDuration::MAX
        );
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(5)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_secs(3661).to_string(), "01:01:01.000");
        assert_eq!(SimDuration::from_millis(1500).to_string(), "1.500s");
        assert_eq!(SimDuration::from_micros(1500).to_string(), "1.500ms");
        assert_eq!(SimDuration::from_nanos(1500).to_string(), "1.500us");
        assert_eq!(SimDuration::from_nanos(15).to_string(), "15ns");
    }
}
