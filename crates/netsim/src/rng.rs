//! Deterministic simulation randomness.
//!
//! Every run of a simulation with the same seed must produce the same event
//! trace. [`SimRng`] wraps a seedable PRNG and adds [`SimRng::fork`] so that
//! independent components (each node, each Monte-Carlo trial) can draw from
//! decorrelated streams without sharing mutable state.
//!
//! # Examples
//!
//! ```
//! use netsim::rng::SimRng;
//! use rand::Rng;
//!
//! let mut a = SimRng::seed_from(42);
//! let mut b = SimRng::seed_from(42);
//! assert_eq!(a.gen::<u64>(), b.gen::<u64>());
//! ```

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic, seedable random number generator for simulations.
///
/// Implements [`RngCore`], so all of [`rand`]'s extension traits
/// (`gen_range`, `shuffle` via `SliceRandom`, ...) are available.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
    /// Number of forks taken from this generator, mixed into child seeds.
    forks: u64,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
            forks: 0,
        }
    }

    /// Derives an independent child generator.
    ///
    /// Successive forks from the same parent produce different streams, and
    /// forking does not perturb the parent's own stream beyond the draw used
    /// to seed the child.
    pub fn fork(&mut self) -> SimRng {
        self.forks += 1;
        let seed = self.inner.gen::<u64>() ^ self.forks.rotate_left(17);
        SimRng::seed_from(seed)
    }

    /// Derives a child generator for a named component.
    ///
    /// Unlike [`SimRng::fork`], this does not advance the parent stream, so
    /// adding a new labelled consumer does not shift randomness seen by
    /// existing consumers. The label is hashed with FNV-1a.
    pub fn fork_labeled(&self, label: &str) -> SimRng {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in label.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Mix with a snapshot of the parent's next output without consuming it:
        // clone the inner generator so the parent stream is untouched.
        let mut probe = self.inner.clone();
        SimRng::seed_from(hash ^ probe.gen::<u64>())
    }

    /// Draws a uniformly random boolean that is `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `0.0..=1.0`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen_bool(p)
        }
    }

    /// Samples a standard normal variate via Box-Muller.
    pub fn standard_normal(&mut self) -> f64 {
        // Box-Muller transform; u1 in (0, 1] to avoid ln(0).
        let u1: f64 = 1.0 - self.inner.gen::<f64>();
        let u2: f64 = self.inner.gen();
        (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
    }

    /// Samples a normal variate with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Chooses `k` distinct indices uniformly from `0..n` (partial
    /// Fisher-Yates).
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} items from a population of {n}");
        let mut pool: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = self.inner.gen_range(i..n);
            pool.swap(i, j);
        }
        pool.truncate(k);
        pool
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(8);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forks_are_decorrelated_and_deterministic() {
        let mut parent1 = SimRng::seed_from(99);
        let mut parent2 = SimRng::seed_from(99);
        let mut c1a = parent1.fork();
        let mut c1b = parent1.fork();
        let mut c2a = parent2.fork();
        assert_eq!(c1a.gen::<u64>(), c2a.gen::<u64>(), "fork is deterministic");
        assert_ne!(
            c1a.gen::<u64>(),
            c1b.gen::<u64>(),
            "sibling forks are distinct streams"
        );
    }

    #[test]
    fn labeled_fork_does_not_advance_parent() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(1);
        let _child = a.fork_labeled("dns");
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn labeled_forks_differ_by_label() {
        let a = SimRng::seed_from(1);
        let mut x = a.fork_labeled("x");
        let mut y = a.fork_labeled("y");
        assert_ne!(x.gen::<u64>(), y.gen::<u64>());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn chance_rejects_invalid() {
        SimRng::seed_from(0).chance(1.5);
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = SimRng::seed_from(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = SimRng::seed_from(5);
        let picked = rng.sample_indices(100, 15);
        assert_eq!(picked.len(), 15);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 15, "indices must be distinct");
        assert!(picked.iter().all(|&i| i < 100));
    }

    #[test]
    fn sample_indices_full_population_is_permutation() {
        let mut rng = SimRng::seed_from(5);
        let mut picked = rng.sample_indices(10, 10);
        picked.sort_unstable();
        assert_eq!(picked, (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_indices_rejects_oversample() {
        SimRng::seed_from(0).sample_indices(3, 4);
    }
}
