//! The node abstraction: everything attached to the simulated network.
//!
//! A [`Node`] is a state machine driven by packet arrivals and timers. Nodes
//! interact with the world exclusively through the [`Context`] handed to each
//! callback: they can send packets (with any source address — spoofing is a
//! first-class capability of the model) and arm timers.

use crate::ip::Ipv4Packet;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use core::fmt;
use serde::{Deserialize, Serialize};
use std::any::Any;

/// Identifies a node within a [`crate::world::World`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(usize);

impl NodeId {
    /// Creates an id from a raw index. Normally produced by
    /// [`crate::world::World::add_node`].
    pub fn new(index: usize) -> Self {
        NodeId(index)
    }

    /// The underlying index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Deferred side effects a node requests during a callback.
#[derive(Debug)]
pub(crate) enum Action {
    Send(Ipv4Packet),
    Timer { delay: SimDuration, tag: u64 },
}

/// Execution context passed to node callbacks.
///
/// Collects the node's outgoing packets and timer requests; the world applies
/// them after the callback returns, which keeps event ordering deterministic.
#[derive(Debug)]
pub struct Context<'a> {
    now: SimTime,
    self_id: NodeId,
    rng: &'a mut SimRng,
    actions: &'a mut Vec<Action>,
}

impl<'a> Context<'a> {
    pub(crate) fn new(
        now: SimTime,
        self_id: NodeId,
        rng: &'a mut SimRng,
        actions: &'a mut Vec<Action>,
    ) -> Self {
        Context {
            now,
            self_id,
            rng,
            actions,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the node being called.
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    /// The simulation RNG (deterministic under the world seed).
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Transmits a packet. Routing is by destination address only; the
    /// source address is taken at face value (spoofing works).
    pub fn send(&mut self, pkt: Ipv4Packet) {
        self.actions.push(Action::Send(pkt));
    }

    /// Arms a one-shot timer that fires `delay` from now with `tag`.
    ///
    /// Timers cannot be cancelled; nodes ignore stale tags instead.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) {
        self.actions.push(Action::Timer { delay, tag });
    }
}

/// A protocol endpoint attached to the simulated network.
///
/// Implementors also provide [`Node::as_any`] / [`Node::as_any_mut`] so
/// experiment code can downcast back to the concrete type after the run.
///
/// Nodes are `Send` so whole worlds can migrate between Monte-Carlo worker
/// threads (see [`crate::pool::WorldPool`]).
pub trait Node: Any + Send {
    /// Invoked once when the simulation starts (time 0 of the run).
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let _ = ctx;
    }

    /// Invoked when a packet addressed (or hijack-routed) to this node
    /// arrives.
    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Ipv4Packet);

    /// Invoked when a timer armed via [`Context::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: u64) {
        let _ = (ctx, tag);
    }

    /// Restores the node to its freshly-constructed state, retaining
    /// configuration and allocations, so a world can be reused across
    /// Monte-Carlo trials via [`crate::world::World::reset`] instead of
    /// being rebuilt.
    ///
    /// Implementations must clear every piece of *run* state (caches,
    /// pending exchanges, counters, learned PMTUs) while keeping *config*
    /// state (addresses, policies, zones) — after `reset`, driving the node
    /// with the same event sequence must reproduce the same behaviour as a
    /// newly constructed node. The default is a no-op, which is only correct
    /// for stateless nodes.
    fn reset(&mut self) {}

    /// Upcast for downcasting in experiment code.
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast for downcasting in experiment code.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// A standalone harness for driving [`Node`]s and stack components outside
/// a [`crate::world::World`] — used heavily by tests and by probe tooling
/// that wants to inspect raw packets.
///
/// # Examples
///
/// ```
/// use netsim::node::NodeHarness;
/// use netsim::stack::IpStack;
/// use bytes::Bytes;
///
/// let mut h = NodeHarness::new(1);
/// let mut stack = IpStack::new("10.0.0.1".parse()?);
/// h.with_ctx(|ctx| {
///     stack.send_udp(ctx, "10.0.0.1".parse().unwrap(), 1000,
///                    "10.0.0.2".parse().unwrap(), 2000, Bytes::from_static(b"x"));
/// });
/// assert_eq!(h.take_sent().len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct NodeHarness {
    rng: SimRng,
    actions: Vec<Action>,
    now: SimTime,
    id: NodeId,
}

impl NodeHarness {
    /// Creates a harness with a deterministic RNG seed.
    pub fn new(seed: u64) -> Self {
        NodeHarness {
            rng: SimRng::seed_from(seed),
            actions: Vec::new(),
            now: SimTime::ZERO,
            id: NodeId::new(0),
        }
    }

    /// Sets the simulated time passed to subsequent contexts.
    pub fn set_now(&mut self, now: SimTime) {
        self.now = now;
    }

    /// Current harness time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances harness time.
    pub fn advance(&mut self, d: SimDuration) {
        self.now += d;
    }

    /// Runs `f` with a fresh [`Context`]; actions accumulate in the harness.
    pub fn with_ctx<R>(&mut self, f: impl FnOnce(&mut Context<'_>) -> R) -> R {
        let mut ctx = Context::new(self.now, self.id, &mut self.rng, &mut self.actions);
        f(&mut ctx)
    }

    /// Drains and returns the packets sent so far.
    pub fn take_sent(&mut self) -> Vec<Ipv4Packet> {
        let mut sent = Vec::new();
        let mut kept = Vec::with_capacity(self.actions.len());
        for a in self.actions.drain(..) {
            match a {
                Action::Send(pkt) => sent.push(pkt),
                other => kept.push(other),
            }
        }
        self.actions = kept;
        sent
    }

    /// Drains and returns the timers armed so far as `(delay, tag)` pairs.
    pub fn take_timers(&mut self) -> Vec<(SimDuration, u64)> {
        let mut timers = Vec::new();
        self.actions.retain(|a| match a {
            Action::Timer { delay, tag } => {
                timers.push((*delay, *tag));
                false
            }
            _ => true,
        });
        timers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trip_and_display() {
        let id = NodeId::new(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "n7");
    }

    #[test]
    fn context_collects_actions() {
        let mut rng = SimRng::seed_from(0);
        let mut actions = Vec::new();
        let mut ctx = Context::new(
            SimTime::from_secs(5),
            NodeId::new(1),
            &mut rng,
            &mut actions,
        );
        assert_eq!(ctx.now(), SimTime::from_secs(5));
        assert_eq!(ctx.self_id(), NodeId::new(1));
        ctx.set_timer(SimDuration::from_secs(1), 42);
        let pkt = Ipv4Packet::new(
            "10.0.0.1".parse().unwrap(),
            "10.0.0.2".parse().unwrap(),
            crate::ip::IpProto::Udp,
            bytes::Bytes::from_static(b"x"),
        );
        ctx.send(pkt);
        assert_eq!(actions.len(), 2);
        assert!(matches!(actions[0], Action::Timer { tag: 42, .. }));
        assert!(matches!(actions[1], Action::Send(_)));
    }
}
