//! The simulation container: nodes, routing, the event loop.
//!
//! A [`World`] owns every node, a deterministic event queue, the topology,
//! and the packet trace. Packets are routed by destination address; an
//! active *hijack* (the BGP prefix-hijack model) overrides legitimate
//! ownership for the addresses it covers. Core routers fragment oversized
//! packets (or drop them with ICMP "fragmentation needed" when DF is set).
//!
//! # Examples
//!
//! ```
//! use netsim::world::World;
//! use netsim::time::{SimTime, SimDuration};
//!
//! let mut world = World::new(42);
//! world.run_until(SimTime::from_secs(10));
//! assert_eq!(world.now(), SimTime::from_secs(10));
//! ```

use crate::icmp::{IcmpMessage, QuotedPacket};
use crate::ip::{FragmentError, Ipv4Net, Ipv4Packet};
use crate::link::{AccessLink, Topology};
use crate::node::{Action, Context, Node, NodeId};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::trace::{Trace, TraceOutcome};
use serde::{Deserialize, Serialize};
use std::collections::{BinaryHeap, HashMap};
use std::net::Ipv4Addr;

/// Address used as the source of router-originated ICMP errors.
pub const ROUTER_ADDR: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 254);

/// An active prefix hijack: traffic to `prefix` is delivered to `to`
/// while the hijack is active, regardless of legitimate ownership.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hijack {
    /// The hijacked prefix.
    pub prefix: Ipv4Net,
    /// The node receiving hijacked traffic.
    pub to: NodeId,
    /// Activation time (inclusive).
    pub from: SimTime,
    /// Deactivation time (exclusive).
    pub until: SimTime,
}

/// Counters describing world activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorldStats {
    /// Events processed.
    pub events: u64,
    /// Packets delivered to their legitimate owner.
    pub delivered: u64,
    /// Packets delivered to a hijacker.
    pub hijack_delivered: u64,
    /// Packets lost to random loss.
    pub lost: u64,
    /// Packets with unroutable destinations.
    pub no_route: u64,
    /// Packets fragmented by core routers.
    pub transit_fragmented: u64,
    /// DF packets dropped for exceeding the path MTU.
    pub df_dropped: u64,
    /// Timer events fired.
    pub timers: u64,
}

#[derive(Debug)]
enum EventKind {
    Start(NodeId),
    Arrival { node: NodeId, pkt: Ipv4Packet },
    Timer { node: NodeId, tag: u64 },
}

#[derive(Debug)]
struct Scheduled {
    at: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        // Reversed for a min-heap on (at, seq).
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The discrete-event simulation world.
pub struct World {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Scheduled>,
    nodes: Vec<Option<Box<dyn Node>>>,
    labels: Vec<String>,
    addr_owner: HashMap<Ipv4Addr, NodeId>,
    hijacks: Vec<Hijack>,
    topology: Topology,
    rng: SimRng,
    trace: Trace,
    stats: WorldStats,
    started: bool,
    // Reused per-event action buffer: dispatch drains it back to empty, so
    // steady-state event processing performs no per-event allocation.
    actions_scratch: Vec<Action>,
}

impl core::fmt::Debug for World {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("World")
            .field("now", &self.now)
            .field("nodes", &self.labels)
            .field("pending_events", &self.queue.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl World {
    /// Creates an empty world with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        World {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::with_capacity(256),
            nodes: Vec::new(),
            labels: Vec::new(),
            addr_owner: HashMap::new(),
            hijacks: Vec::new(),
            topology: Topology::default(),
            rng: SimRng::seed_from(seed),
            trace: Trace::default(),
            stats: WorldStats::default(),
            started: false,
            actions_scratch: Vec::with_capacity(16),
        }
    }

    /// Adds a node owning `addrs` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if any address is already owned by another node.
    pub fn add_node(
        &mut self,
        label: impl Into<String>,
        node: Box<dyn Node>,
        addrs: &[Ipv4Addr],
    ) -> NodeId {
        let id = NodeId::new(self.nodes.len());
        for &a in addrs {
            let prev = self.addr_owner.insert(a, id);
            assert!(prev.is_none(), "address {a} already owned by {prev:?}");
        }
        self.nodes.push(Some(node));
        self.labels.push(label.into());
        self.topology.register_node(AccessLink::default());
        if self.started {
            self.push(self.now, EventKind::Start(id));
        }
        id
    }

    /// Rewinds the world to time zero under a (possibly new) RNG seed,
    /// retaining its nodes, topology and allocations, so one constructed
    /// world can serve many Monte-Carlo trials without being rebuilt.
    ///
    /// Everything scheduled or accumulated during the previous run is
    /// discarded: the event queue is **drained** (in-flight packet arrivals
    /// and pending timers never fire after a reset), hijacks are removed,
    /// stats are zeroed, the trace is emptied (its enabled flag is kept),
    /// and every node's [`Node::reset`] hook runs. Start events fire again
    /// on the next `run_*` call, exactly as for a fresh world.
    pub fn reset(&mut self, seed: u64) {
        self.now = SimTime::ZERO;
        self.seq = 0;
        // Drain, don't leak: a stale Arrival or Timer surviving into the
        // next trial would be observable (and seed-dependent).
        self.queue.clear();
        self.hijacks.clear();
        self.rng = SimRng::seed_from(seed);
        self.trace.reset();
        self.stats = WorldStats::default();
        self.started = false;
        for node in self.nodes.iter_mut().flatten() {
            node.reset();
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The label a node was registered with.
    pub fn label(&self, id: NodeId) -> &str {
        &self.labels[id.index()]
    }

    /// The first node registered under `label`, if any (labels are not
    /// required to be unique; builders that rely on lookup use unique ones).
    pub fn find_node(&self, label: &str) -> Option<NodeId> {
        self.labels.iter().position(|l| l == label).map(NodeId::new)
    }

    /// Mutable access to the topology (MTUs, latencies).
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topology
    }

    /// Read access to the topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The packet trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Mutable access to the packet trace (enable/disable/clear).
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// Activity counters.
    pub fn stats(&self) -> WorldStats {
        self.stats
    }

    /// The world RNG (deterministic under the construction seed).
    pub fn rng_mut(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Declares a prefix hijack active during `[from, until)`.
    pub fn add_hijack(&mut self, prefix: Ipv4Net, to: NodeId, from: SimTime, until: SimTime) {
        self.hijacks.push(Hijack {
            prefix,
            to,
            from,
            until,
        });
    }

    /// Removes all hijacks.
    pub fn clear_hijacks(&mut self) {
        self.hijacks.clear();
    }

    /// The node that currently receives traffic for `dst`, with a flag
    /// indicating whether a hijack is responsible.
    pub fn route(&self, dst: Ipv4Addr, at: SimTime) -> Option<(NodeId, bool)> {
        // Most specific active hijack wins; ties go to the earliest added.
        let hijacked = self
            .hijacks
            .iter()
            .filter(|h| h.from <= at && at < h.until && h.prefix.contains(dst))
            .max_by_key(|h| h.prefix.prefix_len());
        if let Some(h) = hijacked {
            return Some((h.to, true));
        }
        self.addr_owner.get(&dst).map(|&id| (id, false))
    }

    /// Legitimate owner of an address, ignoring hijacks.
    pub fn owner_of(&self, addr: Ipv4Addr) -> Option<NodeId> {
        self.addr_owner.get(&addr).copied()
    }

    /// Borrows a node downcast to its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if the node is of a different type.
    pub fn node<T: Node>(&self, id: NodeId) -> &T {
        self.nodes[id.index()]
            .as_ref()
            .expect("node is being dispatched")
            .as_any()
            .downcast_ref::<T>()
            .unwrap_or_else(|| panic!("node {id} is not a {}", core::any::type_name::<T>()))
    }

    /// Mutably borrows a node downcast to its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if the node is of a different type.
    pub fn node_mut<T: Node>(&mut self, id: NodeId) -> &mut T {
        self.nodes[id.index()]
            .as_mut()
            .expect("node is being dispatched")
            .as_any_mut()
            .downcast_mut::<T>()
            .unwrap_or_else(|| panic!("node {id} is not a {}", core::any::type_name::<T>()))
    }

    fn push(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled { at, seq, kind });
    }

    /// Injects a packet into the network as if `from` had sent it now.
    /// Useful for scripted probes in tests and experiments.
    pub fn inject(&mut self, from: NodeId, pkt: Ipv4Packet) {
        self.transmit(from, pkt);
    }

    /// Schedules a timer for a node from outside the event loop.
    pub fn schedule_timer(&mut self, node: NodeId, delay: SimDuration, tag: u64) {
        self.push(self.now + delay, EventKind::Timer { node, tag });
    }

    fn ensure_started(&mut self) {
        if !self.started {
            self.started = true;
            for i in 0..self.nodes.len() {
                self.push(self.now, EventKind::Start(NodeId::new(i)));
            }
        }
    }

    /// Runs the event loop until `deadline`, leaving `now == deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.ensure_started();
        while let Some(head) = self.queue.peek() {
            if head.at > deadline {
                break;
            }
            let ev = self.queue.pop().expect("peeked");
            debug_assert!(ev.at >= self.now, "time went backwards");
            self.now = ev.at;
            self.dispatch(ev.kind);
        }
        self.now = deadline;
    }

    /// Runs for a duration from the current time.
    pub fn run_for(&mut self, d: SimDuration) {
        self.run_until(self.now + d);
    }

    /// Runs until no events remain (careful with self-rearming timers).
    pub fn run_until_idle(&mut self) {
        self.ensure_started();
        while let Some(ev) = self.queue.pop() {
            self.now = ev.at;
            self.dispatch(ev.kind);
        }
    }

    /// Processes a single event; returns its timestamp, or `None` if the
    /// queue was empty.
    pub fn step(&mut self) -> Option<SimTime> {
        self.ensure_started();
        let ev = self.queue.pop()?;
        self.now = ev.at;
        let at = ev.at;
        self.dispatch(ev.kind);
        Some(at)
    }

    fn dispatch(&mut self, kind: EventKind) {
        self.stats.events += 1;
        let node_id = match &kind {
            EventKind::Start(id) => *id,
            EventKind::Arrival { node, .. } => *node,
            EventKind::Timer { node, .. } => {
                self.stats.timers += 1;
                *node
            }
        };
        let Some(mut node) = self.nodes[node_id.index()].take() else {
            return;
        };
        // Reuse the action buffer across events (drained below, capacity
        // kept); swap it out so `self` stays borrowable by `Context`.
        let mut actions = std::mem::take(&mut self.actions_scratch);
        debug_assert!(actions.is_empty());
        {
            let mut ctx = Context::new(self.now, node_id, &mut self.rng, &mut actions);
            match kind {
                EventKind::Start(_) => node.on_start(&mut ctx),
                EventKind::Arrival { pkt, .. } => node.on_packet(&mut ctx, pkt),
                EventKind::Timer { tag, .. } => node.on_timer(&mut ctx, tag),
            }
        }
        self.nodes[node_id.index()] = Some(node);
        for action in actions.drain(..) {
            match action {
                Action::Send(pkt) => self.transmit(node_id, pkt),
                Action::Timer { delay, tag } => {
                    self.push(self.now + delay, EventKind::Timer { node: node_id, tag });
                }
            }
        }
        self.actions_scratch = actions;
    }

    fn transmit(&mut self, from: NodeId, pkt: Ipv4Packet) {
        let Some((to, hijacked)) = self.route(pkt.dst, self.now) else {
            self.stats.no_route += 1;
            self.trace
                .record(self.now, from, None, TraceOutcome::NoRoute, &pkt);
            return;
        };
        let profile = self.topology.path(from, to);
        if profile.loss > 0.0 && self.rng.chance(profile.loss) {
            self.stats.lost += 1;
            self.trace
                .record(self.now, from, Some(to), TraceOutcome::Lost, &pkt);
            return;
        }
        let mtu = self.topology.path_mtu(from, to);
        if pkt.total_len() <= mtu as usize {
            // Common case: no transit fragmentation — deliver the packet
            // itself without building a single-element Vec.
            let latency = profile.latency.sample(&mut self.rng);
            self.deliver_piece(from, to, hijacked, pkt, latency, 0);
            return;
        }
        let pieces = match pkt.fragment(mtu) {
            Ok(frags) => {
                self.stats.transit_fragmented += 1;
                self.trace.record(
                    self.now,
                    from,
                    Some(to),
                    TraceOutcome::FragmentedInTransit,
                    &pkt,
                );
                frags
            }
            Err(FragmentError::DontFragment { .. }) => {
                self.stats.df_dropped += 1;
                self.trace
                    .record(self.now, from, Some(to), TraceOutcome::DfDropped, &pkt);
                self.send_frag_needed(from, &pkt, mtu);
                return;
            }
            Err(_) => {
                self.stats.no_route += 1;
                return;
            }
        };
        let latency = profile.latency.sample(&mut self.rng);
        self.queue.reserve(pieces.len());
        for (i, piece) in pieces.into_iter().enumerate() {
            self.deliver_piece(from, to, hijacked, piece, latency, i as u64);
        }
    }

    /// Records and enqueues one delivered packet (or fragment `index` of a
    /// transit-fragmented datagram; fragments keep their relative order via
    /// the per-index micro-offset).
    fn deliver_piece(
        &mut self,
        from: NodeId,
        to: NodeId,
        hijacked: bool,
        piece: Ipv4Packet,
        latency: SimDuration,
        index: u64,
    ) {
        let outcome = if hijacked {
            self.stats.hijack_delivered += 1;
            TraceOutcome::Hijacked
        } else {
            self.stats.delivered += 1;
            TraceOutcome::Delivered
        };
        self.trace.record(self.now, from, Some(to), outcome, &piece);
        let at = self.now + latency + SimDuration::from_micros(index);
        self.push(
            at,
            EventKind::Arrival {
                node: to,
                pkt: piece,
            },
        );
    }

    fn send_frag_needed(&mut self, offender: NodeId, pkt: &Ipv4Packet, mtu: u16) {
        let icmp = IcmpMessage::FragmentationNeeded {
            mtu,
            original: QuotedPacket::of(pkt),
        }
        .into_packet(ROUTER_ADDR, pkt.src);
        // Deliver straight back to the sending node (the router is adjacent).
        let latency = self
            .topology
            .path(offender, offender)
            .latency
            .sample(&mut self.rng);
        self.push(
            self.now + latency,
            EventKind::Arrival {
                node: offender,
                pkt: icmp,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ip::IpProto;
    use crate::stack::{IpStack, StackEvent};
    use bytes::Bytes;
    use std::any::Any;

    /// Echoes every UDP payload back to its sender and counts deliveries.
    struct Echo {
        stack: IpStack,
        received: Vec<(Ipv4Addr, Bytes)>,
        timer_fired: u64,
    }

    impl Echo {
        fn new(addr: Ipv4Addr) -> Self {
            Echo {
                stack: IpStack::new(addr),
                received: Vec::new(),
                timer_fired: 0,
            }
        }
    }

    impl Node for Echo {
        fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Ipv4Packet) {
            if let Some(StackEvent::Udp { src, dst, datagram }) = self.stack.handle(ctx, pkt) {
                self.received.push((src, datagram.payload.clone()));
                self.stack.send_udp(
                    ctx,
                    dst,
                    datagram.dst_port,
                    src,
                    datagram.src_port,
                    datagram.payload,
                );
            }
        }
        fn on_timer(&mut self, _ctx: &mut Context<'_>, _tag: u64) {
            self.timer_fired += 1;
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Absorbs packets without replying (hijackers cannot reply from the
    /// victim's address without spoofing, which `Echo` does not do).
    struct Sink {
        stack: IpStack,
        received: usize,
    }

    impl Sink {
        fn new(addr: Ipv4Addr) -> Self {
            Sink {
                stack: IpStack::new(addr),
                received: 0,
            }
        }
    }

    impl Node for Sink {
        fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Ipv4Packet) {
            // A hijacker receives packets for addresses it does not own, so
            // feed the raw packet in regardless of the stack's address list.
            if self.stack.handle(ctx, pkt).is_some() {
                self.received += 1;
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Sends one datagram at start and records replies.
    struct Pinger {
        stack: IpStack,
        target: Ipv4Addr,
        size: usize,
        replies: usize,
    }

    impl Node for Pinger {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            let addr = self.stack.addr();
            self.stack.send_udp(
                ctx,
                addr,
                4000,
                self.target,
                7,
                Bytes::from(vec![0x55; self.size]),
            );
        }
        fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Ipv4Packet) {
            if let Some(StackEvent::Udp { .. }) = self.stack.handle(ctx, pkt) {
                self.replies += 1;
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn addr(o: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 1, 1, o)
    }

    #[test]
    fn request_reply_round_trip() {
        let mut world = World::new(1);
        let echo = world.add_node("echo", Box::new(Echo::new(addr(2))), &[addr(2)]);
        let ping = world.add_node(
            "ping",
            Box::new(Pinger {
                stack: IpStack::new(addr(1)),
                target: addr(2),
                size: 32,
                replies: 0,
            }),
            &[addr(1)],
        );
        world.run_for(SimDuration::from_secs(2));
        assert_eq!(world.node::<Echo>(echo).received.len(), 1);
        assert_eq!(world.node::<Pinger>(ping).replies, 1);
        assert!(world.stats().delivered >= 2);
    }

    #[test]
    fn transit_fragmentation_and_reassembly() {
        let mut world = World::new(2);
        let echo = world.add_node("echo", Box::new(Echo::new(addr(2))), &[addr(2)]);
        let ping = world.add_node(
            "ping",
            Box::new(Pinger {
                stack: IpStack::new(addr(1)),
                target: addr(2),
                size: 1400,
                replies: 0,
            }),
            &[addr(1)],
        );
        // Receiver sits behind a 576-byte access link: the core fragments.
        world.topology_mut().set_access_mtu(echo, 576);
        world.run_for(SimDuration::from_secs(2));
        assert_eq!(world.node::<Echo>(echo).received.len(), 1);
        assert!(world.stats().transit_fragmented >= 1);
        // Reply also fragments on the way back.
        assert_eq!(world.node::<Pinger>(ping).replies, 1);
    }

    #[test]
    fn unroutable_destination_is_counted() {
        let mut world = World::new(3);
        let _ = world.add_node(
            "ping",
            Box::new(Pinger {
                stack: IpStack::new(addr(1)),
                target: addr(99),
                size: 10,
                replies: 0,
            }),
            &[addr(1)],
        );
        world.run_for(SimDuration::from_secs(1));
        assert_eq!(world.stats().no_route, 1);
        assert_eq!(
            world.trace().count(|e| e.outcome == TraceOutcome::NoRoute),
            1
        );
    }

    #[test]
    fn full_loss_kills_all_packets() {
        let mut world = World::new(4);
        let echo = world.add_node("echo", Box::new(Echo::new(addr(2))), &[addr(2)]);
        let _ = world.add_node(
            "ping",
            Box::new(Pinger {
                stack: IpStack::new(addr(1)),
                target: addr(2),
                size: 10,
                replies: 0,
            }),
            &[addr(1)],
        );
        let mut lossy = crate::link::PathProfile::constant(SimDuration::from_millis(10));
        lossy.loss = 1.0;
        world.topology_mut().set_default_path(lossy);
        world.run_for(SimDuration::from_secs(1));
        assert_eq!(world.node::<Echo>(echo).received.len(), 0);
        assert_eq!(world.stats().lost, 1);
    }

    #[test]
    fn hijack_redirects_traffic_within_window() {
        let mut world = World::new(5);
        let victim = world.add_node("victim", Box::new(Echo::new(addr(2))), &[addr(2)]);
        let hijacker = world.add_node("hijacker", Box::new(Sink::new(addr(66))), &[addr(66)]);
        let _ = world.add_node(
            "ping",
            Box::new(Pinger {
                stack: IpStack::new(addr(1)),
                target: addr(2),
                size: 10,
                replies: 0,
            }),
            &[addr(1)],
        );
        world.add_hijack(
            Ipv4Net::host(addr(2)),
            hijacker,
            SimTime::ZERO,
            SimTime::from_secs(3600),
        );
        world.run_for(SimDuration::from_secs(1));
        assert_eq!(world.node::<Echo>(victim).received.len(), 0);
        assert_eq!(world.node::<Sink>(hijacker).received, 1);
        assert!(world.stats().hijack_delivered >= 1);
    }

    #[test]
    fn hijack_expires_after_window() {
        let mut world = World::new(6);
        let victim = world.add_node("victim", Box::new(Echo::new(addr(2))), &[addr(2)]);
        let hijacker = world.add_node("hijacker", Box::new(Sink::new(addr(66))), &[addr(66)]);
        world.add_hijack(
            Ipv4Net::host(addr(2)),
            hijacker,
            SimTime::ZERO,
            SimTime::from_secs(5),
        );
        // Advance past the hijack window, then send.
        world.run_until(SimTime::from_secs(10));
        let ping = world.add_node(
            "ping",
            Box::new(Pinger {
                stack: IpStack::new(addr(1)),
                target: addr(2),
                size: 10,
                replies: 0,
            }),
            &[addr(1)],
        );
        world.run_for(SimDuration::from_secs(2));
        assert_eq!(world.node::<Echo>(victim).received.len(), 1);
        assert_eq!(world.node::<Sink>(hijacker).received, 0);
        assert_eq!(world.node::<Pinger>(ping).replies, 1);
    }

    #[test]
    fn more_specific_hijack_wins() {
        let mut world = World::new(7);
        let _victim = world.add_node("victim", Box::new(Echo::new(addr(2))), &[addr(2)]);
        let wide = world.add_node("wide", Box::new(Sink::new(addr(60))), &[addr(60)]);
        let narrow = world.add_node("narrow", Box::new(Sink::new(addr(61))), &[addr(61)]);
        world.add_hijack(Ipv4Net::new(addr(0), 24), wide, SimTime::ZERO, SimTime::MAX);
        world.add_hijack(Ipv4Net::host(addr(2)), narrow, SimTime::ZERO, SimTime::MAX);
        let (to, hijacked) = world.route(addr(2), SimTime::from_secs(1)).unwrap();
        assert!(hijacked);
        assert_eq!(to, narrow);
    }

    #[test]
    fn df_oversize_generates_icmp_frag_needed() {
        struct DfSender {
            stack: IpStack,
            target: Ipv4Addr,
            got_frag_needed: Option<u16>,
        }
        impl Node for DfSender {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                let src = self.stack.addr();
                let dgram = crate::udp::UdpDatagram::new(1, 2, Bytes::from(vec![0u8; 1000]));
                let mut pkt = Ipv4Packet::new(
                    src,
                    self.target,
                    IpProto::Udp,
                    dgram.encode(src, self.target),
                );
                pkt.dont_fragment = true;
                pkt.id = 9;
                ctx.send(pkt);
            }
            fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Ipv4Packet) {
                if let Some(StackEvent::Icmp {
                    message: IcmpMessage::FragmentationNeeded { mtu, .. },
                    ..
                }) = self.stack.handle(ctx, pkt)
                {
                    self.got_frag_needed = Some(mtu);
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }

        let mut world = World::new(8);
        let echo = world.add_node("echo", Box::new(Echo::new(addr(2))), &[addr(2)]);
        let sender = world.add_node(
            "df",
            Box::new(DfSender {
                stack: IpStack::new(addr(1)),
                target: addr(2),
                got_frag_needed: None,
            }),
            &[addr(1)],
        );
        world.topology_mut().set_access_mtu(echo, 576);
        world.run_for(SimDuration::from_secs(2));
        assert_eq!(world.stats().df_dropped, 1);
        assert_eq!(
            world.node::<DfSender>(sender).got_frag_needed,
            Some(576),
            "sender learns the path MTU from the ICMP error"
        );
        // And its stack recorded the new PMTU toward the target.
        assert_eq!(world.node::<DfSender>(sender).stack.pmtu(addr(2)), 576);
    }

    #[test]
    fn identical_seeds_produce_identical_runs() {
        fn run(seed: u64) -> (u64, u64) {
            let mut world = World::new(seed);
            let _ = world.add_node("echo", Box::new(Echo::new(addr(2))), &[addr(2)]);
            let _ = world.add_node(
                "ping",
                Box::new(Pinger {
                    stack: IpStack::new(addr(1)),
                    target: addr(2),
                    size: 600,
                    replies: 0,
                }),
                &[addr(1)],
            );
            world.run_for(SimDuration::from_secs(5));
            (world.stats().events, world.trace().total_recorded())
        }
        assert_eq!(run(11), run(11));
        assert_ne!(run(11).0, 0);
    }

    #[test]
    fn scheduled_timer_fires() {
        let mut world = World::new(9);
        let echo = world.add_node("echo", Box::new(Echo::new(addr(2))), &[addr(2)]);
        world.schedule_timer(echo, SimDuration::from_secs(5), 77);
        world.run_until(SimTime::from_secs(4));
        assert_eq!(world.node::<Echo>(echo).timer_fired, 0);
        world.run_until(SimTime::from_secs(6));
        assert_eq!(world.node::<Echo>(echo).timer_fired, 1);
        assert_eq!(world.stats().timers, 1);
    }

    /// Regression: a reset must drain *everything* the previous run
    /// scheduled — a pending timer, an in-flight packet arrival, or an
    /// active hijack surviving into the next trial would make pooled worlds
    /// diverge from freshly built ones.
    #[test]
    fn reset_drains_stale_timers_arrivals_and_hijacks() {
        let mut world = World::new(20);
        let echo = world.add_node("echo", Box::new(Echo::new(addr(2))), &[addr(2)]);
        let hijacker = world.add_node("hijacker", Box::new(Sink::new(addr(66))), &[addr(66)]);
        let ping = world.add_node(
            "ping",
            Box::new(Pinger {
                stack: IpStack::new(addr(1)),
                target: addr(2),
                size: 32,
                replies: 0,
            }),
            &[addr(1)],
        );
        // A timer well in the future, a hijack, and (by stopping mid-flight)
        // an undelivered packet arrival all sit in the queue.
        world.schedule_timer(echo, SimDuration::from_secs(5), 99);
        world.add_hijack(
            Ipv4Net::host(addr(2)),
            hijacker,
            SimTime::from_secs(2),
            SimTime::from_secs(3600),
        );
        world.run_until(SimTime::from_nanos(1)); // ping sent, not yet delivered
        assert!(!world.queue.is_empty(), "arrival + timer still queued");

        world.reset(20);
        assert_eq!(world.queue.len(), 0, "reset must drain the event queue");
        assert_eq!(world.now(), SimTime::ZERO);
        world.run_until(SimTime::from_secs(10));
        // The pre-reset timer never fires; the pre-reset hijack is gone, so
        // the fresh run's traffic reaches the echo node normally.
        assert_eq!(world.stats().timers, 0, "stale timer leaked through reset");
        assert_eq!(
            world.node::<Sink>(hijacker).received,
            0,
            "stale hijack leaked through reset"
        );
        assert_eq!(world.node::<Echo>(echo).received.len(), 1);
        assert_eq!(world.node::<Pinger>(ping).replies, 1);
    }

    #[test]
    fn reset_world_reproduces_fresh_run_byte_identically() {
        fn drive(world: &mut World) -> (WorldStats, u64) {
            world.run_until(SimTime::from_secs(5));
            (world.stats(), world.trace().total_recorded())
        }
        let build = |seed: u64| {
            let mut w = World::new(seed);
            w.add_node("echo", Box::new(Echo::new(addr(2))), &[addr(2)]);
            w.add_node(
                "ping",
                Box::new(Pinger {
                    stack: IpStack::new(addr(1)),
                    target: addr(2),
                    size: 600,
                    replies: 0,
                }),
                &[addr(1)],
            );
            w
        };
        let mut fresh_a = build(31);
        let fresh_a_out = drive(&mut fresh_a);
        let mut fresh_b = build(32);
        let fresh_b_out = drive(&mut fresh_b);

        // One world, reset across both seeds, must match both fresh runs.
        let mut pooled = build(31);
        let pooled_a = drive(&mut pooled);
        assert_eq!(pooled_a, fresh_a_out);
        pooled.reset(32);
        let pooled_b = drive(&mut pooled);
        assert_eq!(pooled_b, fresh_b_out, "reset diverged from fresh build");
        pooled.reset(31);
        assert_eq!(drive(&mut pooled), fresh_a_out, "second reset diverged");
    }

    #[test]
    #[should_panic(expected = "already owned")]
    fn duplicate_address_panics() {
        let mut world = World::new(0);
        world.add_node("a", Box::new(Echo::new(addr(1))), &[addr(1)]);
        world.add_node("b", Box::new(Echo::new(addr(1))), &[addr(1)]);
    }

    #[test]
    fn downcast_accessors_work() {
        let mut world = World::new(0);
        let id = world.add_node("echo", Box::new(Echo::new(addr(1))), &[addr(1)]);
        assert_eq!(world.node::<Echo>(id).received.len(), 0);
        world.node_mut::<Echo>(id).timer_fired = 5;
        assert_eq!(world.node::<Echo>(id).timer_fired, 5);
        assert_eq!(world.label(id), "echo");
        assert_eq!(world.owner_of(addr(1)), Some(id));
    }
}
