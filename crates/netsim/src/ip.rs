//! IPv4 packet model: addressing, prefixes, and fragmentation.
//!
//! Packets are modelled structurally (no serialized IP header bytes) but with
//! all the fields the attacks in this workspace depend on: the 16-bit
//! identification field used to match fragments, the DF/MF flags, and the
//! 13-bit fragment offset in 8-byte units. Payload bytes *are* real bytes —
//! DNS, NTP and UDP run their genuine wire formats inside [`Ipv4Packet::payload`].
//!
//! # Examples
//!
//! ```
//! use netsim::ip::{Ipv4Packet, IpProto};
//! use bytes::Bytes;
//!
//! let pkt = Ipv4Packet::new(
//!     "10.0.0.1".parse()?, "10.0.0.2".parse()?,
//!     IpProto::Udp, Bytes::from(vec![0u8; 1000]),
//! );
//! let frags = pkt.fragment(576)?;
//! assert!(frags.len() > 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use bytes::Bytes;
use core::fmt;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::net::Ipv4Addr;

/// Length of the (unoptioned) IPv4 header in bytes.
pub const IPV4_HEADER_LEN: usize = 20;

/// The minimum MTU every IPv4 link must support (RFC 791).
pub const IPV4_MIN_MTU: u16 = 68;

/// A conventional Ethernet MTU.
pub const ETHERNET_MTU: u16 = 1500;

/// IP protocol numbers used by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IpProto {
    /// ICMP (protocol 1).
    Icmp,
    /// UDP (protocol 17).
    Udp,
    /// Any other protocol, carried verbatim.
    Other(u8),
}

impl IpProto {
    /// The protocol number as it appears in the IPv4 header.
    pub fn number(self) -> u8 {
        match self {
            IpProto::Icmp => 1,
            IpProto::Udp => 17,
            IpProto::Other(n) => n,
        }
    }
}

impl From<u8> for IpProto {
    fn from(n: u8) -> Self {
        match n {
            1 => IpProto::Icmp,
            17 => IpProto::Udp,
            other => IpProto::Other(other),
        }
    }
}

impl fmt::Display for IpProto {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpProto::Icmp => write!(f, "icmp"),
            IpProto::Udp => write!(f, "udp"),
            IpProto::Other(n) => write!(f, "proto{n}"),
        }
    }
}

/// An IPv4 packet (or fragment thereof).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv4Packet {
    /// Source address. Off-path attackers may set this arbitrarily
    /// (spoofing); the simulator routes only on `dst`.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Identification field; fragments of one datagram share this value.
    pub id: u16,
    /// Don't-Fragment flag. Routers drop oversized DF packets and return
    /// ICMP "fragmentation needed".
    pub dont_fragment: bool,
    /// More-Fragments flag; set on every fragment except the last.
    pub more_fragments: bool,
    /// Fragment offset in 8-byte units (13 bits on the wire).
    pub frag_offset_units: u16,
    /// Time-to-live.
    pub ttl: u8,
    /// Transport protocol of the payload.
    pub proto: IpProto,
    /// Transport payload bytes (for fragments: the fragment's slice).
    pub payload: Bytes,
}

/// Error returned by [`Ipv4Packet::fragment`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FragmentError {
    /// The MTU is below the 68-byte IPv4 minimum.
    MtuTooSmall {
        /// The offending MTU.
        mtu: u16,
    },
    /// The packet has DF set but exceeds the MTU.
    DontFragment {
        /// Total packet length that did not fit.
        len: usize,
        /// The path MTU it exceeded.
        mtu: u16,
    },
    /// The resulting offset would not fit in the 13-bit offset field.
    OffsetOverflow,
}

impl fmt::Display for FragmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FragmentError::MtuTooSmall { mtu } => {
                write!(f, "mtu {mtu} is below the IPv4 minimum of {IPV4_MIN_MTU}")
            }
            FragmentError::DontFragment { len, mtu } => {
                write!(f, "packet of {len} bytes has DF set but path mtu is {mtu}")
            }
            FragmentError::OffsetOverflow => write!(f, "fragment offset exceeds 13 bits"),
        }
    }
}

impl Error for FragmentError {}

impl Ipv4Packet {
    /// Creates an unfragmented packet with default TTL 64 and a fresh id of 0.
    ///
    /// Hosts normally allocate `id` via their IP stack; tests may set it
    /// directly.
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, proto: IpProto, payload: Bytes) -> Self {
        Ipv4Packet {
            src,
            dst,
            id: 0,
            dont_fragment: false,
            more_fragments: false,
            frag_offset_units: 0,
            ttl: 64,
            proto,
            payload,
        }
    }

    /// Total on-wire length (header + payload) in bytes.
    pub fn total_len(&self) -> usize {
        IPV4_HEADER_LEN + self.payload.len()
    }

    /// Byte offset of this fragment's payload within the original datagram.
    pub fn frag_offset_bytes(&self) -> usize {
        self.frag_offset_units as usize * 8
    }

    /// `true` if this packet is a fragment (not a whole datagram).
    pub fn is_fragment(&self) -> bool {
        self.more_fragments || self.frag_offset_units != 0
    }

    /// `true` for the first fragment of a fragmented datagram.
    pub fn is_first_fragment(&self) -> bool {
        self.more_fragments && self.frag_offset_units == 0
    }

    /// Splits the packet into fragments that each fit within `mtu`.
    ///
    /// A packet that already fits is returned unchanged as a single element.
    /// Every fragment except the last carries a payload length that is a
    /// multiple of 8, as required for offset encoding.
    ///
    /// # Errors
    ///
    /// * [`FragmentError::MtuTooSmall`] if `mtu < 68`.
    /// * [`FragmentError::DontFragment`] if the packet has DF set and does
    ///   not fit — the caller (a router) should emit ICMP "frag needed".
    /// * [`FragmentError::OffsetOverflow`] for absurdly large payloads.
    pub fn fragment(&self, mtu: u16) -> Result<Vec<Ipv4Packet>, FragmentError> {
        if mtu < IPV4_MIN_MTU {
            return Err(FragmentError::MtuTooSmall { mtu });
        }
        if self.total_len() <= mtu as usize {
            return Ok(vec![self.clone()]);
        }
        if self.dont_fragment {
            return Err(FragmentError::DontFragment {
                len: self.total_len(),
                mtu,
            });
        }
        // Payload capacity per fragment, rounded down to a multiple of 8.
        let capacity = ((mtu as usize - IPV4_HEADER_LEN) / 8) * 8;
        let base_units = self.frag_offset_units as usize;
        let mut fragments = Vec::new();
        let mut cursor = 0usize;
        while cursor < self.payload.len() {
            let remaining = self.payload.len() - cursor;
            let take = remaining.min(capacity);
            let is_last_piece = cursor + take == self.payload.len();
            let offset_units = base_units + cursor / 8;
            if offset_units > 0x1fff {
                return Err(FragmentError::OffsetOverflow);
            }
            fragments.push(Ipv4Packet {
                src: self.src,
                dst: self.dst,
                id: self.id,
                dont_fragment: false,
                more_fragments: self.more_fragments || !is_last_piece,
                frag_offset_units: offset_units as u16,
                ttl: self.ttl,
                proto: self.proto,
                payload: self.payload.slice(cursor..cursor + take),
            });
            cursor += take;
        }
        Ok(fragments)
    }

    /// One-line human-readable summary, used by the trace facility.
    pub fn summary(&self) -> String {
        let frag = if self.is_fragment() {
            format!(
                " frag(off={},mf={})",
                self.frag_offset_bytes(),
                self.more_fragments as u8
            )
        } else {
            String::new()
        };
        format!(
            "{} {} -> {} id={} len={}{}",
            self.proto,
            self.src,
            self.dst,
            self.id,
            self.total_len(),
            frag
        )
    }
}

/// An IPv4 prefix, e.g. `203.0.113.0/24`, used for BGP-hijack routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ipv4Net {
    addr: Ipv4Addr,
    prefix_len: u8,
}

impl Ipv4Net {
    /// Creates a prefix, normalising host bits to zero.
    ///
    /// # Panics
    ///
    /// Panics if `prefix_len > 32`.
    pub fn new(addr: Ipv4Addr, prefix_len: u8) -> Self {
        assert!(prefix_len <= 32, "invalid prefix length {prefix_len}");
        let bits = u32::from(addr) & Self::mask(prefix_len);
        Ipv4Net {
            addr: Ipv4Addr::from(bits),
            prefix_len,
        }
    }

    /// A host route (`/32`) covering exactly one address.
    pub fn host(addr: Ipv4Addr) -> Self {
        Ipv4Net::new(addr, 32)
    }

    fn mask(prefix_len: u8) -> u32 {
        if prefix_len == 0 {
            0
        } else {
            u32::MAX << (32 - prefix_len)
        }
    }

    /// The network address.
    pub fn network(&self) -> Ipv4Addr {
        self.addr
    }

    /// The prefix length.
    pub fn prefix_len(&self) -> u8 {
        self.prefix_len
    }

    /// `true` if `addr` falls inside this prefix.
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        u32::from(addr) & Self::mask(self.prefix_len) == u32::from(self.addr)
    }
}

impl fmt::Display for Ipv4Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.prefix_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet(len: usize) -> Ipv4Packet {
        let payload: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        let mut p = Ipv4Packet::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            IpProto::Udp,
            Bytes::from(payload),
        );
        p.id = 0x1234;
        p
    }

    #[test]
    fn small_packet_is_not_fragmented() {
        let p = packet(100);
        let frags = p.fragment(1500).unwrap();
        assert_eq!(frags.len(), 1);
        assert_eq!(frags[0], p);
        assert!(!frags[0].is_fragment());
    }

    #[test]
    fn fragments_cover_payload_exactly() {
        let p = packet(1465);
        let frags = p.fragment(548).unwrap();
        assert!(frags.len() >= 3);
        let mut reassembled = vec![0u8; 1465];
        let mut covered = 0;
        for f in &frags {
            let off = f.frag_offset_bytes();
            reassembled[off..off + f.payload.len()].copy_from_slice(&f.payload);
            covered += f.payload.len();
            assert!(f.total_len() <= 548, "fragment exceeds mtu");
            assert_eq!(f.id, p.id);
        }
        assert_eq!(covered, 1465);
        assert_eq!(&reassembled[..], &p.payload[..]);
    }

    #[test]
    fn all_but_last_fragment_are_multiple_of_eight() {
        let p = packet(2000);
        let frags = p.fragment(576).unwrap();
        for f in &frags[..frags.len() - 1] {
            assert_eq!(f.payload.len() % 8, 0);
            assert!(f.more_fragments);
        }
        assert!(!frags.last().unwrap().more_fragments);
    }

    #[test]
    fn minimum_mtu_fragmentation() {
        let p = packet(500);
        let frags = p.fragment(IPV4_MIN_MTU).unwrap();
        // 68 - 20 = 48 bytes of payload per fragment.
        assert_eq!(frags[0].payload.len(), 48);
        assert_eq!(frags.len(), 500usize.div_ceil(48));
    }

    #[test]
    fn mtu_below_minimum_is_rejected() {
        let p = packet(500);
        assert_eq!(p.fragment(67), Err(FragmentError::MtuTooSmall { mtu: 67 }));
    }

    #[test]
    fn df_packet_does_not_fragment() {
        let mut p = packet(1000);
        p.dont_fragment = true;
        match p.fragment(576) {
            Err(FragmentError::DontFragment { len, mtu }) => {
                assert_eq!(len, 1020);
                assert_eq!(mtu, 576);
            }
            other => panic!("expected DontFragment, got {other:?}"),
        }
    }

    #[test]
    fn df_packet_that_fits_passes_through() {
        let mut p = packet(100);
        p.dont_fragment = true;
        assert_eq!(p.fragment(576).unwrap().len(), 1);
    }

    #[test]
    fn refragmenting_a_fragment_preserves_absolute_offsets() {
        let p = packet(1400);
        let frags = p.fragment(1004).unwrap(); // 984-byte chunks
        let tail = &frags[1]; // 416 payload bytes at offset 984
        let refrags = tail.fragment(228).unwrap(); // 208-byte chunks
        assert_eq!(refrags[0].frag_offset_bytes(), tail.frag_offset_bytes());
        assert!(refrags[0].more_fragments);
        let last = refrags.last().unwrap();
        assert_eq!(
            last.frag_offset_bytes() + last.payload.len(),
            p.payload.len()
        );
        assert!(!last.more_fragments);
    }

    #[test]
    fn first_fragment_detection() {
        let p = packet(1000);
        let frags = p.fragment(576).unwrap();
        assert!(frags[0].is_first_fragment());
        assert!(!frags[1].is_first_fragment());
        assert!(frags[1].is_fragment());
    }

    #[test]
    fn prefix_contains() {
        let net = Ipv4Net::new(Ipv4Addr::new(203, 0, 113, 77), 24);
        assert_eq!(net.network(), Ipv4Addr::new(203, 0, 113, 0));
        assert!(net.contains(Ipv4Addr::new(203, 0, 113, 1)));
        assert!(net.contains(Ipv4Addr::new(203, 0, 113, 255)));
        assert!(!net.contains(Ipv4Addr::new(203, 0, 114, 1)));
        assert_eq!(net.to_string(), "203.0.113.0/24");
    }

    #[test]
    fn host_route_contains_only_itself() {
        let a = Ipv4Addr::new(192, 0, 2, 7);
        let net = Ipv4Net::host(a);
        assert!(net.contains(a));
        assert!(!net.contains(Ipv4Addr::new(192, 0, 2, 8)));
    }

    #[test]
    fn zero_length_prefix_contains_everything() {
        let net = Ipv4Net::new(Ipv4Addr::new(1, 2, 3, 4), 0);
        assert!(net.contains(Ipv4Addr::new(255, 255, 255, 255)));
        assert!(net.contains(Ipv4Addr::new(0, 0, 0, 0)));
    }

    #[test]
    fn proto_round_trip() {
        for n in [1u8, 17, 6, 200] {
            assert_eq!(IpProto::from(n).number(), n);
        }
    }
}
