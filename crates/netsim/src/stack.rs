//! A reusable host IP/UDP stack.
//!
//! Protocol nodes (DNS servers, resolvers, NTP clients, attackers) embed an
//! [`IpStack`] to get, on the receive side: reassembly (with a configurable
//! overlap policy), fragment filtering, UDP checksum validation and ICMP
//! demultiplexing; and on the send side: IP-ID allocation (with configurable
//! predictability — the knob the defragmentation attack turns), path-MTU
//! bookkeeping and sender-side fragmentation.

use crate::frag::{OverlapPolicy, ReassemblyCache, ReassemblyOutcome, ReassemblyStats};
use crate::icmp::{IcmpMessage, QuotedPacket};
use crate::ip::{IpProto, Ipv4Packet, ETHERNET_MTU};
use crate::node::Context;
use crate::udp::UdpDatagram;
use bytes::Bytes;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// How a host allocates the IPv4 identification field.
///
/// Predictable allocation is the enabler for off-path fragment injection:
/// the attacker must guess the `id` the server will use for the victim's
/// datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IpIdPolicy {
    /// One global counter (classic BSD/Windows behaviour): trivially
    /// predictable by probing the server.
    GlobalSequential,
    /// A counter per destination (old Linux): predictable for an attacker
    /// who can also receive packets from the server, with some slack.
    PerDestSequential,
    /// Uniformly random ids: prediction succeeds with probability 2^-16
    /// per guess.
    Random,
}

/// What fragments a host (or its middleboxes) lets through.
///
/// Calibrates the resolver population study (paper §II): 90 % of resolvers
/// accept some fragments, 64 % even 68-byte-MTU fragments, 10 % none.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FragFilter {
    /// All fragments are accepted.
    AcceptAll,
    /// First fragments with payload shorter than this many bytes are
    /// dropped (tiny-fragment filtering); others pass.
    MinFirstFragment(usize),
    /// All fragments are dropped — only whole datagrams get through.
    RejectFragments,
}

/// Events an [`IpStack`] surfaces to the owning node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StackEvent {
    /// A UDP datagram addressed to one of this host's addresses.
    Udp {
        /// Packet source address.
        src: Ipv4Addr,
        /// The local address the datagram arrived on.
        dst: Ipv4Addr,
        /// The parsed datagram.
        datagram: UdpDatagram,
    },
    /// An ICMP message (already checksum-validated).
    Icmp {
        /// Packet source address.
        src: Ipv4Addr,
        /// The parsed message.
        message: IcmpMessage,
    },
}

/// Configuration for an [`IpStack`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StackConfig {
    /// IP-ID allocation policy.
    pub ip_id_policy: IpIdPolicy,
    /// Reassembly overlap policy.
    pub overlap_policy: OverlapPolicy,
    /// Fragment filtering applied before reassembly.
    pub frag_filter: FragFilter,
    /// Whether received UDP checksums are validated.
    pub validate_udp_checksum: bool,
    /// Whether ICMP "fragmentation needed" updates the PMTU cache.
    /// Stacks that validate the quoted packet against open sockets would
    /// resist blind PMTU poisoning; most historically did not.
    pub accept_pmtu_updates: bool,
    /// Lowest PMTU the host will accept from ICMP (RFC 1191 suggests
    /// clamping; 68 is the protocol minimum).
    pub min_accepted_pmtu: u16,
    /// Default TTL for sent packets.
    pub default_ttl: u8,
}

impl Default for StackConfig {
    fn default() -> Self {
        StackConfig {
            ip_id_policy: IpIdPolicy::GlobalSequential,
            overlap_policy: OverlapPolicy::First,
            frag_filter: FragFilter::AcceptAll,
            validate_udp_checksum: true,
            accept_pmtu_updates: true,
            min_accepted_pmtu: crate::ip::IPV4_MIN_MTU,
            default_ttl: 64,
        }
    }
}

/// A host's IP/UDP stack: embed one per protocol node.
#[derive(Debug)]
pub struct IpStack {
    addrs: Vec<Ipv4Addr>,
    config: StackConfig,
    reassembly: ReassemblyCache,
    global_id: u16,
    per_dest_id: HashMap<Ipv4Addr, u16>,
    pmtu: HashMap<Ipv4Addr, u16>,
    default_mtu: u16,
    dropped_fragments: u64,
    dropped_checksum: u64,
}

impl IpStack {
    /// Creates a stack owning a single address with default configuration.
    pub fn new(addr: Ipv4Addr) -> Self {
        IpStack::with_config(vec![addr], StackConfig::default())
    }

    /// Creates a stack owning `addrs` (a node may host many addresses, e.g.
    /// a malicious NTP farm) with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `addrs` is empty.
    pub fn with_config(addrs: Vec<Ipv4Addr>, config: StackConfig) -> Self {
        assert!(!addrs.is_empty(), "a stack needs at least one address");
        IpStack {
            addrs,
            config,
            reassembly: ReassemblyCache::new(config.overlap_policy),
            global_id: 1,
            per_dest_id: HashMap::new(),
            pmtu: HashMap::new(),
            default_mtu: ETHERNET_MTU,
            dropped_fragments: 0,
            dropped_checksum: 0,
        }
    }

    /// The host's primary address.
    pub fn addr(&self) -> Ipv4Addr {
        self.addrs[0]
    }

    /// All addresses owned by the host.
    pub fn addrs(&self) -> &[Ipv4Addr] {
        &self.addrs
    }

    /// The stack's configuration.
    pub fn config(&self) -> &StackConfig {
        &self.config
    }

    /// Current PMTU estimate toward `dst`.
    pub fn pmtu(&self, dst: Ipv4Addr) -> u16 {
        self.pmtu.get(&dst).copied().unwrap_or(self.default_mtu)
    }

    /// Overrides the default MTU assumed for unprobed destinations.
    pub fn set_default_mtu(&mut self, mtu: u16) {
        self.default_mtu = mtu;
    }

    /// Reassembly statistics (completed datagrams, overlap drops, ...).
    pub fn reassembly_stats(&self) -> ReassemblyStats {
        self.reassembly.stats()
    }

    /// Fragments dropped by the [`FragFilter`].
    pub fn dropped_fragments(&self) -> u64 {
        self.dropped_fragments
    }

    /// Datagrams dropped for bad UDP checksums.
    pub fn dropped_checksum(&self) -> u64 {
        self.dropped_checksum
    }

    /// Restores the stack to its freshly-constructed state: empties the
    /// reassembly cache, forgets learned PMTUs, rewinds IP-ID counters and
    /// zeroes drop counters. Configuration (addresses, policies, default
    /// MTU) is retained, so a reset stack behaves byte-identically to a new
    /// one under the same packet sequence.
    pub fn reset(&mut self) {
        self.reassembly.reset();
        self.global_id = 1;
        self.per_dest_id.clear();
        self.pmtu.clear();
        self.dropped_fragments = 0;
        self.dropped_checksum = 0;
    }

    /// Predicts the next IP id that would be allocated toward `dst`
    /// without consuming it (used by attacker models with server access).
    pub fn peek_next_id(&self, dst: Ipv4Addr) -> u16 {
        match self.config.ip_id_policy {
            IpIdPolicy::GlobalSequential => self.global_id,
            IpIdPolicy::PerDestSequential => self.per_dest_id.get(&dst).copied().unwrap_or(1),
            IpIdPolicy::Random => 0,
        }
    }

    fn next_id(&mut self, ctx: &mut Context<'_>, dst: Ipv4Addr) -> u16 {
        match self.config.ip_id_policy {
            IpIdPolicy::GlobalSequential => {
                let id = self.global_id;
                self.global_id = self.global_id.wrapping_add(1);
                id
            }
            IpIdPolicy::PerDestSequential => {
                let counter = self.per_dest_id.entry(dst).or_insert(1);
                let id = *counter;
                *counter = counter.wrapping_add(1);
                id
            }
            IpIdPolicy::Random => ctx.rng().gen(),
        }
    }

    /// Sends a UDP datagram from `src` (must be an owned address) to
    /// `dst:dst_port`, fragmenting according to the current PMTU estimate.
    ///
    /// # Panics
    ///
    /// Panics if `src` is not one of the stack's addresses.
    pub fn send_udp(
        &mut self,
        ctx: &mut Context<'_>,
        src: Ipv4Addr,
        src_port: u16,
        dst: Ipv4Addr,
        dst_port: u16,
        payload: Bytes,
    ) {
        assert!(
            self.addrs.contains(&src),
            "source address {src} is not owned by this stack"
        );
        let dgram = UdpDatagram::new(src_port, dst_port, payload);
        let wire = dgram.encode(src, dst);
        let mut pkt = Ipv4Packet::new(src, dst, IpProto::Udp, wire);
        pkt.id = self.next_id(ctx, dst);
        pkt.ttl = self.config.default_ttl;
        let mtu = self.pmtu(dst);
        match pkt.fragment(mtu) {
            Ok(frags) => {
                for f in frags {
                    ctx.send(f);
                }
            }
            Err(_) => {
                // PMTU below minimum or overflow: drop (counted as filtered).
                self.dropped_fragments += 1;
            }
        }
    }

    /// Sends a UDP datagram with an arbitrary (possibly spoofed) source
    /// address. Off-path attacker nodes use this; honest nodes should call
    /// [`IpStack::send_udp`], which enforces address ownership.
    ///
    /// The IP id is allocated from this stack's policy unless `id` is given.
    #[allow(clippy::too_many_arguments)] // mirrors the UDP 5-tuple plus attack knobs
    pub fn send_udp_spoofed(
        &mut self,
        ctx: &mut Context<'_>,
        spoofed_src: Ipv4Addr,
        src_port: u16,
        dst: Ipv4Addr,
        dst_port: u16,
        payload: Bytes,
        id: Option<u16>,
    ) {
        let dgram = UdpDatagram::new(src_port, dst_port, payload);
        let wire = dgram.encode(spoofed_src, dst);
        let mut pkt = Ipv4Packet::new(spoofed_src, dst, IpProto::Udp, wire);
        pkt.id = id.unwrap_or_else(|| self.global_id.wrapping_add(0x8000));
        pkt.ttl = self.config.default_ttl;
        match pkt.fragment(self.pmtu(dst)) {
            Ok(frags) => {
                for f in frags {
                    ctx.send(f);
                }
            }
            Err(_) => self.dropped_fragments += 1,
        }
    }

    /// Sends an ICMP message from `src` to `dst`.
    pub fn send_icmp(
        &mut self,
        ctx: &mut Context<'_>,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        message: IcmpMessage,
    ) {
        let mut pkt = message.into_packet(src, dst);
        pkt.id = self.next_id(ctx, dst);
        pkt.ttl = self.config.default_ttl;
        ctx.send(pkt);
    }

    /// Feeds a received packet through filtering, reassembly, checksum
    /// validation and ICMP handling.
    ///
    /// Returns `None` for packets consumed by the stack (pending fragments,
    /// filtered fragments, checksum failures, PMTU updates).
    pub fn handle(&mut self, ctx: &mut Context<'_>, pkt: Ipv4Packet) -> Option<StackEvent> {
        if pkt.is_fragment() && !self.fragment_passes_filter(&pkt) {
            self.dropped_fragments += 1;
            return None;
        }
        self.reassembly.expire(ctx.now());
        let whole = match self.reassembly.insert(ctx.now(), pkt) {
            ReassemblyOutcome::NotFragmented(p) | ReassemblyOutcome::Complete(p) => p,
            ReassemblyOutcome::Pending | ReassemblyOutcome::Dropped(_) => return None,
        };
        match whole.proto {
            IpProto::Udp => {
                match UdpDatagram::decode(
                    whole.src,
                    whole.dst,
                    &whole.payload,
                    self.config.validate_udp_checksum,
                ) {
                    Ok(datagram) => Some(StackEvent::Udp {
                        src: whole.src,
                        dst: whole.dst,
                        datagram,
                    }),
                    Err(_) => {
                        self.dropped_checksum += 1;
                        None
                    }
                }
            }
            IpProto::Icmp => match IcmpMessage::decode(&whole.payload) {
                Ok(message) => {
                    if let IcmpMessage::FragmentationNeeded { mtu, ref original } = message {
                        self.apply_pmtu_update(mtu, original);
                    }
                    Some(StackEvent::Icmp {
                        src: whole.src,
                        message,
                    })
                }
                Err(_) => None,
            },
            IpProto::Other(_) => None,
        }
    }

    fn fragment_passes_filter(&self, pkt: &Ipv4Packet) -> bool {
        match self.config.frag_filter {
            FragFilter::AcceptAll => true,
            FragFilter::RejectFragments => false,
            FragFilter::MinFirstFragment(min) => {
                if pkt.is_first_fragment() {
                    pkt.payload.len() >= min
                } else {
                    true
                }
            }
        }
    }

    fn apply_pmtu_update(&mut self, mtu: u16, original: &QuotedPacket) {
        if !self.config.accept_pmtu_updates {
            return;
        }
        if mtu < self.config.min_accepted_pmtu {
            return;
        }
        // The quoted packet's source must be one of ours for the error to
        // concern us; the PMTU entry is keyed by its destination.
        if self.addrs.contains(&original.src) {
            let entry = self.pmtu.entry(original.dst).or_insert(self.default_mtu);
            if mtu < *entry {
                *entry = mtu;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::field_reassign_with_default)]

    use super::*;
    use crate::node::{Context, NodeId};
    use crate::rng::SimRng;
    use crate::time::SimTime;

    fn with_ctx<R>(f: impl FnOnce(&mut Context<'_>) -> R) -> (R, Vec<Ipv4Packet>) {
        let mut rng = SimRng::seed_from(1);
        let mut actions = Vec::new();
        let mut ctx = Context::new(SimTime::ZERO, NodeId::new(0), &mut rng, &mut actions);
        let r = f(&mut ctx);
        let sent = actions
            .into_iter()
            .filter_map(|a| match a {
                crate::node::Action::Send(p) => Some(p),
                _ => None,
            })
            .collect();
        (r, sent)
    }

    fn a(o: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, o)
    }

    #[test]
    fn send_small_udp_is_single_packet() {
        let mut stack = IpStack::new(a(1));
        let (_, sent) = with_ctx(|ctx| {
            stack.send_udp(ctx, a(1), 5300, a(2), 53, Bytes::from(vec![0u8; 100]));
        });
        assert_eq!(sent.len(), 1);
        assert_eq!(sent[0].proto, IpProto::Udp);
        assert!(!sent[0].is_fragment());
    }

    #[test]
    fn pmtu_update_causes_fragmentation() {
        let mut server = IpStack::new(a(1));
        let resolver_addr = a(2);
        // Craft the ICMP error an attacker would spoof: quotes a packet from
        // the server to the resolver.
        let quoted = QuotedPacket {
            src: a(1),
            dst: resolver_addr,
            proto: IpProto::Udp,
            head: [0; 8],
        };
        let icmp = IcmpMessage::FragmentationNeeded {
            mtu: 548,
            original: quoted,
        }
        .into_packet(a(99), a(1));
        let (_, _) = with_ctx(|ctx| server.handle(ctx, icmp));
        assert_eq!(server.pmtu(resolver_addr), 548);
        assert_eq!(server.pmtu(a(3)), ETHERNET_MTU, "other peers unaffected");

        let (_, sent) = with_ctx(|ctx| {
            server.send_udp(
                ctx,
                a(1),
                53,
                resolver_addr,
                5300,
                Bytes::from(vec![0u8; 900]),
            );
        });
        assert!(sent.len() > 1, "response must now fragment");
        assert!(sent.iter().all(|p| p.total_len() <= 548));
    }

    #[test]
    fn pmtu_update_ignored_when_disabled() {
        let mut cfg = StackConfig::default();
        cfg.accept_pmtu_updates = false;
        let mut server = IpStack::with_config(vec![a(1)], cfg);
        let icmp = IcmpMessage::FragmentationNeeded {
            mtu: 548,
            original: QuotedPacket {
                src: a(1),
                dst: a(2),
                proto: IpProto::Udp,
                head: [0; 8],
            },
        }
        .into_packet(a(99), a(1));
        with_ctx(|ctx| server.handle(ctx, icmp));
        assert_eq!(server.pmtu(a(2)), ETHERNET_MTU);
    }

    #[test]
    fn pmtu_update_for_foreign_quote_is_ignored() {
        let mut server = IpStack::new(a(1));
        // Quote claims a packet from a *different* host: must not apply.
        let icmp = IcmpMessage::FragmentationNeeded {
            mtu: 548,
            original: QuotedPacket {
                src: a(7),
                dst: a(2),
                proto: IpProto::Udp,
                head: [0; 8],
            },
        }
        .into_packet(a(99), a(1));
        with_ctx(|ctx| server.handle(ctx, icmp));
        assert_eq!(server.pmtu(a(2)), ETHERNET_MTU);
    }

    #[test]
    fn pmtu_below_minimum_is_rejected() {
        let mut cfg = StackConfig::default();
        cfg.min_accepted_pmtu = 548;
        let mut server = IpStack::with_config(vec![a(1)], cfg);
        let icmp = IcmpMessage::FragmentationNeeded {
            mtu: 68,
            original: QuotedPacket {
                src: a(1),
                dst: a(2),
                proto: IpProto::Udp,
                head: [0; 8],
            },
        }
        .into_packet(a(99), a(1));
        with_ctx(|ctx| server.handle(ctx, icmp));
        assert_eq!(server.pmtu(a(2)), ETHERNET_MTU);
    }

    #[test]
    fn fragmented_udp_reassembles_end_to_end() {
        let mut sender = IpStack::new(a(1));
        let mut receiver = IpStack::new(a(2));
        sender.pmtu.insert(a(2), 576);
        let payload = Bytes::from((0..1200u32).map(|i| i as u8).collect::<Vec<_>>());
        let (_, sent) = with_ctx(|ctx| {
            sender.send_udp(ctx, a(1), 1000, a(2), 2000, payload.clone());
        });
        assert!(sent.len() > 1);
        let mut delivered = None;
        with_ctx(|ctx| {
            for f in sent {
                if let Some(ev) = receiver.handle(ctx, f) {
                    delivered = Some(ev);
                }
            }
        });
        match delivered {
            Some(StackEvent::Udp { src, dst, datagram }) => {
                assert_eq!(src, a(1));
                assert_eq!(dst, a(2));
                assert_eq!(datagram.src_port, 1000);
                assert_eq!(datagram.dst_port, 2000);
                assert_eq!(datagram.payload, payload);
            }
            other => panic!("expected datagram, got {other:?}"),
        }
    }

    #[test]
    fn reject_fragments_filter_blocks_reassembly() {
        let mut cfg = StackConfig::default();
        cfg.frag_filter = FragFilter::RejectFragments;
        let mut sender = IpStack::new(a(1));
        let mut receiver = IpStack::with_config(vec![a(2)], cfg);
        sender.pmtu.insert(a(2), 576);
        let (_, sent) = with_ctx(|ctx| {
            sender.send_udp(ctx, a(1), 1, a(2), 2, Bytes::from(vec![0u8; 1200]));
        });
        let mut got = false;
        with_ctx(|ctx| {
            for f in sent {
                got |= receiver.handle(ctx, f).is_some();
            }
        });
        assert!(!got);
        assert!(receiver.dropped_fragments() >= 2);
    }

    #[test]
    fn tiny_first_fragment_filter() {
        let mut cfg = StackConfig::default();
        cfg.frag_filter = FragFilter::MinFirstFragment(256);
        let mut receiver = IpStack::with_config(vec![a(2)], cfg);
        let pkt = Ipv4Packet::new(a(1), a(2), IpProto::Udp, Bytes::from(vec![0u8; 600]));
        // 68-byte MTU → 48-byte first fragment: filtered.
        let tiny = pkt.fragment(68).unwrap();
        with_ctx(|ctx| {
            assert!(receiver.handle(ctx, tiny[0].clone()).is_none());
        });
        assert_eq!(receiver.dropped_fragments(), 1);
        // 576-byte MTU → 556-byte first fragment: accepted (pending).
        let ok = pkt.fragment(576).unwrap();
        with_ctx(|ctx| {
            assert!(receiver.handle(ctx, ok[0].clone()).is_none());
        });
        assert_eq!(receiver.dropped_fragments(), 1, "large first frag passes");
    }

    #[test]
    fn bad_checksum_is_counted_and_dropped() {
        let mut receiver = IpStack::new(a(2));
        let dgram = UdpDatagram::new(1, 2, Bytes::from(vec![0u8; 32]));
        let mut wire = dgram.encode(a(1), a(2)).to_vec();
        wire[10] ^= 0xff;
        let pkt = Ipv4Packet::new(a(1), a(2), IpProto::Udp, Bytes::from(wire));
        with_ctx(|ctx| {
            assert!(receiver.handle(ctx, pkt).is_none());
        });
        assert_eq!(receiver.dropped_checksum(), 1);
    }

    #[test]
    fn ip_id_policies_differ_in_predictability() {
        let mut g = IpStack::with_config(
            vec![a(1)],
            StackConfig {
                ip_id_policy: IpIdPolicy::GlobalSequential,
                ..StackConfig::default()
            },
        );
        with_ctx(|ctx| {
            let predicted = g.peek_next_id(a(2));
            g.send_udp(ctx, a(1), 1, a(2), 2, Bytes::new());
            assert_eq!(g.peek_next_id(a(3)), predicted.wrapping_add(1));
        });

        let mut p = IpStack::with_config(
            vec![a(1)],
            StackConfig {
                ip_id_policy: IpIdPolicy::PerDestSequential,
                ..StackConfig::default()
            },
        );
        with_ctx(|ctx| {
            p.send_udp(ctx, a(1), 1, a(2), 2, Bytes::new());
            p.send_udp(ctx, a(1), 1, a(2), 2, Bytes::new());
            assert_eq!(p.peek_next_id(a(2)), 3);
            assert_eq!(p.peek_next_id(a(3)), 1, "separate counter per dest");
        });
    }

    #[test]
    fn sequential_ids_appear_on_the_wire() {
        let mut stack = IpStack::new(a(1));
        let (_, sent) = with_ctx(|ctx| {
            for _ in 0..3 {
                stack.send_udp(ctx, a(1), 1, a(2), 2, Bytes::new());
            }
        });
        let ids: Vec<u16> = sent.iter().map(|p| p.id).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "not owned")]
    fn sending_from_foreign_address_panics() {
        let mut stack = IpStack::new(a(1));
        with_ctx(|ctx| {
            stack.send_udp(ctx, a(9), 1, a(2), 2, Bytes::new());
        });
    }
}
