//! UDP datagrams with genuine RFC 768 checksums.
//!
//! The checksum matters here: defragmentation poisoning must craft a spoofed
//! tail whose ones-complement sum matches the tail it displaces, otherwise
//! the reassembled datagram fails validation at the victim and the attack
//! fizzles. [`checksum_compensation`] computes exactly that fix-up.
//!
//! # Examples
//!
//! ```
//! use netsim::udp::UdpDatagram;
//! use bytes::Bytes;
//!
//! let src = "10.0.0.1".parse()?;
//! let dst = "10.0.0.2".parse()?;
//! let dgram = UdpDatagram::new(5300, 53, Bytes::from_static(b"hello"));
//! let wire = dgram.encode(src, dst);
//! let back = UdpDatagram::decode(src, dst, &wire, true)?;
//! assert_eq!(back.payload, dgram.payload);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use bytes::Bytes;
use core::fmt;
use std::error::Error;
use std::net::Ipv4Addr;

/// Length of the UDP header in bytes.
pub const UDP_HEADER_LEN: usize = 8;

/// A UDP datagram (header fields plus payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpDatagram {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Application payload.
    pub payload: Bytes,
}

/// Errors from [`UdpDatagram::decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UdpError {
    /// Fewer than 8 bytes of input.
    Truncated,
    /// The length field disagrees with the actual byte count.
    LengthMismatch,
    /// Checksum validation failed.
    BadChecksum,
}

impl fmt::Display for UdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UdpError::Truncated => write!(f, "datagram shorter than the UDP header"),
            UdpError::LengthMismatch => write!(f, "UDP length field disagrees with data"),
            UdpError::BadChecksum => write!(f, "UDP checksum validation failed"),
        }
    }
}

impl Error for UdpError {}

impl UdpDatagram {
    /// Creates a datagram.
    pub fn new(src_port: u16, dst_port: u16, payload: Bytes) -> Self {
        UdpDatagram {
            src_port,
            dst_port,
            payload,
        }
    }

    /// Total encoded length (header + payload).
    pub fn len(&self) -> usize {
        UDP_HEADER_LEN + self.payload.len()
    }

    /// `true` when the payload is empty (the header is still 8 bytes).
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }

    /// Serialises header + payload, computing the checksum over the IPv4
    /// pseudo-header as RFC 768 requires.
    pub fn encode(&self, src: Ipv4Addr, dst: Ipv4Addr) -> Bytes {
        let mut out = Vec::with_capacity(self.len());
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&(self.len() as u16).to_be_bytes());
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&self.payload);
        let sum = udp_checksum(src, dst, &out);
        out[6..8].copy_from_slice(&sum.to_be_bytes());
        Bytes::from(out)
    }

    /// Parses a datagram from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`UdpError`] on truncation, a bad length field, or (when
    /// `verify_checksum` is set and the checksum field is non-zero) a
    /// checksum mismatch.
    pub fn decode(
        src: Ipv4Addr,
        dst: Ipv4Addr,
        bytes: &[u8],
        verify_checksum: bool,
    ) -> Result<UdpDatagram, UdpError> {
        if bytes.len() < UDP_HEADER_LEN {
            return Err(UdpError::Truncated);
        }
        let len = u16::from_be_bytes([bytes[4], bytes[5]]) as usize;
        if len != bytes.len() || len < UDP_HEADER_LEN {
            return Err(UdpError::LengthMismatch);
        }
        let wire_sum = u16::from_be_bytes([bytes[6], bytes[7]]);
        if verify_checksum && wire_sum != 0 {
            let mut copy = bytes.to_vec();
            copy[6] = 0;
            copy[7] = 0;
            if udp_checksum(src, dst, &copy) != wire_sum {
                return Err(UdpError::BadChecksum);
            }
        }
        Ok(UdpDatagram {
            src_port: u16::from_be_bytes([bytes[0], bytes[1]]),
            dst_port: u16::from_be_bytes([bytes[2], bytes[3]]),
            payload: Bytes::from(bytes[UDP_HEADER_LEN..].to_vec()),
        })
    }
}

/// Ones-complement sum of 16-bit words (the "Internet checksum" kernel).
///
/// Odd-length data is padded with a trailing zero byte, per RFC 1071.
pub fn ones_complement_sum(data: &[u8]) -> u32 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    sum
}

/// Folds carries into 16 bits.
pub fn fold_checksum(mut sum: u32) -> u16 {
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    sum as u16
}

/// UDP checksum over the IPv4 pseudo-header + UDP header + payload.
///
/// The checksum field inside `segment` must be zeroed. Per RFC 768 a
/// computed value of zero is transmitted as `0xffff`.
pub fn udp_checksum(src: Ipv4Addr, dst: Ipv4Addr, segment: &[u8]) -> u16 {
    let mut sum = ones_complement_sum(&src.octets());
    sum += ones_complement_sum(&dst.octets());
    sum += 17; // protocol
    sum += segment.len() as u32;
    sum += ones_complement_sum(segment);
    let folded = !fold_checksum(sum);
    if folded == 0 {
        0xffff
    } else {
        folded
    }
}

/// Computes a 16-bit compensation word so that replacing `original_tail`
/// with `forged_tail ++ compensation` preserves the datagram's checksum.
///
/// Both tails must start at the same (even) byte offset within the datagram.
/// The returned word should be placed at an even offset inside bytes the
/// attacker controls (e.g. the TTL field of a trailing forged record).
///
/// # Panics
///
/// Panics if `forged_tail` is not exactly 2 bytes shorter than the slot it
/// must fill, i.e. `forged_tail.len() + 2 != original_tail.len()`.
pub fn checksum_compensation(original_tail: &[u8], forged_tail: &[u8]) -> [u8; 2] {
    assert_eq!(
        forged_tail.len() + 2,
        original_tail.len(),
        "forged tail must leave exactly two bytes for compensation"
    );
    let want = fold_checksum(ones_complement_sum(original_tail));
    let have = fold_checksum(ones_complement_sum(forged_tail));
    // compensation = want - have  (ones-complement arithmetic)
    let comp = fold_checksum(u32::from(want) + u32::from(!have));
    comp.to_be_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs() -> (Ipv4Addr, Ipv4Addr) {
        (
            Ipv4Addr::new(198, 51, 100, 7),
            Ipv4Addr::new(203, 0, 113, 9),
        )
    }

    #[test]
    fn encode_decode_round_trip() {
        let (s, d) = addrs();
        let dgram = UdpDatagram::new(12345, 53, Bytes::from(vec![1, 2, 3, 4, 5]));
        let wire = dgram.encode(s, d);
        assert_eq!(wire.len(), 13);
        let back = UdpDatagram::decode(s, d, &wire, true).unwrap();
        assert_eq!(back, dgram);
    }

    #[test]
    fn empty_payload_round_trip() {
        let (s, d) = addrs();
        let dgram = UdpDatagram::new(1, 2, Bytes::new());
        let wire = dgram.encode(s, d);
        assert_eq!(wire.len(), UDP_HEADER_LEN);
        assert!(UdpDatagram::decode(s, d, &wire, true).unwrap().is_empty());
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let (s, d) = addrs();
        let dgram = UdpDatagram::new(12345, 53, Bytes::from(vec![0u8; 64]));
        let mut wire = dgram.encode(s, d).to_vec();
        wire[20] ^= 0x40;
        assert_eq!(
            UdpDatagram::decode(s, d, &wire, true),
            Err(UdpError::BadChecksum)
        );
        // With verification disabled the corruption passes through.
        assert!(UdpDatagram::decode(s, d, &wire, false).is_ok());
    }

    #[test]
    fn wrong_pseudo_header_fails_checksum() {
        let (s, d) = addrs();
        let dgram = UdpDatagram::new(12345, 53, Bytes::from(vec![9u8; 32]));
        let wire = dgram.encode(s, d);
        // Same bytes validated against a different source address: the
        // pseudo-header protects against cross-address splicing.
        let other = Ipv4Addr::new(198, 51, 100, 8);
        assert_eq!(
            UdpDatagram::decode(other, d, &wire, true),
            Err(UdpError::BadChecksum)
        );
    }

    #[test]
    fn truncated_and_bad_length_rejected() {
        let (s, d) = addrs();
        assert_eq!(
            UdpDatagram::decode(s, d, &[0u8; 4], true),
            Err(UdpError::Truncated)
        );
        let dgram = UdpDatagram::new(1, 2, Bytes::from(vec![0u8; 8]));
        let mut wire = dgram.encode(s, d).to_vec();
        wire[5] = wire[5].wrapping_add(1);
        assert_eq!(
            UdpDatagram::decode(s, d, &wire, false),
            Err(UdpError::LengthMismatch)
        );
    }

    #[test]
    fn odd_length_payload_checksums() {
        let (s, d) = addrs();
        let dgram = UdpDatagram::new(7, 9, Bytes::from(vec![0xAB; 7]));
        let wire = dgram.encode(s, d);
        assert!(UdpDatagram::decode(s, d, &wire, true).is_ok());
    }

    #[test]
    fn checksum_never_transmitted_as_zero() {
        let (s, d) = addrs();
        // Probe many payloads; encoded checksum field must never be 0x0000.
        for i in 0..2000u32 {
            let dgram = UdpDatagram::new(
                (i % 65535) as u16,
                53,
                Bytes::from(i.to_be_bytes().to_vec()),
            );
            let wire = dgram.encode(s, d);
            let field = u16::from_be_bytes([wire[6], wire[7]]);
            assert_ne!(field, 0);
        }
    }

    /// The attack fix-up: splicing a forged tail plus its compensation word
    /// into a datagram keeps the checksum valid.
    #[test]
    fn compensated_forged_tail_passes_validation() {
        let (s, d) = addrs();
        let payload: Vec<u8> = (0..600).map(|i| (i % 256) as u8).collect();
        let dgram = UdpDatagram::new(5353, 53, Bytes::from(payload));
        let wire = dgram.encode(s, d).to_vec();

        // Forge everything from (even) offset 100, leaving 2 bytes for the
        // compensation word at the very end.
        let split = 100;
        let original_tail = &wire[split..];
        let forged: Vec<u8> = (0..original_tail.len() - 2)
            .map(|i| (i * 7) as u8)
            .collect();
        let comp = checksum_compensation(original_tail, &forged);

        let mut spliced = wire[..split].to_vec();
        spliced.extend_from_slice(&forged);
        spliced.extend_from_slice(&comp);
        assert_eq!(spliced.len(), wire.len());
        let back = UdpDatagram::decode(s, d, &spliced, true).expect("checksum must hold");
        assert_eq!(
            &back.payload[split - UDP_HEADER_LEN..][..forged.len()],
            &forged[..]
        );
    }

    #[test]
    fn compensation_is_identity_for_unchanged_tail() {
        let original = [1u8, 2, 3, 4, 5, 6, 7, 8];
        let forged = [1u8, 2, 3, 4, 5, 6];
        let comp = checksum_compensation(&original, &forged);
        assert_eq!(comp, [7, 8]);
    }

    #[test]
    #[should_panic(expected = "exactly two bytes")]
    fn compensation_rejects_misaligned_lengths() {
        checksum_compensation(&[0u8; 10], &[0u8; 10]);
    }

    #[test]
    fn fold_handles_multiple_carries() {
        assert_eq!(fold_checksum(0x0001_fffe), 0xffff);
        assert_eq!(fold_checksum(0x0003_0000), 0x0003);
        assert_eq!(fold_checksum(0xffff_ffff), 0xffff);
    }
}
