//! World pooling for Monte-Carlo sweeps.
//!
//! Building a [`World`] — zones, nodes, address maps, topology — dominates
//! the cost of cheap packet-level trials. A [`WorldPool`] lets sweep engines
//! keep one constructed world per *configuration key* and hand it from
//! worker to worker: a worker checks a world out, [`World::reset`]s it for
//! its trial seed, runs the trial, and checks it back in. Construction then
//! happens O(keys + threads) times instead of O(keys × trials).
//!
//! The pool is deliberately dumb about what a "configuration" is: keys are
//! plain indices assigned by the caller (e.g. positions in a slice of
//! scenario configs). Worlds checked in under key `k` must all have been
//! built from the same configuration — the pool never validates this.
//!
//! Locking: one mutex per key shelf, taken once per *batch* of trials (the
//! sweep engines claim batches, not single trials), so contention is
//! amortized to noise and the per-trial hot path stays lock-free.

use crate::world::World;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Counters describing pool effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorldPoolStats {
    /// Checkouts that found a reusable world.
    pub reused: u64,
    /// Checkouts that came back empty (the caller had to build).
    pub misses: u64,
}

/// A keyed stash of reusable [`World`]s shared between worker threads.
#[derive(Debug)]
pub struct WorldPool {
    shelves: Vec<Mutex<Vec<World>>>,
    reused: AtomicU64,
    misses: AtomicU64,
}

impl WorldPool {
    /// Creates a pool with `keys` empty shelves (one per configuration).
    pub fn new(keys: usize) -> Self {
        WorldPool {
            shelves: (0..keys).map(|_| Mutex::new(Vec::new())).collect(),
            reused: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Number of configuration shelves.
    pub fn keys(&self) -> usize {
        self.shelves.len()
    }

    /// Takes a world previously checked in under `key`, if any. The caller
    /// is expected to [`World::reset`] it before use and to build a fresh
    /// world on `None`.
    ///
    /// # Panics
    ///
    /// Panics if `key` is out of range.
    pub fn checkout(&self, key: usize) -> Option<World> {
        let world = self.shelves[key].lock().expect("pool not poisoned").pop();
        match world {
            Some(w) => {
                self.reused.fetch_add(1, Ordering::Relaxed);
                Some(w)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Returns a world to the shelf for `key` for another worker to reuse.
    ///
    /// # Panics
    ///
    /// Panics if `key` is out of range.
    pub fn checkin(&self, key: usize, world: World) {
        self.shelves[key]
            .lock()
            .expect("pool not poisoned")
            .push(world);
    }

    /// Reuse counters accumulated so far.
    pub fn stats(&self) -> WorldPoolStats {
        WorldPoolStats {
            reused: self.reused.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_of_empty_shelf_is_a_miss() {
        let pool = WorldPool::new(2);
        assert!(pool.checkout(0).is_none());
        assert_eq!(
            pool.stats(),
            WorldPoolStats {
                reused: 0,
                misses: 1
            }
        );
    }

    #[test]
    fn checkin_then_checkout_reuses() {
        let pool = WorldPool::new(1);
        pool.checkin(0, World::new(7));
        let w = pool.checkout(0).expect("shelved world comes back");
        assert_eq!(w.node_count(), 0);
        assert_eq!(
            pool.stats(),
            WorldPoolStats {
                reused: 1,
                misses: 0
            }
        );
        assert!(pool.checkout(0).is_none(), "shelf is empty again");
    }

    #[test]
    fn shelves_are_independent() {
        let pool = WorldPool::new(3);
        pool.checkin(2, World::new(1));
        assert!(pool.checkout(0).is_none());
        assert!(pool.checkout(2).is_some());
    }

    #[test]
    fn pool_is_shareable_across_threads() {
        let pool = WorldPool::new(4);
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let pool = &pool;
                scope.spawn(move || {
                    for _ in 0..8 {
                        let w = pool.checkout(t).unwrap_or_else(|| World::new(t as u64));
                        pool.checkin(t, w);
                    }
                });
            }
        });
        let stats = pool.stats();
        assert_eq!(stats.reused + stats.misses, 32);
        assert!(stats.misses >= 4, "each shelf missed at least once");
    }
}
