//! Object pooling for Monte-Carlo sweeps.
//!
//! Building a [`World`] — zones, nodes, address maps, topology — dominates
//! the cost of cheap packet-level trials, and a fleet's state columns are
//! similarly worth reusing across trials. An [`ObjectPool`] lets sweep
//! engines keep one constructed object per *configuration key* and hand it
//! from worker to worker: a worker checks an object out, resets it for its
//! trial seed, runs the trial, and checks it back in. Construction then
//! happens O(keys + threads) times instead of O(keys × trials).
//!
//! The pool is deliberately dumb about what a "configuration" is: keys are
//! plain indices assigned by the caller. Since PR 3 the scenario sweep
//! engine assigns keys by *structural fingerprint* (seed-independent config
//! shape) rather than config position, so same-shape grid points share
//! shelves. Objects checked in under key `k` must all be interchangeable
//! under that key — the pool never validates this.
//!
//! Locking: one mutex per key shelf, taken once per *batch* of trials (the
//! sweep engines claim batches, not single trials), so contention is
//! amortized to noise and the per-trial hot path stays lock-free.

use crate::world::World;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Counters describing pool effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorldPoolStats {
    /// Checkouts that found a reusable object (hits).
    pub reused: u64,
    /// Checkouts that came back empty (the caller had to build).
    pub misses: u64,
}

impl WorldPoolStats {
    /// Hit rate over all checkouts (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.reused + self.misses;
        if total == 0 {
            0.0
        } else {
            self.reused as f64 / total as f64
        }
    }
}

/// FNV-1a over a string — stable within one build, which is all pool keys
/// need. The structural-fingerprint implementations that key
/// [`ObjectPool`] shelves (hash of a config's `Debug` rendering with the
/// seed zeroed) share this so they cannot drift apart.
pub fn fingerprint_str(s: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in s.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A keyed stash of reusable objects shared between worker threads.
#[derive(Debug)]
pub struct ObjectPool<T> {
    shelves: Vec<Mutex<Vec<T>>>,
    reused: AtomicU64,
    misses: AtomicU64,
}

/// The packet-level instantiation: pooled netsim [`World`]s.
pub type WorldPool = ObjectPool<World>;

impl<T> ObjectPool<T> {
    /// Creates a pool with `keys` empty shelves (one per configuration).
    pub fn new(keys: usize) -> Self {
        ObjectPool {
            shelves: (0..keys).map(|_| Mutex::new(Vec::new())).collect(),
            reused: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Number of configuration shelves.
    pub fn keys(&self) -> usize {
        self.shelves.len()
    }

    /// Takes an object previously checked in under `key`, if any. The
    /// caller is expected to reset it before use and to build a fresh one
    /// on `None`.
    ///
    /// # Panics
    ///
    /// Panics if `key` is out of range.
    pub fn checkout(&self, key: usize) -> Option<T> {
        let object = self.shelves[key].lock().expect("pool not poisoned").pop();
        match object {
            Some(o) => {
                self.reused.fetch_add(1, Ordering::Relaxed);
                Some(o)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Returns an object to the shelf for `key` for another worker to
    /// reuse.
    ///
    /// # Panics
    ///
    /// Panics if `key` is out of range.
    pub fn checkin(&self, key: usize, object: T) {
        self.shelves[key]
            .lock()
            .expect("pool not poisoned")
            .push(object);
    }

    /// Reuse counters accumulated so far.
    pub fn stats(&self) -> WorldPoolStats {
        WorldPoolStats {
            reused: self.reused.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_of_empty_shelf_is_a_miss() {
        let pool = WorldPool::new(2);
        assert!(pool.checkout(0).is_none());
        assert_eq!(
            pool.stats(),
            WorldPoolStats {
                reused: 0,
                misses: 1
            }
        );
        assert_eq!(pool.stats().hit_rate(), 0.0);
    }

    #[test]
    fn checkin_then_checkout_reuses() {
        let pool = WorldPool::new(1);
        pool.checkin(0, World::new(7));
        let w = pool.checkout(0).expect("shelved world comes back");
        assert_eq!(w.node_count(), 0);
        assert_eq!(
            pool.stats(),
            WorldPoolStats {
                reused: 1,
                misses: 0
            }
        );
        assert_eq!(pool.stats().hit_rate(), 1.0);
        assert!(pool.checkout(0).is_none(), "shelf is empty again");
    }

    #[test]
    fn shelves_are_independent() {
        let pool = WorldPool::new(3);
        pool.checkin(2, World::new(1));
        assert!(pool.checkout(0).is_none());
        assert!(pool.checkout(2).is_some());
    }

    #[test]
    fn pool_is_generic_over_contents() {
        let pool: ObjectPool<Vec<u8>> = ObjectPool::new(1);
        pool.checkin(0, vec![1, 2, 3]);
        assert_eq!(pool.checkout(0), Some(vec![1, 2, 3]));
        assert_eq!(pool.stats().hit_rate(), 1.0, "the one checkout hit");
        assert!(pool.checkout(0).is_none());
        assert!(
            (pool.stats().hit_rate() - 0.5).abs() < 1e-12,
            "1 hit, 1 miss"
        );
    }

    #[test]
    fn pool_is_shareable_across_threads() {
        let pool = WorldPool::new(4);
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let pool = &pool;
                scope.spawn(move || {
                    for _ in 0..8 {
                        let w = pool.checkout(t).unwrap_or_else(|| World::new(t as u64));
                        pool.checkin(t, w);
                    }
                });
            }
        });
        let stats = pool.stats();
        assert_eq!(stats.reused + stats.misses, 32);
        assert!(stats.misses >= 4, "each shelf missed at least once");
    }
}
