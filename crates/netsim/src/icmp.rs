//! Minimal ICMP: destination-unreachable with "fragmentation needed".
//!
//! Spoofed ICMP type-3/code-4 messages are how an off-path attacker forces a
//! nameserver to *fragment* its DNS responses (path-MTU poisoning): the
//! attacker sends `frag needed, mtu=548` pretending to be a router on the
//! path to the resolver, and the server's PMTU cache obliges.
//!
//! Messages are encoded to real bytes (type, code, checksum, rest-of-header,
//! plus the leading bytes of the offending packet) so parsing and checksum
//! validation behave like a real stack.

use crate::ip::{IpProto, Ipv4Packet, IPV4_HEADER_LEN};
use crate::udp::{fold_checksum, ones_complement_sum};
use bytes::Bytes;
use core::fmt;
use std::error::Error;
use std::net::Ipv4Addr;

/// ICMP messages understood by the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IcmpMessage {
    /// Destination unreachable / fragmentation needed (type 3, code 4).
    FragmentationNeeded {
        /// Next-hop MTU advertised by the (alleged) router.
        mtu: u16,
        /// Quoted header of the packet that allegedly did not fit.
        original: QuotedPacket,
    },
    /// Destination unreachable / port unreachable (type 3, code 3).
    PortUnreachable {
        /// Quoted header of the offending packet.
        original: QuotedPacket,
    },
    /// Echo request (type 8), used by probe tooling.
    EchoRequest {
        /// Identifier.
        id: u16,
        /// Sequence number.
        seq: u16,
    },
    /// Echo reply (type 0).
    EchoReply {
        /// Identifier.
        id: u16,
        /// Sequence number.
        seq: u16,
    },
}

/// The quoted IP header + first 8 payload bytes carried inside ICMP errors.
///
/// Receivers use it to attribute the error to a flow; in particular the PMTU
/// cache entry is keyed by `dst`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuotedPacket {
    /// Source of the offending packet (the host receiving the ICMP error).
    pub src: Ipv4Addr,
    /// Destination of the offending packet.
    pub dst: Ipv4Addr,
    /// Transport protocol of the offending packet.
    pub proto: IpProto,
    /// First eight payload bytes (ports for UDP).
    pub head: [u8; 8],
}

impl QuotedPacket {
    /// Builds a quote from an actual packet.
    pub fn of(pkt: &Ipv4Packet) -> Self {
        let mut head = [0u8; 8];
        let n = pkt.payload.len().min(8);
        head[..n].copy_from_slice(&pkt.payload[..n]);
        QuotedPacket {
            src: pkt.src,
            dst: pkt.dst,
            proto: pkt.proto,
            head,
        }
    }
}

/// Errors from [`IcmpMessage::decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IcmpError {
    /// Input shorter than the fixed ICMP header.
    Truncated,
    /// Checksum over the ICMP message failed.
    BadChecksum,
    /// Type/code combination the simulator does not model.
    Unsupported {
        /// ICMP type octet.
        icmp_type: u8,
        /// ICMP code octet.
        code: u8,
    },
}

impl fmt::Display for IcmpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IcmpError::Truncated => write!(f, "icmp message truncated"),
            IcmpError::BadChecksum => write!(f, "icmp checksum validation failed"),
            IcmpError::Unsupported { icmp_type, code } => {
                write!(f, "unsupported icmp type {icmp_type} code {code}")
            }
        }
    }
}

impl Error for IcmpError {}

impl IcmpMessage {
    /// Serialises the message (checksum included).
    pub fn encode(&self) -> Bytes {
        let mut out = Vec::with_capacity(36);
        match self {
            IcmpMessage::FragmentationNeeded { mtu, original } => {
                out.push(3);
                out.push(4);
                out.extend_from_slice(&[0, 0]); // checksum placeholder
                out.extend_from_slice(&[0, 0]); // unused
                out.extend_from_slice(&mtu.to_be_bytes());
                encode_quote(&mut out, original);
            }
            IcmpMessage::PortUnreachable { original } => {
                out.push(3);
                out.push(3);
                out.extend_from_slice(&[0, 0]);
                out.extend_from_slice(&[0, 0, 0, 0]);
                encode_quote(&mut out, original);
            }
            IcmpMessage::EchoRequest { id, seq } => {
                out.push(8);
                out.push(0);
                out.extend_from_slice(&[0, 0]);
                out.extend_from_slice(&id.to_be_bytes());
                out.extend_from_slice(&seq.to_be_bytes());
            }
            IcmpMessage::EchoReply { id, seq } => {
                out.push(0);
                out.push(0);
                out.extend_from_slice(&[0, 0]);
                out.extend_from_slice(&id.to_be_bytes());
                out.extend_from_slice(&seq.to_be_bytes());
            }
        }
        let sum = !fold_checksum(ones_complement_sum(&out));
        out[2..4].copy_from_slice(&sum.to_be_bytes());
        Bytes::from(out)
    }

    /// Parses an ICMP message.
    ///
    /// # Errors
    ///
    /// Returns [`IcmpError`] for truncated input, a bad checksum, or an
    /// unmodelled type/code.
    pub fn decode(bytes: &[u8]) -> Result<IcmpMessage, IcmpError> {
        if bytes.len() < 8 {
            return Err(IcmpError::Truncated);
        }
        if fold_checksum(ones_complement_sum(bytes)) != 0xffff {
            return Err(IcmpError::BadChecksum);
        }
        match (bytes[0], bytes[1]) {
            (3, 4) => {
                let mtu = u16::from_be_bytes([bytes[6], bytes[7]]);
                let original = decode_quote(&bytes[8..])?;
                Ok(IcmpMessage::FragmentationNeeded { mtu, original })
            }
            (3, 3) => {
                let original = decode_quote(&bytes[8..])?;
                Ok(IcmpMessage::PortUnreachable { original })
            }
            (8, 0) => Ok(IcmpMessage::EchoRequest {
                id: u16::from_be_bytes([bytes[4], bytes[5]]),
                seq: u16::from_be_bytes([bytes[6], bytes[7]]),
            }),
            (0, 0) => Ok(IcmpMessage::EchoReply {
                id: u16::from_be_bytes([bytes[4], bytes[5]]),
                seq: u16::from_be_bytes([bytes[6], bytes[7]]),
            }),
            (icmp_type, code) => Err(IcmpError::Unsupported { icmp_type, code }),
        }
    }

    /// Wraps the message in an IPv4 packet from `src` to `dst`.
    pub fn into_packet(self, src: Ipv4Addr, dst: Ipv4Addr) -> Ipv4Packet {
        Ipv4Packet::new(src, dst, IpProto::Icmp, self.encode())
    }
}

fn encode_quote(out: &mut Vec<u8>, q: &QuotedPacket) {
    // A plausible 20-byte IPv4 header for the quoted packet.
    let mut hdr = [0u8; IPV4_HEADER_LEN];
    hdr[0] = 0x45;
    hdr[8] = 64; // ttl
    hdr[9] = q.proto.number();
    hdr[12..16].copy_from_slice(&q.src.octets());
    hdr[16..20].copy_from_slice(&q.dst.octets());
    out.extend_from_slice(&hdr);
    out.extend_from_slice(&q.head);
}

fn decode_quote(bytes: &[u8]) -> Result<QuotedPacket, IcmpError> {
    if bytes.len() < IPV4_HEADER_LEN + 8 {
        return Err(IcmpError::Truncated);
    }
    let src = Ipv4Addr::new(bytes[12], bytes[13], bytes[14], bytes[15]);
    let dst = Ipv4Addr::new(bytes[16], bytes[17], bytes[18], bytes[19]);
    let proto = IpProto::from(bytes[9]);
    let mut head = [0u8; 8];
    head.copy_from_slice(&bytes[IPV4_HEADER_LEN..IPV4_HEADER_LEN + 8]);
    Ok(QuotedPacket {
        src,
        dst,
        proto,
        head,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quote() -> QuotedPacket {
        QuotedPacket {
            src: Ipv4Addr::new(203, 0, 113, 53),
            dst: Ipv4Addr::new(198, 51, 100, 2),
            proto: IpProto::Udp,
            head: [0, 53, 0x30, 0x39, 0, 32, 0xab, 0xcd],
        }
    }

    #[test]
    fn frag_needed_round_trip() {
        let msg = IcmpMessage::FragmentationNeeded {
            mtu: 548,
            original: quote(),
        };
        let wire = msg.encode();
        assert_eq!(IcmpMessage::decode(&wire).unwrap(), msg);
    }

    #[test]
    fn port_unreachable_round_trip() {
        let msg = IcmpMessage::PortUnreachable { original: quote() };
        let wire = msg.encode();
        assert_eq!(IcmpMessage::decode(&wire).unwrap(), msg);
    }

    #[test]
    fn echo_round_trip() {
        for msg in [
            IcmpMessage::EchoRequest { id: 7, seq: 42 },
            IcmpMessage::EchoReply { id: 7, seq: 42 },
        ] {
            let wire = msg.encode();
            assert_eq!(IcmpMessage::decode(&wire).unwrap(), msg);
        }
    }

    #[test]
    fn corrupted_message_fails_checksum() {
        let wire = IcmpMessage::EchoRequest { id: 1, seq: 2 }.encode();
        let mut bad = wire.to_vec();
        bad[5] ^= 0xff;
        assert_eq!(IcmpMessage::decode(&bad), Err(IcmpError::BadChecksum));
    }

    #[test]
    fn truncated_message_rejected() {
        assert_eq!(IcmpMessage::decode(&[3, 4, 0]), Err(IcmpError::Truncated));
    }

    #[test]
    fn unsupported_type_reported() {
        let mut raw = vec![13u8, 0, 0, 0, 0, 0, 0, 0];
        let sum = !fold_checksum(ones_complement_sum(&raw));
        raw[2..4].copy_from_slice(&sum.to_be_bytes());
        assert_eq!(
            IcmpMessage::decode(&raw),
            Err(IcmpError::Unsupported {
                icmp_type: 13,
                code: 0
            })
        );
    }

    #[test]
    fn quote_of_packet_captures_ports() {
        let pkt = Ipv4Packet::new(
            Ipv4Addr::new(1, 2, 3, 4),
            Ipv4Addr::new(5, 6, 7, 8),
            IpProto::Udp,
            Bytes::from(vec![0x12, 0x34, 0x00, 0x35, 0, 0, 0, 0, 99, 99]),
        );
        let q = QuotedPacket::of(&pkt);
        assert_eq!(q.src, pkt.src);
        assert_eq!(q.dst, pkt.dst);
        assert_eq!(&q.head[..4], &[0x12, 0x34, 0x00, 0x35]);
    }

    #[test]
    fn into_packet_sets_proto() {
        let pkt = IcmpMessage::EchoRequest { id: 1, seq: 1 }
            .into_packet(Ipv4Addr::new(9, 9, 9, 9), Ipv4Addr::new(8, 8, 8, 8));
        assert_eq!(pkt.proto, IpProto::Icmp);
        assert!(IcmpMessage::decode(&pkt.payload).is_ok());
    }
}
