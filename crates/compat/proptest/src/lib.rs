//! Offline mini property-testing harness, API-compatible with the subset of
//! `proptest` this workspace uses.
//!
//! Supported: the `proptest!` macro (with `pat in strategy` arguments),
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!`, `prop_oneof!`,
//! `any::<T>()`, integer-range strategies, tuple strategies,
//! [`collection::vec`], [`string::string_regex`] (a generative regex
//! subset: literals, `[...]` classes with ranges, `{m,n}`/`{n}`/`?`/`*`/`+`
//! quantifiers), `Just`, and `Strategy::prop_map`.
//!
//! Not supported: shrinking (a failing case reports its seed and values
//! instead), `prop_flat_map`, recursive strategies. Cases are generated from
//! a deterministic per-test seed so failures reproduce; set
//! `PROPTEST_CASES` to override the default of 64 cases per property.
//!
//! *(Workspace map: see `ARCHITECTURE.md` at the repo root — crate-by-crate
//! architecture, the data-flow diagram, and the determinism contract.)*

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Deterministic case generator handed to strategies.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Creates the RNG for `test_name`'s `case`-th input.
    pub fn deterministic(test_name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn usize_below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the property is falsified.
    Fail(String),
    /// `prop_assume!` filtered this case out; try another.
    Reject,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary + Default + Copy, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mut out = [T::default(); N];
        for slot in &mut out {
            *slot = T::arbitrary(rng);
        }
        out
    }
}

/// Strategy produced by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9)
}

/// A `&str` is a strategy generating strings matching it as a regex
/// (the generative subset documented on [`string::string_regex`]).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        string::string_regex(self)
            .unwrap_or_else(|e| panic!("invalid inline regex strategy {self:?}: {e}"))
            .generate(rng)
    }
}

/// Uniform choice between boxed alternatives; built by `prop_oneof!`.
pub struct OneOf<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    /// Builds the union; used by the `prop_oneof!` macro.
    ///
    /// # Panics
    ///
    /// Panics when `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.usize_below(self.options.len());
        self.options[i].generate(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length ranges accepted by [`fn@vec`].
    pub trait SizeRange {
        /// Draws a length.
        fn sample(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn sample(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.usize_below(self.end - self.start)
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn sample(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty size range");
            lo + rng.usize_below(hi - lo + 1)
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors of `element` values with lengths in `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }
}

/// String strategies.
pub mod string {
    use super::{Strategy, TestRng};

    /// A parsed generative regex (see [`string_regex`]).
    pub struct RegexGeneratorStrategy {
        atoms: Vec<(Atom, u32, u32)>,
    }

    enum Atom {
        Literal(char),
        Class(Vec<(char, char)>),
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for (atom, lo, hi) in &self.atoms {
                let n = lo + (rng.next_u64() % u64::from(hi - lo + 1)) as u32;
                for _ in 0..n {
                    match atom {
                        Atom::Literal(c) => out.push(*c),
                        Atom::Class(ranges) => {
                            let total: u32 =
                                ranges.iter().map(|(a, b)| *b as u32 - *a as u32 + 1).sum();
                            let mut pick = (rng.next_u64() % u64::from(total)) as u32;
                            for (a, b) in ranges {
                                let span = *b as u32 - *a as u32 + 1;
                                if pick < span {
                                    out.push(char::from_u32(*a as u32 + pick).expect("in range"));
                                    break;
                                }
                                pick -= span;
                            }
                        }
                    }
                }
            }
            out
        }
    }

    /// Builds a string strategy from a *generative* regex subset: literal
    /// characters, `[...]` classes (with `a-z` ranges and literal leading /
    /// trailing `-`), and the quantifiers `{n}`, `{m,n}`, `?`, `*`, `+`
    /// (unbounded quantifiers are capped at 16 repetitions).
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, String> {
        let mut atoms = Vec::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => {
                    let mut members: Vec<char> = Vec::new();
                    let mut ranges: Vec<(char, char)> = Vec::new();
                    loop {
                        let m = chars.next().ok_or("unterminated class")?;
                        if m == ']' {
                            break;
                        }
                        if chars.peek() == Some(&'-') {
                            // Lookahead: range only if something other than
                            // ']' follows the dash.
                            let mut ahead = chars.clone();
                            ahead.next(); // the dash
                            match ahead.peek() {
                                Some(&end) if end != ']' => {
                                    chars.next(); // consume '-'
                                    let end = chars.next().expect("peeked");
                                    if end < m {
                                        return Err(format!("inverted range {m}-{end}"));
                                    }
                                    ranges.push((m, end));
                                    continue;
                                }
                                _ => {}
                            }
                        }
                        members.push(m);
                    }
                    for m in members {
                        ranges.push((m, m));
                    }
                    if ranges.is_empty() {
                        return Err("empty character class".to_string());
                    }
                    Atom::Class(ranges)
                }
                '\\' => Atom::Literal(chars.next().ok_or("dangling escape")?),
                '(' | ')' | '|' | '.' | '^' | '$' => {
                    return Err(format!("unsupported regex construct {c:?}"));
                }
                other => Atom::Literal(other),
            };
            let (lo, hi) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    loop {
                        match chars.next() {
                            Some('}') => break,
                            Some(d) => spec.push(d),
                            None => return Err("unterminated quantifier".to_string()),
                        }
                    }
                    match spec.split_once(',') {
                        Some((a, b)) => {
                            let lo = a.trim().parse::<u32>().map_err(|e| e.to_string())?;
                            let hi = if b.trim().is_empty() {
                                lo + 16
                            } else {
                                b.trim().parse::<u32>().map_err(|e| e.to_string())?
                            };
                            (lo, hi)
                        }
                        None => {
                            let n = spec.trim().parse::<u32>().map_err(|e| e.to_string())?;
                            (n, n)
                        }
                    }
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('*') => {
                    chars.next();
                    (0, 16)
                }
                Some('+') => {
                    chars.next();
                    (1, 16)
                }
                _ => (1, 1),
            };
            atoms.push((atom, lo, hi));
        }
        Ok(RegexGeneratorStrategy { atoms })
    }
}

/// Number of cases each property runs (`PROPTEST_CASES` env override).
pub fn case_count() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, Strategy, TestCaseError,
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running [`case_count`] generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let cases = $crate::case_count();
            let mut rejected: u32 = 0;
            for case in 0..cases {
                let mut __proptest_rng = $crate::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    u64::from(case),
                );
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __proptest_rng);)+
                let mut __proptest_case =
                    || -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    };
                match __proptest_case() {
                    Ok(()) => {}
                    Err($crate::TestCaseError::Reject) => rejected += 1,
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property {} falsified at case {case}/{cases}: {msg}",
                            stringify!($name),
                        );
                    }
                }
            }
            assert!(
                rejected < cases,
                "prop_assume! rejected every generated case"
            );
        }
    )*};
}

/// Asserts inside a property body; failure falsifies the case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                left, right
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err($crate::TestCaseError::fail(format!(
                "{}: {:?} != {:?}",
                format!($($fmt)*), left, right
            )));
        }
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}",
                left, right
            )));
        }
    }};
}

/// Filters the current case out when `cond` does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Boxes a strategy for [`OneOf`], preserving its value type for inference.
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        // proptest's own syntax wraps alternatives in parentheses; keep
        // that convention lint-clean here.
        #[allow(unused_parens)]
        let options = vec![$($crate::boxed($strat)),+];
        $crate::OneOf::new(options)
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vec(
            x in 3usize..7,
            v in crate::collection::vec(0i64..10, 2..5),
            flag in any::<bool>(),
        ) {
            prop_assert!((3..7).contains(&x));
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&e| (0..10).contains(&e)));
            let _ = flag;
        }

        #[test]
        fn oneof_and_map(
            y in prop_oneof![(-10i64..-5), (5i64..10)].prop_map(|v| v * 2),
        ) {
            prop_assert!(y.abs() >= 10 && y.abs() <= 20, "y = {y}");
        }

        #[test]
        fn regex_subset(s in "[a-z][a-z0-9-]{0,14}") {
            prop_assert!(!s.is_empty() && s.len() <= 15);
            prop_assert!(s.chars().next().unwrap().is_ascii_lowercase());
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()
                || c.is_ascii_digit()
                || c == '-'));
        }

        #[test]
        fn assume_rejects_some(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::TestRng::deterministic("t", 3);
        let mut b = crate::TestRng::deterministic("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn string_regex_rejects_unsupported() {
        assert!(crate::string::string_regex("a|b").is_err());
        assert!(crate::string::string_regex("[").is_err());
    }
}
