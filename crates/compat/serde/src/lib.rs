//! Offline stand-in for `serde`.
//!
//! The repository's simulation code derives `Serialize`/`Deserialize` on
//! its result types so downstream consumers *could* persist them, but
//! nothing in-tree performs actual serde serialization (report/bench JSON is
//! emitted by hand). Since the build container has no crates.io access, this
//! stub provides the two traits as blanket-implemented markers and re-exports
//! no-op derive macros, keeping every `#[derive(Serialize, Deserialize)]`
//! and `T: Serialize` bound compiling unchanged.
//!
//! If real serialization is ever needed, replace this stub with the genuine
//! crate in `[workspace.dependencies]` — no call-site changes required.
//!
//! *(Workspace map: see `ARCHITECTURE.md` at the repo root — crate-by-crate
//! architecture, the data-flow diagram, and the determinism contract.)*

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize`; implemented for every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker counterpart of `serde::Deserialize`; implemented for every type.
pub trait Deserialize {}
impl<T: ?Sized> Deserialize for T {}

/// Subset of `serde::de` used in bounds.
pub mod de {
    /// Marker counterpart of `serde::de::DeserializeOwned`.
    pub trait DeserializeOwned {}
    impl<T: ?Sized> DeserializeOwned for T {}
}
