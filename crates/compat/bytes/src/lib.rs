//! Offline stand-in for the `bytes` crate's [`Bytes`] type.
//!
//! Semantics match what the simulator relies on: a `Bytes` is an immutable
//! byte buffer; [`Bytes::clone`] is a reference-count bump and
//! [`Bytes::slice`] is a zero-copy sub-view of the same allocation. This is
//! the property the netsim hot path depends on — fragmenting a datagram or
//! fanning a payload out to the event queue shares one `Arc<[u8]>`
//! allocation instead of memcpy-ing `Vec<u8>`s per packet.
//!
//! *(Workspace map: see `ARCHITECTURE.md` at the repo root — crate-by-crate
//! architecture, the data-flow diagram, and the determinism contract.)*

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, zero-copy-sliceable immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Option<Arc<[u8]>>,
    offset: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub const fn new() -> Self {
        Bytes {
            data: None,
            offset: 0,
            len: 0,
        }
    }

    /// Wraps a static slice without copying or allocating.
    ///
    /// (The stub stores an `Arc` either way, so unlike upstream this
    /// allocates the shared header once; the payload itself is not copied
    /// on subsequent clones/slices, which is what matters here.)
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Copies a slice into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Zero-copy sub-view sharing this buffer's allocation.
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "slice {start}..{end} out of bounds for Bytes of length {}",
            self.len
        );
        Bytes {
            data: self.data.clone(),
            offset: self.offset + start,
            len: end - start,
        }
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        match &self.data {
            Some(arc) => &arc[self.offset..self.offset + self.len],
            None => &[],
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: Some(Arc::from(v)),
            offset: 0,
            len,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(s: &[u8; N]) -> Self {
        Bytes::from(s.to_vec())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes::from(s.as_bytes().to_vec())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_and_slice_share_allocation() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let c = b.clone();
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        // Same backing allocation: Arc pointer equality.
        let pa = b.data.as_ref().unwrap().as_ptr();
        assert_eq!(pa, c.data.as_ref().unwrap().as_ptr());
        assert_eq!(pa, s.data.as_ref().unwrap().as_ptr());
    }

    #[test]
    fn slice_of_slice_composes() {
        let b = Bytes::from((0u8..100).collect::<Vec<_>>());
        let s = b.slice(10..90).slice(5..10);
        assert_eq!(&s[..], &[15, 16, 17, 18, 19]);
        assert_eq!(s.slice(..).len(), 5);
    }

    #[test]
    fn empty_and_equality() {
        assert_eq!(Bytes::new().len(), 0);
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::new(), Bytes::from(Vec::new()));
        let b = Bytes::from(vec![9u8, 8]);
        assert_eq!(b, vec![9u8, 8]);
        assert_eq!(b, [9u8, 8][..]);
        assert_eq!(b.to_vec(), vec![9u8, 8]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oversized_slice_panics() {
        Bytes::from(vec![1u8]).slice(0..2);
    }
}
