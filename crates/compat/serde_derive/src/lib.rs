//! No-op derive macros for the vendored `serde` stub.
//!
//! The workspace builds in a network-less container, so `serde` is a local
//! stub whose `Serialize`/`Deserialize` traits are blanket-implemented for
//! every type. These derives therefore only need to *exist* (so
//! `#[derive(Serialize, Deserialize)]` parses) and expand to nothing.
//! `#[serde(...)]` helper attributes are accepted and ignored.
//!
//! *(Workspace map: see `ARCHITECTURE.md` at the repo root — crate-by-crate
//! architecture, the data-flow diagram, and the determinism contract.)*

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
