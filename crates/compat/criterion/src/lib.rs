//! Offline mini benchmark harness, API-compatible with the subset of
//! `criterion` the bench targets use (`bench_function`, `benchmark_group`,
//! `sample_size`, `throughput`, `criterion_group!`/`criterion_main!`,
//! [`black_box`]).
//!
//! Differences from upstream: fixed sample counts instead of adaptive
//! sampling, no statistical analysis beyond min/mean, and — the reason this
//! stub exists beyond offline builds — every run writes a machine-readable
//! `BENCH_<target>.json` artifact (wall time, per-iteration mean,
//! elements/sec when a throughput is declared, peak RSS when
//! `/proc/self/status` is available) so CI can track the perf trajectory.
//! Set `BENCH_JSON_DIR` to redirect the artifact directory (default:
//! `<workspace>/bench-results`).
//!
//! *(Workspace map: see `ARCHITECTURE.md` at the repo root — crate-by-crate
//! architecture, the data-flow diagram, and the determinism contract.)*

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting a
/// computation whose result is otherwise unused.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Workload size declaration for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The routine processes this many logical elements per iteration
    /// (e.g. Monte-Carlo trials).
    Elements(u64),
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
}

/// One engine-stage wall-time row, serialized into the artifact's
/// `stage_timings` section. Bench targets that instrument their workload
/// (e.g. with `fleet::metrics::FleetMetrics`) convert their stage
/// summaries into these and attach them via
/// [`Criterion::record_stage_timings`] — so `BENCH_*.json` says *where*
/// an iteration spends its time, not just how long it takes.
#[derive(Debug, Clone, PartialEq)]
pub struct StageTiming {
    /// Stage label (e.g. `shard_slice`, `report_merge`).
    pub stage: String,
    /// Times the stage ran across all measured iterations.
    pub count: u64,
    /// Total wall seconds across those runs.
    pub total_secs: f64,
}

/// One measured benchmark, as serialized into the JSON artifact.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Fully qualified bench name (`group/function`).
    pub name: String,
    /// Measured iterations (excludes the warm-up iteration).
    pub iters: u64,
    /// Total wall time across measured iterations.
    pub total: Duration,
    /// Fastest single iteration.
    pub min: Duration,
    /// Declared per-iteration workload, if any.
    pub throughput: Option<Throughput>,
}

impl Measurement {
    /// Mean seconds per iteration.
    pub fn mean_secs(&self) -> f64 {
        self.total.as_secs_f64() / self.iters as f64
    }

    /// Declared elements per second, when an element throughput was set.
    pub fn elements_per_sec(&self) -> Option<f64> {
        match self.throughput {
            Some(Throughput::Elements(n)) => Some(n as f64 / self.mean_secs()),
            _ => None,
        }
    }

    /// Declared bytes per second, when a byte throughput was set.
    pub fn bytes_per_sec(&self) -> Option<f64> {
        match self.throughput {
            Some(Throughput::Bytes(n)) => Some(n as f64 / self.mean_secs()),
            _ => None,
        }
    }

    fn rate(&self) -> Option<(f64, &'static str)> {
        self.elements_per_sec()
            .map(|r| (r, "elem/s"))
            .or_else(|| self.bytes_per_sec().map(|r| (r, "B/s")))
    }
}

/// Times one routine; handed to the closure of `bench_function`.
pub struct Bencher {
    iters: u64,
    total: Duration,
    min: Duration,
}

impl Bencher {
    /// Runs `routine` once for warm-up, then `iters` measured times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(routine());
            let dt = start.elapsed();
            total += dt;
            min = min.min(dt);
        }
        self.total = total;
        self.min = min;
    }
}

/// The harness: collects measurements and prints a line per bench.
pub struct Criterion {
    default_sample_size: u64,
    measurements: Vec<Measurement>,
    stages: Vec<StageTiming>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            // Upstream defaults to 100 samples; these benches run whole
            // packet-level simulations per iteration, so keep counts low.
            default_sample_size: 10,
            measurements: Vec::new(),
            stages: Vec::new(),
        }
    }
}

impl Criterion {
    /// Benchmarks `f` under `name` with the default sample size.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let n = self.default_sample_size;
        self.run_one(name.to_string(), n, None, f);
        self
    }

    /// Starts a named group whose benches share configuration.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
            throughput: None,
        }
    }

    /// All measurements taken so far.
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }

    /// Attach per-stage wall-time rows to this target's JSON artifact
    /// (appended; a target instrumenting several workloads calls this
    /// once per workload with distinct stage labels).
    pub fn record_stage_timings<I: IntoIterator<Item = StageTiming>>(&mut self, stages: I) {
        self.stages.extend(stages);
    }

    /// Stage timings recorded so far.
    pub fn stage_timings(&self) -> &[StageTiming] {
        &self.stages
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        name: String,
        iters: u64,
        throughput: Option<Throughput>,
        mut f: F,
    ) {
        let mut b = Bencher {
            iters,
            total: Duration::ZERO,
            min: Duration::MAX,
        };
        f(&mut b);
        self.push(Measurement {
            name,
            iters: b.iters,
            total: b.total,
            min: b.min,
            throughput,
        });
    }

    fn push(&mut self, m: Measurement) {
        let rate = m
            .rate()
            .map(|(r, unit)| format!("  ({r:.0} {unit})"))
            .unwrap_or_default();
        println!(
            "bench: {:<44} {:>12.3?}/iter  (min {:.3?}, {} iters){rate}",
            m.name,
            Duration::from_secs_f64(m.mean_secs()),
            m.min,
            m.iters,
        );
        self.measurements.push(m);
    }
}

/// A group of related benches sharing sample size and throughput.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<u64>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the measured iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n as u64);
        self
    }

    /// Declares the per-iteration workload for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` under `group/name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let iters = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        let full = format!("{}/{}", self.name, name);
        let throughput = self.throughput;
        self.criterion.run_one(full, iters, throughput, f);
        self
    }

    /// Benchmarks two variants of one routine with their samples
    /// **interleaved** (one warm-up of each, then an A/B sample pair per
    /// round), recording them as `group/name_a` (`f(false)`) and
    /// `group/name_b` (`f(true)`).
    ///
    /// Not part of upstream criterion. It exists for within-run ratio
    /// guards on tight floors (e.g. the ~2% metrics-overhead guard in
    /// `bench-diff`): sequential targets are separated by minutes of
    /// wall time, and host drift over that span — CPU burst credits,
    /// noisy neighbours — routinely exceeds a few percent, drowning the
    /// signal. Alternating the samples puts both variants under the same
    /// drift, so their ratio measures only the code difference.
    pub fn bench_pair<O, F: FnMut(bool) -> O>(
        &mut self,
        name_a: &str,
        name_b: &str,
        mut f: F,
    ) -> &mut Self {
        let iters = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        black_box(f(false));
        black_box(f(true));
        let mut totals = [Duration::ZERO; 2];
        let mut mins = [Duration::MAX; 2];
        for _ in 0..iters {
            for (i, variant) in [false, true].into_iter().enumerate() {
                let start = Instant::now();
                black_box(f(variant));
                let dt = start.elapsed();
                totals[i] += dt;
                mins[i] = mins[i].min(dt);
            }
        }
        for (i, name) in [name_a, name_b].into_iter().enumerate() {
            self.criterion.push(Measurement {
                name: format!("{}/{}", self.name, name),
                iters,
                total: totals[i],
                min: mins[i],
                throughput: self.throughput,
            });
        }
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Peak resident set size in bytes, when the platform exposes it.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Serializes `measurements` (and any recorded stage timings) into the
/// `BENCH_<target>.json` schema. The `stage_timings` section comes
/// *after* `results` and its objects carry no `name` key, so scanners of
/// the results array (the `bench-diff` gate) are unaffected.
pub fn render_json(target: &str, measurements: &[Measurement], stages: &[StageTiming]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"bench\": \"{}\",\n", json_escape(target)));
    out.push_str(&format!(
        "  \"schema\": 1,\n  \"peak_rss_bytes\": {},\n",
        peak_rss_bytes()
            .map(|b| b.to_string())
            .unwrap_or_else(|| "null".to_string())
    ));
    out.push_str("  \"results\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let opt = |r: Option<f64>| {
            r.map(|v| format!("{v:.3}"))
                .unwrap_or_else(|| "null".to_string())
        };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"iters\": {}, \"wall_time_secs\": {:.9}, \
             \"mean_secs_per_iter\": {:.9}, \"min_secs_per_iter\": {:.9}, \
             \"elements_per_sec\": {}, \"bytes_per_sec\": {}}}{}\n",
            json_escape(&m.name),
            m.iters,
            m.total.as_secs_f64(),
            m.mean_secs(),
            m.min.as_secs_f64(),
            opt(m.elements_per_sec()),
            opt(m.bytes_per_sec()),
            if i + 1 == measurements.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"stage_timings\": [\n");
    for (i, s) in stages.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"stage\": \"{}\", \"count\": {}, \"total_secs\": {:.9}}}{}\n",
            json_escape(&s.stage),
            s.count,
            s.total_secs,
            if i + 1 == stages.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Entry point wired by `criterion_main!`: runs every group, then writes
/// the JSON artifact for this bench target.
pub fn run_main(target: &str, manifest_dir: &str, groups: &[fn(&mut Criterion)]) {
    // Cargo invokes bench binaries with `--bench` (and test harness args
    // under `cargo test --benches`); accept and ignore them.
    let mut c = Criterion::default();
    for group in groups {
        group(&mut c);
    }
    let dir = std::env::var("BENCH_JSON_DIR").unwrap_or_else(|_| {
        std::path::Path::new(manifest_dir)
            .join("../../bench-results")
            .to_string_lossy()
            .into_owned()
    });
    let path = std::path::Path::new(&dir).join(format!("BENCH_{target}.json"));
    if std::fs::create_dir_all(&dir).is_ok() {
        match std::fs::write(
            &path,
            render_json(target, c.measurements(), c.stage_timings()),
        ) {
            Ok(()) => println!("bench-json: wrote {}", path.display()),
            Err(e) => eprintln!("bench-json: failed to write {}: {e}", path.display()),
        }
    }
}

/// Declares a bench group function compatible with `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the bench `main` that runs groups and writes the JSON artifact.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $crate::run_main(
                env!("CARGO_CRATE_NAME"),
                env!("CARGO_MANIFEST_DIR"),
                &[$($group),+],
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_records() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        assert_eq!(c.measurements().len(), 1);
        let m = &c.measurements()[0];
        assert_eq!(m.name, "noop");
        assert_eq!(m.iters, 10);
        assert!(m.total >= m.min);
    }

    #[test]
    fn group_overrides_and_throughput() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.throughput(Throughput::Elements(1000));
            g.bench_function("work", |b| b.iter(|| black_box(42)));
            g.finish();
        }
        let m = &c.measurements()[0];
        assert_eq!(m.name, "g/work");
        assert_eq!(m.iters, 3);
        assert!(m.elements_per_sec().unwrap() > 0.0);
        assert_eq!(m.bytes_per_sec(), None);
    }

    #[test]
    fn bytes_throughput_is_not_reported_as_elements() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.throughput(Throughput::Bytes(1500));
            g.bench_function("pkt", |b| b.iter(|| black_box(0)));
        }
        let m = &c.measurements()[0];
        assert_eq!(m.elements_per_sec(), None);
        assert!(m.bytes_per_sec().unwrap() > 0.0);
        let json = render_json("t", c.measurements(), c.stage_timings());
        assert!(json.contains("\"elements_per_sec\": null"));
        assert!(!json.contains("\"bytes_per_sec\": null"));
    }

    #[test]
    fn bench_pair_interleaves_and_records_both() {
        let mut c = Criterion::default();
        let mut order = Vec::new();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.throughput(Throughput::Elements(10));
            g.bench_pair("plain", "metered", |variant| {
                order.push(variant);
                black_box(variant)
            });
        }
        // One warm-up of each, then alternating measured pairs.
        assert_eq!(
            order,
            vec![false, true, false, true, false, true, false, true]
        );
        let names: Vec<&str> = c.measurements().iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, ["g/plain", "g/metered"]);
        for m in c.measurements() {
            assert_eq!(m.iters, 3);
            assert!(m.elements_per_sec().unwrap() > 0.0);
        }
    }

    #[test]
    fn json_schema_is_parseable_shape() {
        let mut c = Criterion::default();
        c.bench_function("x\"y", |b| b.iter(|| 0));
        let json = render_json("unit_test", c.measurements(), c.stage_timings());
        assert!(json.contains("\"bench\": \"unit_test\""));
        assert!(json.contains("\\\"")); // escaped quote in name
        assert!(json.contains("\"wall_time_secs\""));
        assert!(json.contains("\"stage_timings\": [\n  ]"));
        assert!(json.trim_end().ends_with('}'));
    }

    #[test]
    fn stage_timings_render_after_results_without_name_keys() {
        let mut c = Criterion::default();
        c.bench_function("work", |b| b.iter(|| black_box(3)));
        c.record_stage_timings([
            StageTiming {
                stage: "shard_slice".into(),
                count: 40,
                total_secs: 1.25,
            },
            StageTiming {
                stage: "report_merge".into(),
                count: 10,
                total_secs: 0.5,
            },
        ]);
        assert_eq!(c.stage_timings().len(), 2);
        let json = render_json("t", c.measurements(), c.stage_timings());
        let results_at = json.find("\"results\"").unwrap();
        let stages_at = json.find("\"stage_timings\"").unwrap();
        assert!(
            stages_at > results_at,
            "stage section must follow the results array"
        );
        assert!(json
            .contains("{\"stage\": \"shard_slice\", \"count\": 40, \"total_secs\": 1.250000000}"));
        // No `name` key outside the results array: scanners that walk
        // `"name":` entries after `"results"` must not pick up stages.
        assert!(!json[stages_at..].contains("\"name\":"));
    }
}
