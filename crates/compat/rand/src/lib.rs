//! Offline stand-in for the subset of `rand` 0.8 this workspace uses.
//!
//! The simulator needs *deterministic, seedable, decorrelated* streams —
//! not cryptographic quality — so [`rngs::StdRng`] here is xoshiro256**
//! seeded via SplitMix64 rather than ChaCha12. All randomness consumed by
//! the simulation flows through `netsim::rng::SimRng`, which wraps this
//! type; swapping back to the real crate changes concrete streams but no
//! API.
//!
//! Supported surface: [`RngCore`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`], [`Rng::gen_range`] (integer and float ranges, half-open
//! and inclusive), [`Rng::gen_bool`], and [`Error`].
//!
//! *(Workspace map: see `ARCHITECTURE.md` at the repo root — crate-by-crate
//! architecture, the data-flow diagram, and the determinism contract.)*

use core::fmt;

/// Error type for fallible RNG operations (never produced by this stub).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// Core random-number-generator interface (mirrors `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// Seedable construction (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible uniformly at random by [`Rng::gen`].
pub trait Random {
    /// Draws one value from `rng`.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for u128 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`] (mirrors `SampleRange`).
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Zero-extend the *unsigned reinterpretation* of the
                // wrapping difference: a signed span wider than
                // $wide::MAX (e.g. i64::MIN..0) must not sign-extend.
                let span =
                    ((self.end as $wide).wrapping_sub(self.start as $wide) as u64) as u128;
                let off = u128::random(rng) % span;
                ((self.start as $wide as u128).wrapping_add(off)) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = ((hi as $wide).wrapping_sub(lo as $wide) as u64) as u128 + 1;
                let off = u128::random(rng) % span;
                ((lo as $wide as u128).wrapping_add(off)) as $t
            }
        }
    )*};
}
impl_sample_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::random(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::random(rng) * (hi - lo)
    }
}

/// Convenience extension trait (mirrors `rand::Rng`); blanket-implemented
/// for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Draws `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `0.0..=1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        f64::random(self) < p
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{Error, RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for `rand`'s
    /// ChaCha12-based `StdRng`; same API, different — but still
    /// deterministic — stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(10u16..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let z = rng.gen_range(-1.5f64..=1.5);
            assert!((-1.5..=1.5).contains(&z));
            let w = rng.gen_range(0usize..3);
            assert!(w < 3);
        }
    }

    #[test]
    fn signed_ranges_wider_than_i64_max_stay_in_bounds() {
        // Regression: the span used to be sign-extended, making `% span` a
        // no-op for ranges wider than i64::MAX.
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen_negative = false;
        for _ in 0..1000 {
            let x = rng.gen_range(i64::MIN..=0);
            assert!(x <= 0, "out of range: {x}");
            seen_negative |= x < 0;
            let y = rng.gen_range(i64::MIN..i64::MAX);
            assert!(y < i64::MAX);
        }
        assert!(seen_negative);
        // Full u64 range must not panic (span = 2^64).
        let _ = rng.gen_range(0u64..=u64::MAX);
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
