//! The plain (traditional) NTP client — the paper's baseline.
//!
//! Resolves `pool.ntp.org` **once**, keeps the first 4 addresses as its
//! servers, and every poll interval runs the classic ntpd pipeline
//! (intersection → cluster → combine) over their samples. Against this
//! client the DNS attacker gets exactly **one** poisoning opportunity — the
//! contrast to Chronos' 24 that the paper's §IV builds on.

use crate::assoc::NtpExchanger;
use crate::clock::LocalClock;
use crate::combine::{ntpd_pipeline, PipelineOutcome};
use crate::select::PeerSample;
use dnslab::client::StubResolver;
use dnslab::name::Name;
use dnslab::wire::Question;
use netsim::ip::Ipv4Packet;
use netsim::node::{Context, Node};
use netsim::stack::{IpStack, StackEvent};
use netsim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::net::Ipv4Addr;

const TAG_DNS_RETRY: u64 = 1;
const TAG_POLL: u64 = 2;
const TAG_COLLECT: u64 = 3;

/// Configuration of a [`PlainNtpClient`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlainNtpConfig {
    /// Name resolved to discover servers.
    pub pool_name: Name,
    /// How many of the returned addresses become servers.
    pub num_servers: usize,
    /// Poll cadence.
    pub poll_interval: SimDuration,
    /// How long to wait for server replies each poll.
    pub response_window: SimDuration,
    /// Retry delay when DNS fails.
    pub dns_retry: SimDuration,
}

impl Default for PlainNtpConfig {
    fn default() -> Self {
        PlainNtpConfig {
            pool_name: "pool.ntp.org".parse().expect("static name"),
            num_servers: 4,
            poll_interval: SimDuration::from_secs(64),
            response_window: SimDuration::from_secs(1),
            dns_retry: SimDuration::from_secs(5),
        }
    }
}

/// Counters describing client activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlainNtpStats {
    /// DNS resolutions attempted.
    pub dns_queries: u64,
    /// Poll rounds started.
    pub polls: u64,
    /// Clock corrections applied.
    pub updates: u64,
    /// Rounds where selection found no majority clique.
    pub no_majority: u64,
}

/// A traditional 4-server NTP client node.
#[derive(Debug)]
pub struct PlainNtpClient {
    stack: IpStack,
    stub: StubResolver,
    exchanger: NtpExchanger,
    clock: LocalClock,
    /// Snapshot restored by [`Node::reset`] (world-reuse support).
    initial_clock: LocalClock,
    config: PlainNtpConfig,
    servers: Vec<Ipv4Addr>,
    round_samples: Vec<PeerSample>,
    offset_trace: Vec<(SimTime, i64)>,
    stats: PlainNtpStats,
}

impl PlainNtpClient {
    /// Creates a client at `addr` using `resolver` for discovery.
    pub fn new(addr: Ipv4Addr, resolver: Ipv4Addr, clock: LocalClock) -> Self {
        PlainNtpClient::with_config(addr, resolver, clock, PlainNtpConfig::default())
    }

    /// Creates a client with explicit configuration.
    pub fn with_config(
        addr: Ipv4Addr,
        resolver: Ipv4Addr,
        clock: LocalClock,
        config: PlainNtpConfig,
    ) -> Self {
        PlainNtpClient {
            stack: IpStack::new(addr),
            stub: StubResolver::new(resolver),
            exchanger: NtpExchanger::new(),
            initial_clock: clock.clone(),
            clock,
            config,
            servers: Vec::new(),
            round_samples: Vec::new(),
            offset_trace: Vec::new(),
            stats: PlainNtpStats::default(),
        }
    }

    /// The client's address.
    pub fn addr(&self) -> Ipv4Addr {
        self.stack.addr()
    }

    /// The client's clock.
    pub fn clock(&self) -> &LocalClock {
        &self.clock
    }

    /// The servers picked from DNS (empty until resolution succeeds).
    pub fn servers(&self) -> &[Ipv4Addr] {
        &self.servers
    }

    /// Offset-from-true-time samples, one per completed poll round.
    pub fn offset_trace(&self) -> &[(SimTime, i64)] {
        &self.offset_trace
    }

    /// Activity counters.
    pub fn stats(&self) -> PlainNtpStats {
        self.stats
    }

    /// Current clock error against true time, in nanoseconds.
    pub fn offset_from_true(&self, now: SimTime) -> i64 {
        self.clock.offset_from_true(now)
    }

    fn resolve(&mut self, ctx: &mut Context<'_>) {
        self.stats.dns_queries += 1;
        let q = Question::a(self.config.pool_name.clone());
        self.stub.query(ctx, &mut self.stack, q, 0);
        ctx.set_timer(self.config.dns_retry, TAG_DNS_RETRY);
    }

    fn start_poll(&mut self, ctx: &mut Context<'_>) {
        self.stats.polls += 1;
        self.round_samples.clear();
        self.exchanger.clear();
        for server in self.servers.clone() {
            self.exchanger
                .query(ctx, &mut self.stack, &self.clock, server);
        }
        ctx.set_timer(self.config.response_window, TAG_COLLECT);
    }

    fn finish_poll(&mut self, ctx: &mut Context<'_>) {
        match ntpd_pipeline(&self.round_samples) {
            PipelineOutcome::Correction(c) => {
                self.clock.apply_correction(ctx.now(), c.offset_ns);
                self.stats.updates += 1;
            }
            PipelineOutcome::NoMajority => self.stats.no_majority += 1,
            PipelineOutcome::NoSamples => {}
        }
        self.offset_trace
            .push((ctx.now(), self.clock.offset_from_true(ctx.now())));
        let remaining = self
            .config
            .poll_interval
            .saturating_sub(self.config.response_window);
        ctx.set_timer(remaining, TAG_POLL);
    }
}

impl Node for PlainNtpClient {
    fn reset(&mut self) {
        self.stack.reset();
        self.stub.reset();
        self.exchanger.clear();
        self.clock = self.initial_clock.clone();
        self.servers.clear();
        self.round_samples.clear();
        self.offset_trace.clear();
        self.stats = PlainNtpStats::default();
    }

    fn on_start(&mut self, ctx: &mut Context<'_>) {
        self.resolve(ctx);
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Ipv4Packet) {
        let Some(StackEvent::Udp { src, datagram, .. }) = self.stack.handle(ctx, pkt) else {
            return;
        };
        // DNS bootstrap response?
        if self.servers.is_empty() {
            if let Some(resp) = self.stub.handle(src, &datagram) {
                let addrs = resp.message.answer_addrs();
                if !addrs.is_empty() {
                    self.servers = addrs.into_iter().take(self.config.num_servers).collect();
                    self.start_poll(ctx);
                }
                return;
            }
        }
        // NTP reply?
        if let Some(sample) = self
            .exchanger
            .handle(ctx.now(), &self.clock, src, &datagram)
        {
            self.round_samples.push(sample);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: u64) {
        match tag {
            TAG_DNS_RETRY if self.servers.is_empty() => {
                self.resolve(ctx);
            }
            TAG_POLL if !self.servers.is_empty() => {
                self.start_poll(ctx);
            }
            TAG_COLLECT => self.finish_poll(ctx),
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::NtpServer;
    use dnslab::resolver::{RecursiveResolver, Upstream};
    use dnslab::server::AuthServer;
    use dnslab::zone::pool_ntp_zone;
    use netsim::prelude::*;

    /// Builds: auth NS + resolver + `n_servers` NTP servers (addresses
    /// 10.32.0.1..) + plain client. Server `shift_all` shifts every NTP
    /// server clock (attack stand-in).
    fn build_world(
        seed: u64,
        universe: usize,
        shift_all_ns: i64,
        client_clock: LocalClock,
    ) -> (World, NodeId) {
        let ns_addr = Ipv4Addr::new(203, 0, 113, 1);
        let resolver_addr = Ipv4Addr::new(198, 51, 100, 53);
        let client_addr = Ipv4Addr::new(198, 51, 100, 10);
        let mut world = World::new(seed);
        world.add_node(
            "auth",
            Box::new(AuthServer::new(ns_addr, vec![pool_ntp_zone(universe, 1)])),
            &[ns_addr],
        );
        let mut res = RecursiveResolver::new(
            resolver_addr,
            vec![Upstream {
                zone: "pool.ntp.org".parse().unwrap(),
                ns_names: vec!["ns1.pool.ntp.org".parse().unwrap()],
                bootstrap: vec![ns_addr],
            }],
        );
        res.allow_client(client_addr);
        world.add_node("resolver", Box::new(res), &[resolver_addr]);
        for i in 0..universe as u32 {
            let addr = Ipv4Addr::from(u32::from(Ipv4Addr::new(10, 32, 0, 1)) + i);
            world.add_node(
                format!("ntp{i}"),
                Box::new(NtpServer::new(addr, LocalClock::new(shift_all_ns, 0.0))),
                &[addr],
            );
        }
        let client = world.add_node(
            "client",
            Box::new(PlainNtpClient::new(
                client_addr,
                resolver_addr,
                client_clock,
            )),
            &[client_addr],
        );
        (world, client)
    }

    #[test]
    fn bootstraps_from_dns_and_polls_four_servers() {
        let (mut world, client) = build_world(1, 16, 0, LocalClock::perfect());
        world.run_for(SimDuration::from_secs(10));
        let c = world.node::<PlainNtpClient>(client);
        assert_eq!(c.servers().len(), 4);
        assert_eq!(c.stats().dns_queries, 1, "plain NTP queries DNS once");
        assert!(c.stats().polls >= 1);
        assert!(c.stats().updates >= 1);
    }

    #[test]
    fn corrects_initial_clock_error() {
        let wrong = LocalClock::new(300_000_000, 0.0); // +300 ms off
        let (mut world, client) = build_world(2, 16, 0, wrong);
        world.run_for(SimDuration::from_secs(200));
        let c = world.node::<PlainNtpClient>(client);
        let final_err = c.offset_from_true(world.now()).abs();
        assert!(
            final_err < 5_000_000,
            "client converged to {final_err}ns from true time"
        );
        assert!(!c.offset_trace().is_empty());
    }

    #[test]
    fn tracks_drifting_clock() {
        let drifting = LocalClock::new(0, 50.0); // 50 ppm fast
        let (mut world, client) = build_world(3, 16, 0, drifting);
        world.run_for(SimDuration::from_secs(600));
        let c = world.node::<PlainNtpClient>(client);
        // 50ppm over 64s accrues 3.2ms between polls; corrections keep the
        // error bounded well below the uncorrected 30ms.
        let final_err = c.offset_from_true(world.now()).abs();
        assert!(final_err < 10_000_000, "bounded to {final_err}ns");
        assert!(c.stats().updates >= 8);
    }

    #[test]
    fn follows_unanimous_liars() {
        // All servers (hence all 4 chosen) lie by +500 ms: the pipeline has
        // no honest minority to save it.
        let (mut world, client) = build_world(4, 16, 500_000_000, LocalClock::perfect());
        world.run_for(SimDuration::from_secs(100));
        let c = world.node::<PlainNtpClient>(client);
        let err = c.offset_from_true(world.now());
        assert!(err > 490_000_000, "client dragged to the lie: {err}ns");
    }

    #[test]
    fn dns_failure_retries() {
        // No resolver in this world: DNS queries vanish.
        let client_addr = Ipv4Addr::new(198, 51, 100, 10);
        let mut world = World::new(5);
        let client = world.add_node(
            "client",
            Box::new(PlainNtpClient::new(
                client_addr,
                Ipv4Addr::new(198, 51, 100, 53),
                LocalClock::perfect(),
            )),
            &[client_addr],
        );
        world.run_for(SimDuration::from_secs(30));
        let c = world.node::<PlainNtpClient>(client);
        assert!(c.stats().dns_queries >= 4, "kept retrying DNS");
        assert!(c.servers().is_empty());
    }
}
