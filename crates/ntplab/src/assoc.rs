//! Client-side NTP associations: the on-wire measurement.
//!
//! [`NtpExchanger`] sends mode-3 requests and turns matching mode-4 replies
//! into [`PeerSample`]s using the standard four-timestamp computation
//! (RFC 5905 §8):
//!
//! ```text
//! offset θ = ((T2 − T1) + (T3 − T4)) / 2
//! delay  δ = (T4 − T1) − (T3 − T2)
//! ```
//!
//! Replies must echo our transmit timestamp (T1) in their originate field —
//! NTP's only off-path protection.

use crate::clock::LocalClock;
use crate::packet::{Mode, NtpPacket, NTP_PORT};
use crate::select::PeerSample;
use crate::timestamp::NtpTimestamp;
use bytes::Bytes;
use netsim::node::Context;
use netsim::stack::IpStack;
use netsim::time::SimTime;
use netsim::udp::UdpDatagram;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Local port client exchanges run from.
pub const NTP_CLIENT_PORT: u16 = 3123;

/// Assumed client frequency tolerance used for dispersion growth (ppm).
pub const DISPERSION_PPM: f64 = 15.0;

#[derive(Debug, Clone, Copy)]
struct PendingExchange {
    t1_clock: NtpTimestamp,
    sent_at: SimTime,
}

/// Client-side exchange state machine (not itself a node).
#[derive(Debug, Default)]
pub struct NtpExchanger {
    pending: HashMap<Ipv4Addr, PendingExchange>,
}

impl NtpExchanger {
    /// Creates an exchanger with no outstanding queries.
    pub fn new() -> Self {
        NtpExchanger::default()
    }

    /// Number of outstanding queries.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Sends a mode-3 request to `server`, reading T1 from `clock`.
    pub fn query(
        &mut self,
        ctx: &mut Context<'_>,
        stack: &mut IpStack,
        clock: &LocalClock,
        server: Ipv4Addr,
    ) {
        let t1 = NtpTimestamp::from_sim(clock.read(ctx.now()));
        self.pending.insert(
            server,
            PendingExchange {
                t1_clock: t1,
                sent_at: ctx.now(),
            },
        );
        let req = NtpPacket::client_request(t1);
        let me = stack.addr();
        stack.send_udp(
            ctx,
            me,
            NTP_CLIENT_PORT,
            server,
            NTP_PORT,
            Bytes::from(req.encode().to_vec()),
        );
    }

    /// Offers a received datagram; returns a sample if it answers one of our
    /// requests.
    ///
    /// Validation: source must have a pending exchange, ports must match,
    /// mode must be Server, and the originate timestamp must equal our T1.
    pub fn handle(
        &mut self,
        now: SimTime,
        clock: &LocalClock,
        src: Ipv4Addr,
        datagram: &UdpDatagram,
    ) -> Option<PeerSample> {
        if datagram.src_port != NTP_PORT || datagram.dst_port != NTP_CLIENT_PORT {
            return None;
        }
        let pending = *self.pending.get(&src)?;
        let reply = NtpPacket::decode(&datagram.payload).ok()?;
        if reply.mode != Mode::Server {
            return None;
        }
        if reply.originate_ts != pending.t1_clock {
            return None; // Not an answer to our question (or a blind spoof).
        }
        self.pending.remove(&src);
        let t1 = pending.t1_clock;
        let t2 = reply.receive_ts;
        let t3 = reply.transmit_ts;
        let t4 = NtpTimestamp::from_sim(clock.read(now));
        let offset_ns = (t2.diff_nanos(t1) + t3.diff_nanos(t4)) / 2;
        let delay_ns = (t4.diff_nanos(t1) - t3.diff_nanos(t2)).max(0);
        let elapsed_ns = t4.diff_nanos(t1).max(0);
        let dispersion_ns = 1_000 + (elapsed_ns as f64 * DISPERSION_PPM / 1e6) as i64;
        Some(PeerSample {
            server: src,
            offset_ns,
            delay_ns,
            dispersion_ns,
        })
    }

    /// Drops exchanges sent before `cutoff`; returns the servers affected.
    pub fn expire_older_than(&mut self, cutoff: SimTime) -> Vec<Ipv4Addr> {
        let stale: Vec<Ipv4Addr> = self
            .pending
            .iter()
            .filter(|(_, p)| p.sent_at < cutoff)
            .map(|(a, _)| *a)
            .collect();
        for a in &stale {
            self.pending.remove(a);
        }
        stale
    }

    /// Clears all outstanding exchanges.
    pub fn clear(&mut self) {
        self.pending.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::NtpServer;
    use netsim::node::{Node, NodeHarness};
    use netsim::time::SimDuration;

    fn a(o: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 32, 0, o)
    }

    /// Drives a query/response cycle through a real server with `latency`
    /// each way and a `server_shift` on the server clock.
    fn exchange(
        server_shift_ns: i64,
        client_clock: &LocalClock,
        latency: SimDuration,
    ) -> PeerSample {
        let mut h = NodeHarness::new(9);
        let mut stack = IpStack::new(a(50));
        let mut exchanger = NtpExchanger::new();
        let mut server = NtpServer::new(a(1), LocalClock::new(server_shift_ns, 0.0));

        h.set_now(SimTime::from_secs(100));
        h.with_ctx(|ctx| exchanger.query(ctx, &mut stack, client_clock, a(1)));
        let request = h.take_sent().remove(0);

        h.advance(latency);
        h.with_ctx(|ctx| server.on_packet(ctx, request));
        let reply = h.take_sent().remove(0);

        h.advance(latency);
        let now = h.now();
        let dgram = UdpDatagram::decode(reply.src, reply.dst, &reply.payload, true).unwrap();
        exchanger
            .handle(now, client_clock, reply.src, &dgram)
            .expect("sample")
    }

    #[test]
    fn symmetric_path_measures_true_offset() {
        let client = LocalClock::perfect();
        let s = exchange(0, &client, SimDuration::from_millis(20));
        assert!(s.offset_ns.abs() < 100_000, "offset {} ~ 0", s.offset_ns);
        let delay_err = (s.delay_ns - 40_000_000).abs();
        assert!(delay_err < 200_000, "delay {} ~ 40ms", s.delay_ns);
    }

    #[test]
    fn shifted_server_produces_shifted_offset() {
        let client = LocalClock::perfect();
        let s = exchange(500_000_000, &client, SimDuration::from_millis(20));
        assert!(
            (s.offset_ns - 500_000_000).abs() < 100_000,
            "offset {} ~ +500ms",
            s.offset_ns
        );
    }

    #[test]
    fn client_clock_error_appears_negated() {
        // Client running +100ms fast sees an honest server as -100ms.
        let client = LocalClock::new(100_000_000, 0.0);
        let s = exchange(0, &client, SimDuration::from_millis(20));
        assert!(
            (s.offset_ns + 100_000_000).abs() < 100_000,
            "offset {} ~ -100ms",
            s.offset_ns
        );
    }

    #[test]
    fn reply_with_wrong_originate_rejected() {
        let mut h = NodeHarness::new(3);
        let clock = LocalClock::perfect();
        let mut stack = IpStack::new(a(50));
        let mut exchanger = NtpExchanger::new();
        h.set_now(SimTime::from_secs(5));
        h.with_ctx(|ctx| exchanger.query(ctx, &mut stack, &clock, a(1)));
        let _ = h.take_sent();

        // Forged reply with a guessed (wrong) originate timestamp.
        let mut forged = NtpPacket::client_request(NtpTimestamp::from_bits(12345));
        forged.mode = Mode::Server;
        let dgram = UdpDatagram::new(
            NTP_PORT,
            NTP_CLIENT_PORT,
            Bytes::from(forged.encode().to_vec()),
        );
        assert!(exchanger
            .handle(SimTime::from_secs(6), &clock, a(1), &dgram)
            .is_none());
        assert_eq!(exchanger.pending(), 1, "exchange still outstanding");
    }

    #[test]
    fn reply_from_unqueried_server_rejected() {
        let clock = LocalClock::perfect();
        let mut exchanger = NtpExchanger::new();
        let mut pkt = NtpPacket::client_request(NtpTimestamp::ZERO);
        pkt.mode = Mode::Server;
        let dgram = UdpDatagram::new(
            NTP_PORT,
            NTP_CLIENT_PORT,
            Bytes::from(pkt.encode().to_vec()),
        );
        assert!(exchanger
            .handle(SimTime::from_secs(1), &clock, a(7), &dgram)
            .is_none());
    }

    #[test]
    fn expiry_clears_stale_exchanges() {
        let mut h = NodeHarness::new(4);
        let clock = LocalClock::perfect();
        let mut stack = IpStack::new(a(50));
        let mut exchanger = NtpExchanger::new();
        h.with_ctx(|ctx| {
            exchanger.query(ctx, &mut stack, &clock, a(1));
            exchanger.query(ctx, &mut stack, &clock, a(2));
        });
        assert_eq!(exchanger.pending(), 2);
        let stale = exchanger.expire_older_than(SimTime::from_secs(10));
        assert_eq!(stale.len(), 2);
        assert_eq!(exchanger.pending(), 0);
    }

    #[test]
    fn dispersion_grows_with_elapsed_time() {
        let client = LocalClock::perfect();
        let short = exchange(0, &client, SimDuration::from_millis(5));
        let long = exchange(0, &client, SimDuration::from_millis(200));
        assert!(long.dispersion_ns > short.dispersion_ns);
    }
}
