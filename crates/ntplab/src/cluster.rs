//! The ntpd cluster algorithm (RFC 5905 §11.2.2, simplified).
//!
//! After the intersection algorithm picks the truechimers, clustering prunes
//! statistical outliers: repeatedly discard the survivor whose offset is
//! most distant from the others (largest "selection jitter") until either
//! the minimum survivor count is reached or the worst selection jitter is
//! no longer larger than the best peer jitter.

use crate::select::PeerSample;

/// ntpd's default minimum cluster survivors (NMIN).
pub const MIN_CLUSTER_SURVIVORS: usize = 3;

/// Selection jitter of survivor `i`: RMS distance of its offset from the
/// offsets of all other survivors.
pub fn selection_jitter(samples: &[PeerSample], i: usize) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let xi = samples[i].offset_ns as f64;
    let sum: f64 = samples
        .iter()
        .enumerate()
        .filter(|(j, _)| *j != i)
        .map(|(_, s)| {
            let d = xi - s.offset_ns as f64;
            d * d
        })
        .sum();
    (sum / (samples.len() - 1) as f64).sqrt()
}

/// Peer jitter proxy: the sample's own uncertainty (root distance).
fn peer_jitter(s: &PeerSample) -> f64 {
    s.root_distance() as f64
}

/// Runs the cluster algorithm, returning the surviving samples in input
/// order.
pub fn cluster(mut samples: Vec<PeerSample>, min_survivors: usize) -> Vec<PeerSample> {
    while samples.len() > min_survivors.max(1) {
        let (worst_idx, worst_jitter) = match (0..samples.len())
            .map(|i| (i, selection_jitter(&samples, i)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
        {
            Some(x) => x,
            None => break,
        };
        let best_peer_jitter = samples
            .iter()
            .map(peer_jitter)
            .min_by(f64::total_cmp)
            .unwrap_or(0.0);
        // Stop when pruning no longer helps: the spread between survivors
        // is already within measurement noise.
        if worst_jitter <= best_peer_jitter {
            break;
        }
        samples.remove(worst_idx);
    }
    samples
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn sample(offset_ms: i64, delay_ms: i64) -> PeerSample {
        PeerSample {
            server: Ipv4Addr::new(10, 0, 0, 1),
            offset_ns: offset_ms * 1_000_000,
            delay_ns: delay_ms * 1_000_000,
            dispersion_ns: 0,
        }
    }

    #[test]
    fn tight_cluster_is_untouched() {
        let samples = vec![sample(0, 20), sample(1, 20), sample(-1, 20), sample(2, 20)];
        let out = cluster(samples.clone(), MIN_CLUSTER_SURVIVORS);
        assert_eq!(out.len(), 4, "spread ~1ms << peer jitter 10ms");
    }

    #[test]
    fn outlier_is_pruned() {
        let samples = vec![
            sample(0, 20),
            sample(1, 20),
            sample(-1, 20),
            sample(80, 20), // way outside measurement noise
        ];
        let out = cluster(samples, MIN_CLUSTER_SURVIVORS);
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|s| s.offset_ns.abs() < 10_000_000));
    }

    #[test]
    fn never_prunes_below_minimum() {
        let samples = vec![sample(0, 1), sample(100, 1), sample(500, 1)];
        let out = cluster(samples, 3);
        assert_eq!(out.len(), 3, "already at NMIN");
    }

    #[test]
    fn min_of_one_keeps_something() {
        let samples = vec![sample(0, 1), sample(1000, 1)];
        let out = cluster(samples, 1);
        assert!(!out.is_empty());
    }

    #[test]
    fn empty_and_single_inputs() {
        assert!(cluster(Vec::new(), 3).is_empty());
        let one = vec![sample(5, 10)];
        assert_eq!(cluster(one.clone(), 3), one);
    }

    #[test]
    fn selection_jitter_of_centre_is_lowest() {
        let samples = vec![sample(-10, 1), sample(0, 1), sample(10, 1)];
        let j_centre = selection_jitter(&samples, 1);
        let j_edge = selection_jitter(&samples, 0);
        assert!(j_centre < j_edge);
    }

    #[test]
    fn repeated_pruning_handles_two_outliers() {
        let samples = vec![
            sample(0, 20),
            sample(1, 20),
            sample(-2, 20),
            sample(2, 20),
            sample(90, 20),
            sample(-95, 20),
        ];
        let out = cluster(samples, MIN_CLUSTER_SURVIVORS);
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|s| s.offset_ns.abs() < 10_000_000));
    }
}
