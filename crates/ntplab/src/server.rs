//! NTP server node: answers mode-3 requests from its local clock.
//!
//! Honest servers run a near-perfect [`LocalClock`]; malicious ones are
//! given a clock with the attacker's chosen shift — an NTP server has no way
//! to prove its time is *true*, which is the root of the whole problem.

use crate::clock::LocalClock;
use crate::packet::{LeapIndicator, Mode, NtpPacket, NTP_PORT};
use crate::timestamp::{NtpShort, NtpTimestamp};
use bytes::Bytes;
use netsim::ip::Ipv4Packet;
use netsim::node::{Context, Node};
use netsim::stack::{IpStack, StackEvent};
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::net::Ipv4Addr;

/// Counters describing server activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NtpServerStats {
    /// Mode-3 requests served.
    pub requests: u64,
    /// Packets ignored (wrong port/mode/parse failure).
    pub ignored: u64,
}

/// An NTP server attached to the simulated network.
///
/// One node may own many addresses (`with_addrs`), which is how a malicious
/// "server farm" of 89 addresses is hosted cheaply.
#[derive(Debug)]
pub struct NtpServer {
    stack: IpStack,
    clock: LocalClock,
    /// Snapshot restored by [`Node::reset`] (world-reuse support).
    initial_clock: LocalClock,
    stratum: u8,
    reference_id: u32,
    stats: NtpServerStats,
}

impl NtpServer {
    /// Creates a stratum-2 server at `addr` with the given clock.
    pub fn new(addr: Ipv4Addr, clock: LocalClock) -> Self {
        NtpServer::with_addrs(vec![addr], clock)
    }

    /// Creates a server answering on all of `addrs` from one clock.
    ///
    /// # Panics
    ///
    /// Panics if `addrs` is empty.
    pub fn with_addrs(addrs: Vec<Ipv4Addr>, clock: LocalClock) -> Self {
        let reference_id = u32::from(addrs[0]);
        NtpServer {
            stack: IpStack::with_config(addrs, netsim::stack::StackConfig::default()),
            initial_clock: clock.clone(),
            clock,
            stratum: 2,
            reference_id,
            stats: NtpServerStats::default(),
        }
    }

    /// Overrides the advertised stratum. Returns `self` for chaining.
    pub fn with_stratum(mut self, stratum: u8) -> Self {
        self.stratum = stratum;
        self
    }

    /// The server's primary address.
    pub fn addr(&self) -> Ipv4Addr {
        self.stack.addr()
    }

    /// The server's clock (e.g. to inspect or reconfigure its lie).
    pub fn clock(&self) -> &LocalClock {
        &self.clock
    }

    /// Mutable clock access.
    pub fn clock_mut(&mut self) -> &mut LocalClock {
        &mut self.clock
    }

    /// Replaces the clock (and the snapshot restored by [`Node::reset`]) —
    /// how scenario builders re-derive per-seed clock imperfections on a
    /// reused world.
    pub fn set_clock(&mut self, clock: LocalClock) {
        self.initial_clock = clock.clone();
        self.clock = clock;
    }

    /// Activity counters.
    pub fn stats(&self) -> NtpServerStats {
        self.stats
    }
}

impl Node for NtpServer {
    fn reset(&mut self) {
        self.stack.reset();
        self.clock = self.initial_clock.clone();
        self.stats = NtpServerStats::default();
    }

    fn on_packet(&mut self, ctx: &mut Context<'_>, pkt: Ipv4Packet) {
        let Some(StackEvent::Udp { src, dst, datagram }) = self.stack.handle(ctx, pkt) else {
            return;
        };
        if datagram.dst_port != NTP_PORT {
            self.stats.ignored += 1;
            return;
        }
        let Ok(request) = NtpPacket::decode(&datagram.payload) else {
            self.stats.ignored += 1;
            return;
        };
        if request.mode != Mode::Client {
            self.stats.ignored += 1;
            return;
        }
        self.stats.requests += 1;
        let t2 = self.clock.read(ctx.now());
        // Tiny processing delay between receive and transmit.
        let t3 = t2 + netsim::time::SimDuration::from_micros(5);
        let response = NtpPacket {
            leap: LeapIndicator::NoWarning,
            version: 4,
            mode: Mode::Server,
            stratum: self.stratum,
            poll: request.poll,
            precision: -23,
            root_delay: NtpShort::from_secs_f64(0.005),
            root_dispersion: NtpShort::from_secs_f64(0.001),
            reference_id: self.reference_id,
            reference_ts: NtpTimestamp::from_sim(t2),
            originate_ts: request.transmit_ts,
            receive_ts: NtpTimestamp::from_sim(t2),
            transmit_ts: NtpTimestamp::from_sim(t3),
        };
        self.stack.send_udp(
            ctx,
            dst,
            NTP_PORT,
            src,
            datagram.src_port,
            Bytes::from(response.encode().to_vec()),
        );
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::node::NodeHarness;
    use netsim::time::SimTime;
    use netsim::udp::UdpDatagram;

    fn a(o: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 32, 0, o)
    }

    fn request_packet(from: Ipv4Addr, to: Ipv4Addr, t1: NtpTimestamp) -> Ipv4Packet {
        let req = NtpPacket::client_request(t1);
        let dgram = UdpDatagram::new(4123, NTP_PORT, Bytes::from(req.encode().to_vec()));
        Ipv4Packet::new(from, to, netsim::ip::IpProto::Udp, dgram.encode(from, to))
    }

    fn serve_one(server: &mut NtpServer, at: SimTime, pkt: Ipv4Packet) -> Option<NtpPacket> {
        let mut h = NodeHarness::new(1);
        h.set_now(at);
        h.with_ctx(|ctx| server.on_packet(ctx, pkt));
        let sent = h.take_sent();
        let out = sent.first()?;
        let dgram = UdpDatagram::decode(out.src, out.dst, &out.payload, true).ok()?;
        NtpPacket::decode(&dgram.payload).ok()
    }

    #[test]
    fn honest_server_reports_true_time() {
        let mut server = NtpServer::new(a(1), LocalClock::perfect());
        let t1 = NtpTimestamp::from_sim(SimTime::from_secs(99));
        let now = SimTime::from_secs(100);
        let resp = serve_one(&mut server, now, request_packet(a(50), a(1), t1)).unwrap();
        assert_eq!(resp.mode, Mode::Server);
        assert_eq!(resp.originate_ts, t1, "T1 echoed");
        assert_eq!(resp.receive_ts.to_sim(), now);
        assert!(resp.transmit_ts >= resp.receive_ts);
        assert_eq!(server.stats().requests, 1);
    }

    #[test]
    fn shifted_server_lies_consistently() {
        // A malicious server with a +500 ms clock.
        let mut server = NtpServer::new(a(2), LocalClock::new(500_000_000, 0.0));
        let now = SimTime::from_secs(100);
        let t1 = NtpTimestamp::from_sim(SimTime::from_secs(100));
        let resp = serve_one(&mut server, now, request_packet(a(50), a(2), t1)).unwrap();
        let reported = resp.receive_ts.to_sim();
        assert_eq!(reported.signed_nanos_since(now), 500_000_000);
    }

    #[test]
    fn farm_answers_on_every_address() {
        let addrs: Vec<Ipv4Addr> = (1..=5).map(a).collect();
        let mut server = NtpServer::with_addrs(addrs.clone(), LocalClock::perfect());
        let now = SimTime::from_secs(10);
        for addr in addrs {
            let t1 = NtpTimestamp::from_sim(now);
            let resp = serve_one(&mut server, now, request_packet(a(50), addr, t1));
            assert!(resp.is_some(), "no answer on {addr}");
        }
        assert_eq!(server.stats().requests, 5);
    }

    #[test]
    fn non_client_modes_ignored() {
        let mut server = NtpServer::new(a(1), LocalClock::perfect());
        let mut pkt = NtpPacket::client_request(NtpTimestamp::ZERO);
        pkt.mode = Mode::Server;
        let dgram = UdpDatagram::new(4123, NTP_PORT, Bytes::from(pkt.encode().to_vec()));
        let ip = Ipv4Packet::new(
            a(50),
            a(1),
            netsim::ip::IpProto::Udp,
            dgram.encode(a(50), a(1)),
        );
        assert!(serve_one(&mut server, SimTime::from_secs(1), ip).is_none());
        assert_eq!(server.stats().ignored, 1);
    }

    #[test]
    fn wrong_port_ignored() {
        let mut server = NtpServer::new(a(1), LocalClock::perfect());
        let req = NtpPacket::client_request(NtpTimestamp::ZERO);
        let dgram = UdpDatagram::new(4123, 124, Bytes::from(req.encode().to_vec()));
        let ip = Ipv4Packet::new(
            a(50),
            a(1),
            netsim::ip::IpProto::Udp,
            dgram.encode(a(50), a(1)),
        );
        assert!(serve_one(&mut server, SimTime::from_secs(1), ip).is_none());
    }
}
