//! NTP timestamp formats (RFC 5905 §6).
//!
//! [`NtpTimestamp`] is the 64-bit era format: 32 bits of seconds since
//! 1900-01-01, 32 bits of binary fraction. [`NtpShort`] is the 32-bit
//! (16.16) format used for root delay and dispersion. The simulation epoch
//! (`SimTime::ZERO`) is pinned to 2020-01-01 00:00:00 in the NTP era.

use core::fmt;
use netsim::time::SimTime;
use serde::{Deserialize, Serialize};

/// NTP seconds at the simulation epoch (2020-01-01, incl. 29 leap days).
pub const SIM_EPOCH_NTP_SECS: u64 = 3_786_825_600;

/// Simulation times representable within the current NTP era: the 32-bit
/// seconds field rolls over in 2036, ~16.1 years past the 2020 epoch. The
/// longest experiments here span days; era handling (RFC 5905 §6) is out
/// of scope.
pub const MAX_ERA_SIM_SECS: u64 = u32::MAX as u64 - SIM_EPOCH_NTP_SECS;

/// A 64-bit NTP timestamp (seconds since 1900 + 32-bit fraction).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NtpTimestamp(u64);

impl NtpTimestamp {
    /// The zero timestamp, conventionally meaning "unset".
    pub const ZERO: NtpTimestamp = NtpTimestamp(0);

    /// Builds from raw 64-bit wire value.
    pub const fn from_bits(bits: u64) -> Self {
        NtpTimestamp(bits)
    }

    /// The raw 64-bit wire value.
    pub const fn to_bits(self) -> u64 {
        self.0
    }

    /// Whole seconds since the 1900 era.
    pub const fn seconds(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// The 32-bit binary fraction.
    pub const fn fraction(self) -> u32 {
        self.0 as u32
    }

    /// `true` for the conventional "unset" value.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Converts a simulation instant (a clock *reading*) to NTP format.
    pub fn from_sim(t: SimTime) -> Self {
        let secs = SIM_EPOCH_NTP_SECS + t.as_secs();
        let sub_ns = t.as_nanos() % 1_000_000_000;
        let frac = ((sub_ns as u128) << 32) / 1_000_000_000;
        NtpTimestamp((secs << 32) | frac as u64)
    }

    /// Converts back to the simulation time domain.
    ///
    /// Values before the simulation epoch saturate to [`SimTime::ZERO`].
    pub fn to_sim(self) -> SimTime {
        let secs = u64::from(self.seconds());
        if secs < SIM_EPOCH_NTP_SECS {
            return SimTime::ZERO;
        }
        let ns = ((u128::from(self.fraction())) * 1_000_000_000) >> 32;
        SimTime::from_nanos((secs - SIM_EPOCH_NTP_SECS) * 1_000_000_000 + ns as u64)
    }

    /// Signed difference `self - other` in nanoseconds.
    ///
    /// Truncates toward zero, so `a.diff_nanos(b) == -b.diff_nanos(a)`
    /// exactly (an arithmetic shift would floor and break antisymmetry by
    /// one nanosecond).
    pub fn diff_nanos(self, other: NtpTimestamp) -> i64 {
        let d = self.0 as i128 - other.0 as i128;
        let mag = (d.unsigned_abs() * 1_000_000_000) >> 32;
        let mag = mag.min(i64::MAX as u128) as i64;
        if d < 0 {
            -mag
        } else {
            mag
        }
    }
}

impl fmt::Display for NtpTimestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{:08x}", self.seconds(), self.fraction())
    }
}

/// A 32-bit NTP short (16.16 fixed point), for root delay/dispersion.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NtpShort(u32);

impl NtpShort {
    /// The zero value.
    pub const ZERO: NtpShort = NtpShort(0);

    /// Builds from the raw wire value.
    pub const fn from_bits(bits: u32) -> Self {
        NtpShort(bits)
    }

    /// The raw wire value.
    pub const fn to_bits(self) -> u32 {
        self.0
    }

    /// Converts from seconds (clamped to the representable range).
    pub fn from_secs_f64(secs: f64) -> Self {
        let clamped = secs.clamp(0.0, 65_535.999);
        NtpShort((clamped * 65_536.0).round() as u32)
    }

    /// The value in seconds.
    pub fn as_secs_f64(self) -> f64 {
        f64::from(self.0) / 65_536.0
    }

    /// Converts from nanoseconds.
    pub fn from_nanos(nanos: u64) -> Self {
        NtpShort::from_secs_f64(nanos as f64 / 1e9)
    }

    /// The value in nanoseconds.
    pub fn as_nanos(self) -> u64 {
        (self.as_secs_f64() * 1e9).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::time::SimDuration;

    #[test]
    fn sim_round_trip_is_nanosecond_accurate() {
        for t in [
            SimTime::ZERO,
            SimTime::from_millis(1),
            SimTime::from_secs(3600),
            SimTime::from_secs(86_400 * 2) + SimDuration::from_nanos(123_456_789),
        ] {
            let ntp = NtpTimestamp::from_sim(t);
            let back = ntp.to_sim();
            let err = back.signed_nanos_since(t).abs();
            assert!(err <= 1, "round trip error {err}ns at {t}");
        }
    }

    #[test]
    fn epoch_maps_to_2020() {
        let ntp = NtpTimestamp::from_sim(SimTime::ZERO);
        assert_eq!(u64::from(ntp.seconds()), SIM_EPOCH_NTP_SECS);
        assert_eq!(ntp.fraction(), 0);
    }

    #[test]
    fn pre_epoch_values_saturate() {
        let ntp = NtpTimestamp::from_bits(1u64 << 32);
        assert_eq!(ntp.to_sim(), SimTime::ZERO);
    }

    #[test]
    fn diff_nanos_signed() {
        let a = NtpTimestamp::from_sim(SimTime::from_secs(10));
        let b = NtpTimestamp::from_sim(SimTime::from_millis(10_500));
        assert_eq!(b.diff_nanos(a), 500_000_000);
        assert_eq!(a.diff_nanos(b), -500_000_000);
    }

    #[test]
    fn diff_nanos_subsecond_precision() {
        let a = NtpTimestamp::from_sim(SimTime::from_nanos(1_000));
        let b = NtpTimestamp::from_sim(SimTime::from_nanos(2_500));
        let d = b.diff_nanos(a);
        assert!((d - 1_500).abs() <= 1, "got {d}");
    }

    #[test]
    fn short_round_trip() {
        for secs in [0.0, 0.5, 1.0 / 65_536.0, 12.345, 1000.0] {
            let s = NtpShort::from_secs_f64(secs);
            assert!((s.as_secs_f64() - secs).abs() < 1.0 / 65_536.0);
        }
        assert_eq!(NtpShort::from_secs_f64(-5.0), NtpShort::ZERO);
    }

    #[test]
    fn short_nanos_round_trip() {
        let s = NtpShort::from_nanos(25_000_000); // 25 ms
        let back = s.as_nanos();
        assert!((back as i64 - 25_000_000i64).abs() < 20_000);
    }

    #[test]
    fn wire_bits_round_trip() {
        let t = NtpTimestamp::from_bits(0x0123_4567_89ab_cdef);
        assert_eq!(NtpTimestamp::from_bits(t.to_bits()), t);
        let s = NtpShort::from_bits(0xdead_beef);
        assert_eq!(NtpShort::from_bits(s.to_bits()), s);
    }

    #[test]
    fn display_is_informative() {
        let t = NtpTimestamp::from_bits((5u64 << 32) | 0xff);
        assert_eq!(t.to_string(), "5.000000ff");
    }
}
