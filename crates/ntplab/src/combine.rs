//! The ntpd combine algorithm (RFC 5905 §11.2.3, simplified) and the full
//! selection pipeline.
//!
//! Survivors of intersection + clustering are averaged with weights inverse
//! to their root distance, yielding the clock correction a plain NTP client
//! applies.

use crate::cluster::{cluster, MIN_CLUSTER_SURVIVORS};
use crate::select::{intersect, PeerSample};
use serde::{Deserialize, Serialize};

/// Combined clock estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Combined {
    /// Weighted mean offset in nanoseconds.
    pub offset_ns: i64,
    /// RMS spread of survivor offsets around the mean, in nanoseconds.
    pub jitter_ns: i64,
    /// Number of survivors combined.
    pub survivors: usize,
}

/// Weighted combination of survivor offsets (weights ∝ 1/root distance).
pub fn combine(samples: &[PeerSample]) -> Option<Combined> {
    if samples.is_empty() {
        return None;
    }
    let mut total_weight = 0.0f64;
    let mut acc = 0.0f64;
    for s in samples {
        let dist = (s.root_distance().max(1)) as f64;
        let w = 1.0 / dist;
        total_weight += w;
        acc += w * s.offset_ns as f64;
    }
    let mean = acc / total_weight;
    let var: f64 = samples
        .iter()
        .map(|s| {
            let d = s.offset_ns as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / samples.len() as f64;
    Some(Combined {
        offset_ns: mean.round() as i64,
        jitter_ns: var.sqrt().round() as i64,
        survivors: samples.len(),
    })
}

/// Outcome of the full ntpd pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PipelineOutcome {
    /// A correction was produced.
    Correction(Combined),
    /// No majority clique: the client leaves its clock alone.
    NoMajority,
    /// No samples at all.
    NoSamples,
}

/// The full plain-NTP decision: intersection → cluster → combine.
pub fn ntpd_pipeline(samples: &[PeerSample]) -> PipelineOutcome {
    if samples.is_empty() {
        return PipelineOutcome::NoSamples;
    }
    let Some(intersection) = intersect(samples) else {
        return PipelineOutcome::NoMajority;
    };
    let survivors: Vec<PeerSample> = intersection.survivors.iter().map(|&i| samples[i]).collect();
    let clustered = cluster(survivors, MIN_CLUSTER_SURVIVORS);
    match combine(&clustered) {
        Some(c) => PipelineOutcome::Correction(c),
        None => PipelineOutcome::NoMajority,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn sample(offset_ms: i64, delay_ms: i64) -> PeerSample {
        PeerSample {
            server: Ipv4Addr::new(10, 0, 0, 1),
            offset_ns: offset_ms * 1_000_000,
            delay_ns: delay_ms * 1_000_000,
            dispersion_ns: 0,
        }
    }

    #[test]
    fn combine_of_identical_samples_is_exact() {
        let c = combine(&[sample(5, 10), sample(5, 10)]).unwrap();
        assert_eq!(c.offset_ns, 5_000_000);
        assert_eq!(c.jitter_ns, 0);
        assert_eq!(c.survivors, 2);
    }

    #[test]
    fn combine_weights_low_delay_higher() {
        // offset 0 with tiny delay vs offset 10ms with huge delay: the
        // combined estimate leans strongly toward 0.
        let c = combine(&[sample(0, 2), sample(10, 200)]).unwrap();
        assert!(c.offset_ns < 2_000_000, "got {}", c.offset_ns);
    }

    #[test]
    fn combine_empty_is_none() {
        assert!(combine(&[]).is_none());
    }

    #[test]
    fn pipeline_happy_path() {
        let samples = vec![sample(1, 20), sample(0, 20), sample(-1, 20), sample(2, 20)];
        match ntpd_pipeline(&samples) {
            PipelineOutcome::Correction(c) => {
                assert!(c.offset_ns.abs() < 2_000_000);
                assert_eq!(c.survivors, 4);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pipeline_excludes_minority_liar() {
        let samples = vec![
            sample(0, 20),
            sample(1, 20),
            sample(-1, 20),
            sample(400, 20),
        ];
        match ntpd_pipeline(&samples) {
            PipelineOutcome::Correction(c) => {
                assert!(c.offset_ns.abs() < 2_000_000, "liar ignored");
                assert!(c.survivors <= 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pipeline_follows_majority_liars() {
        // The attack case: 4-of-4 servers lying consistently by +500ms.
        let samples = vec![
            sample(500, 20),
            sample(501, 20),
            sample(499, 20),
            sample(500, 20),
        ];
        match ntpd_pipeline(&samples) {
            PipelineOutcome::Correction(c) => {
                assert!((c.offset_ns - 500_000_000).abs() < 2_000_000);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pipeline_refuses_split_brain() {
        let samples = vec![
            sample(0, 10),
            sample(1, 10),
            sample(500, 10),
            sample(501, 10),
        ];
        assert_eq!(ntpd_pipeline(&samples), PipelineOutcome::NoMajority);
    }

    #[test]
    fn pipeline_no_samples() {
        assert_eq!(ntpd_pipeline(&[]), PipelineOutcome::NoSamples);
    }
}
