//! The ntpd selection (intersection) algorithm — Marzullo's algorithm as
//! adapted in RFC 5905 A.5.5.1.
//!
//! Given offset/delay samples from several servers, find the largest clique
//! of "truechimers" whose correctness intervals intersect, tolerating up to
//! `⌈n/2⌉ - 1` falsetickers. This is the baseline NTP defence the paper's
//! plain-NTP client uses — and the one Chronos replaces.

use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// One server's measurement, the input to selection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeerSample {
    /// The server that produced the sample.
    pub server: Ipv4Addr,
    /// Clock offset θ (server − client) in nanoseconds.
    pub offset_ns: i64,
    /// Round-trip delay δ in nanoseconds.
    pub delay_ns: i64,
    /// Dispersion ε in nanoseconds (measurement uncertainty).
    pub dispersion_ns: i64,
}

impl PeerSample {
    /// Root distance: δ/2 + ε — the radius of the correctness interval.
    pub fn root_distance(&self) -> i64 {
        self.delay_ns / 2 + self.dispersion_ns
    }

    /// The correctness interval `[offset − λ, offset + λ]`.
    pub fn interval(&self) -> (i64, i64) {
        let lambda = self.root_distance();
        (self.offset_ns - lambda, self.offset_ns + lambda)
    }
}

/// Result of the intersection algorithm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Intersection {
    /// The agreed interval `[low, high]` (nanoseconds of offset).
    pub low: i64,
    /// Upper bound of the agreed interval.
    pub high: i64,
    /// Indices (into the input) of the surviving truechimers.
    pub survivors: Vec<usize>,
    /// How many falsetickers were tolerated to find the clique.
    pub falsetickers: usize,
}

/// Runs the intersection algorithm over `samples`.
///
/// Returns `None` when no majority clique exists (fewer than
/// `n - ⌊(n-1)/2⌋` intervals share a point), in which case an ntpd client
/// refuses to update its clock.
pub fn intersect(samples: &[PeerSample]) -> Option<Intersection> {
    let m = samples.len();
    if m == 0 {
        return None;
    }
    #[derive(Clone, Copy, PartialEq, Eq)]
    enum Kind {
        Low,
        Mid,
        High,
    }
    let mut edges: Vec<(i64, Kind)> = Vec::with_capacity(m * 3);
    for s in samples {
        let (lo, hi) = s.interval();
        edges.push((lo, Kind::Low));
        edges.push((s.offset_ns, Kind::Mid));
        edges.push((hi, Kind::High));
    }
    // Sort by value; at equal values process Low before Mid before High so
    // touching intervals count as overlapping.
    edges.sort_by_key(|&(v, k)| {
        (
            v,
            match k {
                Kind::Low => 0,
                Kind::Mid => 1,
                Kind::High => 2,
            },
        )
    });

    for allow in 0..m.div_ceil(2) {
        let needed = (m - allow) as i64;
        // Lower edge: ascending scan.
        let mut count = 0i64;
        let mut low = None;
        for &(v, kind) in &edges {
            match kind {
                Kind::Low => {
                    count += 1;
                    if count >= needed {
                        low = Some(v);
                        break;
                    }
                }
                Kind::High => count -= 1,
                Kind::Mid => {}
            }
        }
        // Upper edge: descending scan.
        let mut count = 0i64;
        let mut high = None;
        for &(v, kind) in edges.iter().rev() {
            match kind {
                Kind::High => {
                    count += 1;
                    if count >= needed {
                        high = Some(v);
                        break;
                    }
                }
                Kind::Low => count -= 1,
                Kind::Mid => {}
            }
        }
        let (Some(low), Some(high)) = (low, high) else {
            continue;
        };
        if low > high {
            continue;
        }
        // ntpd also requires that no more than `allow` midpoints fall
        // outside the candidate interval.
        let outside_mids = samples
            .iter()
            .filter(|s| s.offset_ns < low || s.offset_ns > high)
            .count();
        if outside_mids > allow {
            continue;
        }
        let survivors: Vec<usize> = samples
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                let (slo, shi) = s.interval();
                shi >= low && slo <= high
            })
            .map(|(i, _)| i)
            .collect();
        return Some(Intersection {
            low,
            high,
            survivors,
            falsetickers: allow,
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(offset_ms: i64, half_width_ms: i64) -> PeerSample {
        PeerSample {
            server: Ipv4Addr::new(10, 0, 0, 1),
            offset_ns: offset_ms * 1_000_000,
            delay_ns: half_width_ms * 2 * 1_000_000,
            dispersion_ns: 0,
        }
    }

    #[test]
    fn identical_intervals_all_survive() {
        let samples = vec![sample(0, 10); 4];
        let r = intersect(&samples).unwrap();
        assert_eq!(r.survivors.len(), 4);
        assert_eq!(r.falsetickers, 0);
        assert!(r.low <= 0 && r.high >= 0);
    }

    #[test]
    fn single_sample_survives() {
        let r = intersect(&[sample(5, 10)]).unwrap();
        assert_eq!(r.survivors, vec![0]);
        assert_eq!(r.low, -5_000_000);
        assert_eq!(r.high, 15_000_000);
    }

    #[test]
    fn empty_input_yields_none() {
        assert!(intersect(&[]).is_none());
    }

    #[test]
    fn one_falseticker_among_four_is_excluded() {
        let samples = vec![
            sample(0, 10),
            sample(2, 10),
            sample(-1, 10),
            sample(500, 10), // liar, far away
        ];
        let r = intersect(&samples).unwrap();
        assert_eq!(r.falsetickers, 1);
        assert_eq!(r.survivors, vec![0, 1, 2]);
    }

    #[test]
    fn marzullo_with_ntpd_midpoint_rule() {
        // Textbook Marzullo on [8,12], [11,13], [10,12] yields [11,12], but
        // that interval excludes the first sample's midpoint (10). ntpd's
        // extra rule (no more than `allow` midpoints outside) widens to the
        // allow=1 solution [10,12] — all three still survive.
        let samples = vec![
            sample(10, 2), // [8, 12]
            sample(12, 1), // [11, 13]
            sample(11, 1), // [10, 12]
        ];
        let r = intersect(&samples).unwrap();
        assert_eq!(r.low, 10_000_000);
        assert_eq!(r.high, 12_000_000);
        assert_eq!(r.falsetickers, 1);
        assert_eq!(r.survivors.len(), 3);
    }

    #[test]
    fn split_brain_half_and_half_fails() {
        // Two at 0, two at 500ms, disjoint: no majority clique of 3.
        let samples = vec![
            sample(0, 10),
            sample(1, 10),
            sample(500, 10),
            sample(501, 10),
        ];
        let r = intersect(&samples);
        // With allow=1, needed=3: neither side reaches 3 overlaps.
        assert!(r.is_none(), "got {r:?}");
    }

    #[test]
    fn majority_liars_capture_the_interval() {
        // The plain-NTP failure mode the paper exploits: when the attacker
        // controls a majority (3 of 4), selection happily follows the lie.
        let samples = vec![
            sample(0, 10),   // honest
            sample(500, 10), // liars agreeing with each other
            sample(501, 10),
            sample(499, 10),
        ];
        let r = intersect(&samples).unwrap();
        assert_eq!(r.falsetickers, 1);
        assert_eq!(r.survivors, vec![1, 2, 3]);
        assert!(r.low >= 489_000_000, "interval is around the lie");
    }

    #[test]
    fn touching_intervals_rejected_by_midpoint_rule() {
        // [-5,5] and [5,15] share only the point 5, which contains neither
        // midpoint — ntpd deems the pair unusable.
        let samples = vec![sample(0, 5), sample(10, 5)];
        assert!(intersect(&samples).is_none());
        // Overlapping intervals containing both midpoints pass.
        let samples = vec![sample(0, 8), sample(4, 8)]; // [-8,8] and [-4,12]
        let r = intersect(&samples).unwrap();
        assert_eq!(r.low, -4_000_000);
        assert_eq!(r.high, 8_000_000);
        assert_eq!(r.survivors.len(), 2);
    }

    #[test]
    fn wide_honest_interval_still_contains_truth() {
        // Honest servers with varying uncertainty all contain 0.
        let samples = vec![sample(3, 30), sample(-4, 20), sample(1, 8), sample(0, 5)];
        let r = intersect(&samples).unwrap();
        assert!(r.low <= 0 && r.high >= 0);
        assert_eq!(r.survivors.len(), 4);
    }

    #[test]
    fn two_against_one() {
        let samples = vec![sample(0, 5), sample(1, 5), sample(100, 5)];
        let r = intersect(&samples).unwrap();
        assert_eq!(r.survivors, vec![0, 1]);
        assert_eq!(r.falsetickers, 1);
    }
}
