//! The NTPv4 packet format (RFC 5905 §7.3): a genuine 48-byte codec.

use crate::timestamp::{NtpShort, NtpTimestamp};
use core::fmt;
use serde::{Deserialize, Serialize};
use std::error::Error;

/// The well-known NTP port.
pub const NTP_PORT: u16 = 123;

/// Length of the base NTP packet (no extensions / MAC).
pub const NTP_PACKET_LEN: usize = 48;

/// Leap indicator field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LeapIndicator {
    /// No warning.
    NoWarning,
    /// Last minute of the day has 61 seconds.
    LastMinute61,
    /// Last minute of the day has 59 seconds.
    LastMinute59,
    /// Clock unsynchronised.
    Unsynchronized,
}

impl LeapIndicator {
    fn bits(self) -> u8 {
        match self {
            LeapIndicator::NoWarning => 0,
            LeapIndicator::LastMinute61 => 1,
            LeapIndicator::LastMinute59 => 2,
            LeapIndicator::Unsynchronized => 3,
        }
    }

    fn from_bits(b: u8) -> Self {
        match b & 0x3 {
            0 => LeapIndicator::NoWarning,
            1 => LeapIndicator::LastMinute61,
            2 => LeapIndicator::LastMinute59,
            _ => LeapIndicator::Unsynchronized,
        }
    }
}

/// Protocol mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mode {
    /// Symmetric active (1).
    SymmetricActive,
    /// Symmetric passive (2).
    SymmetricPassive,
    /// Client request (3).
    Client,
    /// Server response (4).
    Server,
    /// Broadcast (5).
    Broadcast,
    /// Other mode value.
    Other(u8),
}

impl Mode {
    fn bits(self) -> u8 {
        match self {
            Mode::SymmetricActive => 1,
            Mode::SymmetricPassive => 2,
            Mode::Client => 3,
            Mode::Server => 4,
            Mode::Broadcast => 5,
            Mode::Other(b) => b & 0x7,
        }
    }

    fn from_bits(b: u8) -> Self {
        match b & 0x7 {
            1 => Mode::SymmetricActive,
            2 => Mode::SymmetricPassive,
            3 => Mode::Client,
            4 => Mode::Server,
            5 => Mode::Broadcast,
            other => Mode::Other(other),
        }
    }
}

/// An NTPv4 packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NtpPacket {
    /// Leap indicator.
    pub leap: LeapIndicator,
    /// Protocol version (4).
    pub version: u8,
    /// Protocol mode.
    pub mode: Mode,
    /// Stratum (1 = primary, 16 = unsynchronised).
    pub stratum: u8,
    /// log2 of the poll interval in seconds.
    pub poll: i8,
    /// log2 of the clock precision in seconds.
    pub precision: i8,
    /// Total round-trip delay to the reference clock.
    pub root_delay: NtpShort,
    /// Total dispersion to the reference clock.
    pub root_dispersion: NtpShort,
    /// Reference identifier.
    pub reference_id: u32,
    /// When the system clock was last set.
    pub reference_ts: NtpTimestamp,
    /// T1 as echoed by the server (originate).
    pub originate_ts: NtpTimestamp,
    /// T2: server receive time.
    pub receive_ts: NtpTimestamp,
    /// T3: server transmit time.
    pub transmit_ts: NtpTimestamp,
}

/// Errors from [`NtpPacket::decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NtpPacketError {
    /// Fewer than 48 bytes of input.
    Truncated,
    /// Version outside 1..=4.
    BadVersion {
        /// The version seen.
        version: u8,
    },
}

impl fmt::Display for NtpPacketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NtpPacketError::Truncated => write!(f, "ntp packet shorter than 48 bytes"),
            NtpPacketError::BadVersion { version } => {
                write!(f, "unsupported ntp version {version}")
            }
        }
    }
}

impl Error for NtpPacketError {}

impl NtpPacket {
    /// A client (mode 3) request with `transmit_ts` = T1.
    pub fn client_request(t1: NtpTimestamp) -> Self {
        NtpPacket {
            leap: LeapIndicator::NoWarning,
            version: 4,
            mode: Mode::Client,
            stratum: 0,
            poll: 6,
            precision: -20,
            root_delay: NtpShort::ZERO,
            root_dispersion: NtpShort::ZERO,
            reference_id: 0,
            reference_ts: NtpTimestamp::ZERO,
            originate_ts: NtpTimestamp::ZERO,
            receive_ts: NtpTimestamp::ZERO,
            transmit_ts: t1,
        }
    }

    /// Serialises to the 48-byte wire format.
    pub fn encode(&self) -> [u8; NTP_PACKET_LEN] {
        let mut out = [0u8; NTP_PACKET_LEN];
        out[0] = (self.leap.bits() << 6) | ((self.version & 0x7) << 3) | self.mode.bits();
        out[1] = self.stratum;
        out[2] = self.poll as u8;
        out[3] = self.precision as u8;
        out[4..8].copy_from_slice(&self.root_delay.to_bits().to_be_bytes());
        out[8..12].copy_from_slice(&self.root_dispersion.to_bits().to_be_bytes());
        out[12..16].copy_from_slice(&self.reference_id.to_be_bytes());
        out[16..24].copy_from_slice(&self.reference_ts.to_bits().to_be_bytes());
        out[24..32].copy_from_slice(&self.originate_ts.to_bits().to_be_bytes());
        out[32..40].copy_from_slice(&self.receive_ts.to_bits().to_be_bytes());
        out[40..48].copy_from_slice(&self.transmit_ts.to_bits().to_be_bytes());
        out
    }

    /// Parses a packet (extra trailing bytes are ignored, as real
    /// implementations do for extensions they don't understand).
    ///
    /// # Errors
    ///
    /// [`NtpPacketError::Truncated`] for short input,
    /// [`NtpPacketError::BadVersion`] for versions outside 1..=4.
    pub fn decode(bytes: &[u8]) -> Result<NtpPacket, NtpPacketError> {
        if bytes.len() < NTP_PACKET_LEN {
            return Err(NtpPacketError::Truncated);
        }
        let version = (bytes[0] >> 3) & 0x7;
        if !(1..=4).contains(&version) {
            return Err(NtpPacketError::BadVersion { version });
        }
        let u32_at = |i: usize| u32::from_be_bytes(bytes[i..i + 4].try_into().expect("4 bytes"));
        let u64_at = |i: usize| u64::from_be_bytes(bytes[i..i + 8].try_into().expect("8 bytes"));
        Ok(NtpPacket {
            leap: LeapIndicator::from_bits(bytes[0] >> 6),
            version,
            mode: Mode::from_bits(bytes[0]),
            stratum: bytes[1],
            poll: bytes[2] as i8,
            precision: bytes[3] as i8,
            root_delay: NtpShort::from_bits(u32_at(4)),
            root_dispersion: NtpShort::from_bits(u32_at(8)),
            reference_id: u32_at(12),
            reference_ts: NtpTimestamp::from_bits(u64_at(16)),
            originate_ts: NtpTimestamp::from_bits(u64_at(24)),
            receive_ts: NtpTimestamp::from_bits(u64_at(32)),
            transmit_ts: NtpTimestamp::from_bits(u64_at(40)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::time::SimTime;

    fn sample() -> NtpPacket {
        NtpPacket {
            leap: LeapIndicator::NoWarning,
            version: 4,
            mode: Mode::Server,
            stratum: 2,
            poll: 6,
            precision: -23,
            root_delay: NtpShort::from_secs_f64(0.015),
            root_dispersion: NtpShort::from_secs_f64(0.002),
            reference_id: 0x0A20_0001,
            reference_ts: NtpTimestamp::from_sim(SimTime::from_secs(100)),
            originate_ts: NtpTimestamp::from_sim(SimTime::from_secs(200)),
            receive_ts: NtpTimestamp::from_sim(SimTime::from_millis(200_020)),
            transmit_ts: NtpTimestamp::from_sim(SimTime::from_millis(200_021)),
        }
    }

    #[test]
    fn round_trip() {
        let pkt = sample();
        let wire = pkt.encode();
        assert_eq!(wire.len(), 48);
        assert_eq!(NtpPacket::decode(&wire).unwrap(), pkt);
    }

    #[test]
    fn client_request_shape() {
        let t1 = NtpTimestamp::from_sim(SimTime::from_secs(5));
        let req = NtpPacket::client_request(t1);
        assert_eq!(req.mode, Mode::Client);
        assert_eq!(req.version, 4);
        assert_eq!(req.transmit_ts, t1);
        let back = NtpPacket::decode(&req.encode()).unwrap();
        assert_eq!(back.mode, Mode::Client);
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(
            NtpPacket::decode(&[0u8; 47]),
            Err(NtpPacketError::Truncated)
        );
    }

    #[test]
    fn bad_version_rejected() {
        let mut wire = sample().encode();
        wire[0] = (wire[0] & !0x38) | (7 << 3);
        assert_eq!(
            NtpPacket::decode(&wire),
            Err(NtpPacketError::BadVersion { version: 7 })
        );
        wire[0] &= !0x38; // version 0
        assert_eq!(
            NtpPacket::decode(&wire),
            Err(NtpPacketError::BadVersion { version: 0 })
        );
    }

    #[test]
    fn trailing_bytes_ignored() {
        let pkt = sample();
        let mut wire = pkt.encode().to_vec();
        wire.extend_from_slice(&[0xde, 0xad]);
        assert_eq!(NtpPacket::decode(&wire).unwrap(), pkt);
    }

    #[test]
    fn all_modes_round_trip() {
        for mode in [
            Mode::SymmetricActive,
            Mode::SymmetricPassive,
            Mode::Client,
            Mode::Server,
            Mode::Broadcast,
        ] {
            let mut pkt = sample();
            pkt.mode = mode;
            assert_eq!(NtpPacket::decode(&pkt.encode()).unwrap().mode, mode);
        }
    }

    #[test]
    fn all_leap_indicators_round_trip() {
        for leap in [
            LeapIndicator::NoWarning,
            LeapIndicator::LastMinute61,
            LeapIndicator::LastMinute59,
            LeapIndicator::Unsynchronized,
        ] {
            let mut pkt = sample();
            pkt.leap = leap;
            assert_eq!(NtpPacket::decode(&pkt.encode()).unwrap().leap, leap);
        }
    }

    #[test]
    fn negative_poll_and_precision_survive() {
        let mut pkt = sample();
        pkt.poll = -6;
        pkt.precision = -29;
        let back = NtpPacket::decode(&pkt.encode()).unwrap();
        assert_eq!(back.poll, -6);
        assert_eq!(back.precision, -29);
    }
}
