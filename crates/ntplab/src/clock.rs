//! Host clock model: offset + frequency error against simulated true time.
//!
//! Every host reads time from a [`LocalClock`]; the simulator's own clock is
//! the ground truth the experiments measure *shift* against. A clock has a
//! constant frequency error (drift, in parts per million) and an offset that
//! synchronisation protocols correct by stepping or slewing.

use netsim::time::SimTime;
use serde::{Deserialize, Serialize};

/// ntpd's default step threshold: offsets beyond this are stepped, not
/// slewed (128 ms).
pub const STEP_THRESHOLD_NS: i64 = 128_000_000;

/// A drifting local clock.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LocalClock {
    /// Offset (clock − true) in nanoseconds at `rebased_at`.
    offset_ns: i64,
    /// Frequency error in parts per million (positive = running fast).
    drift_ppm: f64,
    /// True time at which `offset_ns` was last rebased.
    rebased_at: SimTime,
    /// Cumulative corrections applied, for inspection.
    steps: u64,
    slews: u64,
}

impl LocalClock {
    /// A perfect clock (zero offset, zero drift).
    pub fn perfect() -> Self {
        LocalClock::new(0, 0.0)
    }

    /// Creates a clock with an initial offset (ns) and drift (ppm).
    pub fn new(offset_ns: i64, drift_ppm: f64) -> Self {
        LocalClock {
            offset_ns,
            drift_ppm,
            rebased_at: SimTime::ZERO,
            steps: 0,
            slews: 0,
        }
    }

    /// The configured frequency error in ppm.
    pub fn drift_ppm(&self) -> f64 {
        self.drift_ppm
    }

    /// Sets the frequency error.
    pub fn set_drift_ppm(&mut self, ppm: f64) {
        // Rebase so past drift stays accrued.
        let current = self.offset_from_true(self.rebased_at);
        self.offset_ns = current;
        self.drift_ppm = ppm;
    }

    /// Current offset (clock − true) in nanoseconds at true time `now`.
    pub fn offset_from_true(&self, now: SimTime) -> i64 {
        let elapsed_ns = now.signed_nanos_since(self.rebased_at);
        self.offset_ns + (elapsed_ns as f64 * self.drift_ppm / 1e6) as i64
    }

    /// Reads the clock at true time `now`.
    ///
    /// Readings before the simulation epoch saturate to zero.
    pub fn read(&self, now: SimTime) -> SimTime {
        now.offset_by_nanos(self.offset_from_true(now))
    }

    /// Applies a correction of `delta_ns` to the clock (positive moves the
    /// clock forward). Counts as a step or a slew depending on magnitude.
    pub fn apply_correction(&mut self, now: SimTime, delta_ns: i64) {
        let current = self.offset_from_true(now);
        self.offset_ns = current + delta_ns;
        self.rebased_at = now;
        if delta_ns.abs() > STEP_THRESHOLD_NS {
            self.steps += 1;
        } else {
            self.slews += 1;
        }
    }

    /// Sets the absolute offset (used by scenario builders).
    pub fn set_offset_ns(&mut self, now: SimTime, offset_ns: i64) {
        self.offset_ns = offset_ns;
        self.rebased_at = now;
    }

    /// Number of step corrections applied.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Number of slew corrections applied.
    pub fn slews(&self) -> u64 {
        self.slews
    }

    /// Dumps the complete clock state as plain words, for exact
    /// serialization: `(offset_ns, drift_ppm bits, rebased_at ns, steps,
    /// slews)`. The drift is exported via [`f64::to_bits`] so a
    /// round-trip through [`LocalClock::from_raw`] is bit-exact.
    ///
    /// # Examples
    ///
    /// ```
    /// use ntplab::clock::LocalClock;
    /// use netsim::time::SimTime;
    ///
    /// let mut clock = LocalClock::new(42_000, 12.5);
    /// clock.apply_correction(SimTime::from_secs(10), -42_000);
    /// let restored = LocalClock::from_raw(clock.to_raw());
    /// assert_eq!(
    ///     restored.offset_from_true(SimTime::from_secs(20)),
    ///     clock.offset_from_true(SimTime::from_secs(20)),
    /// );
    /// assert_eq!(restored.slews(), clock.slews());
    /// ```
    pub fn to_raw(&self) -> (i64, u64, u64, u64, u64) {
        (
            self.offset_ns,
            self.drift_ppm.to_bits(),
            self.rebased_at.as_nanos(),
            self.steps,
            self.slews,
        )
    }

    /// Rebuilds a clock from [`LocalClock::to_raw`] output, bit-exact.
    pub fn from_raw(
        (offset_ns, drift_bits, rebased_ns, steps, slews): (i64, u64, u64, u64, u64),
    ) -> Self {
        LocalClock {
            offset_ns,
            drift_ppm: f64::from_bits(drift_bits),
            rebased_at: SimTime::from_nanos(rebased_ns),
            steps,
            slews,
        }
    }
}

impl Default for LocalClock {
    fn default() -> Self {
        LocalClock::perfect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::time::SimDuration;

    #[test]
    fn perfect_clock_reads_true_time() {
        let clock = LocalClock::perfect();
        let t = SimTime::from_secs(1234);
        assert_eq!(clock.read(t), t);
        assert_eq!(clock.offset_from_true(t), 0);
    }

    #[test]
    fn constant_offset_is_stable() {
        let clock = LocalClock::new(50_000_000, 0.0); // +50 ms
        let t = SimTime::from_secs(100);
        assert_eq!(clock.offset_from_true(t), 50_000_000);
        assert_eq!(clock.read(t), t.offset_by_nanos(50_000_000));
    }

    #[test]
    fn drift_accrues_linearly() {
        let clock = LocalClock::new(0, 10.0); // 10 ppm fast
        let hour = SimTime::from_secs(3600);
        // 10 ppm over 3600 s = 36 ms.
        assert_eq!(clock.offset_from_true(hour), 36_000_000);
        let day = SimTime::from_secs(86_400);
        assert_eq!(clock.offset_from_true(day), 864_000_000);
    }

    #[test]
    fn negative_drift_runs_slow() {
        let clock = LocalClock::new(0, -5.0);
        let t = SimTime::from_secs(7200);
        assert_eq!(clock.offset_from_true(t), -36_000_000);
        assert!(clock.read(t) < t);
    }

    #[test]
    fn corrections_rebase_offset() {
        let mut clock = LocalClock::new(100_000_000, 0.0);
        let t1 = SimTime::from_secs(10);
        clock.apply_correction(t1, -100_000_000); // perfect correction
        assert_eq!(clock.offset_from_true(t1), 0);
        assert_eq!(clock.steps(), 0);
        assert_eq!(clock.slews(), 1);
        // A big (attack-sized) correction counts as a step.
        clock.apply_correction(SimTime::from_secs(20), 500_000_000);
        assert_eq!(clock.steps(), 1);
        assert_eq!(clock.offset_from_true(SimTime::from_secs(20)), 500_000_000);
    }

    #[test]
    fn correction_with_drift_keeps_accruing() {
        let mut clock = LocalClock::new(0, 10.0);
        let t1 = SimTime::from_secs(3600);
        clock.apply_correction(t1, -clock.offset_from_true(t1));
        assert_eq!(clock.offset_from_true(t1), 0);
        // One more hour of drift accrues from the rebased point.
        assert_eq!(
            clock.offset_from_true(t1 + SimDuration::from_hours(1)),
            36_000_000
        );
    }

    #[test]
    fn set_drift_preserves_accrued_offset() {
        let mut clock = LocalClock::new(0, 10.0);
        // Manually advance the rebase point.
        clock.set_offset_ns(
            SimTime::from_secs(3600),
            clock.offset_from_true(SimTime::from_secs(3600)),
        );
        clock.set_drift_ppm(0.0);
        assert_eq!(
            clock.offset_from_true(SimTime::from_secs(7200)),
            36_000_000,
            "accrued 36ms stays, no further drift"
        );
    }

    #[test]
    fn read_saturates_before_epoch() {
        let clock = LocalClock::new(-5_000_000_000, 0.0);
        assert_eq!(clock.read(SimTime::from_secs(1)), SimTime::ZERO);
    }
}
