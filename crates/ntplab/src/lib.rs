//! # ntplab — the NTP substrate
//!
//! A faithful-enough NTPv4 on top of [`netsim`]:
//!
//! * [`packet`] — the real 48-byte RFC 5905 wire format;
//! * [`timestamp`] — 64-bit era timestamps and 16.16 shorts;
//! * [`clock`] — drifting local clocks measured against simulated true time;
//! * [`server`] — servers that answer from their (honest or lying) clock;
//! * [`assoc`] — the four-timestamp offset/delay measurement;
//! * [`select`] / [`cluster`] / [`combine`] — the classic ntpd pipeline
//!   (Marzullo intersection, cluster pruning, weighted combine);
//! * [`plain`] — the traditional 4-server NTP client the paper uses as its
//!   baseline victim.
//!
//! Chronos (the hardened client this workspace attacks) lives in the
//! `chronos` crate and reuses everything here except the selection pipeline.
//!
//! *(Workspace map: see `ARCHITECTURE.md` at the repo root — crate-by-crate
//! architecture, the data-flow diagram, and the determinism contract.)*

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod assoc;
pub mod clock;
pub mod cluster;
pub mod combine;
pub mod packet;
pub mod plain;
pub mod select;
pub mod server;
pub mod timestamp;

/// Convenient glob-import of the commonly used types.
pub mod prelude {
    pub use crate::assoc::{NtpExchanger, NTP_CLIENT_PORT};
    pub use crate::clock::LocalClock;
    pub use crate::combine::{combine, ntpd_pipeline, Combined, PipelineOutcome};
    pub use crate::packet::{Mode, NtpPacket, NTP_PORT};
    pub use crate::plain::{PlainNtpClient, PlainNtpConfig};
    pub use crate::select::{intersect, PeerSample};
    pub use crate::server::NtpServer;
    pub use crate::timestamp::{NtpShort, NtpTimestamp};
}
