//! Property tests: NTP timestamps and the selection pipeline's safety
//! properties.

use netsim::time::SimTime;
use ntplab::packet::NtpPacket;
use ntplab::select::{intersect, PeerSample};
use ntplab::timestamp::{NtpShort, NtpTimestamp};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn sample(offset_ms: i64, half_width_ms: i64) -> PeerSample {
    PeerSample {
        server: Ipv4Addr::new(10, 0, 0, 1),
        offset_ns: offset_ms * 1_000_000,
        delay_ns: half_width_ms.max(1) * 2 * 1_000_000,
        dispersion_ns: 0,
    }
}

proptest! {
    /// NTP timestamp conversion is nanosecond-accurate within the era
    /// (the 32-bit seconds field rolls over in 2036, 16.1 years past the
    /// 2020 simulation epoch).
    #[test]
    fn timestamp_round_trip(
        nanos in 0u64..(ntplab::timestamp::MAX_ERA_SIM_SECS * 1_000_000_000),
    ) {
        let t = SimTime::from_nanos(nanos);
        let back = NtpTimestamp::from_sim(t).to_sim();
        prop_assert!(back.signed_nanos_since(t).abs() <= 1);
    }

    /// Signed differences are antisymmetric and consistent with ordering.
    #[test]
    fn timestamp_diff_antisymmetric(a in 0u64..u32::MAX as u64, b in 0u64..u32::MAX as u64) {
        let ta = NtpTimestamp::from_sim(SimTime::from_millis(a));
        let tb = NtpTimestamp::from_sim(SimTime::from_millis(b));
        prop_assert_eq!(ta.diff_nanos(tb), -tb.diff_nanos(ta));
        if a > b {
            prop_assert!(ta.diff_nanos(tb) > 0);
        }
    }

    /// Short-format conversion error stays below one unit (2^-16 s).
    #[test]
    fn short_conversion_bounded_error(micros in 0u64..60_000_000) {
        let secs = micros as f64 / 1e6;
        let s = NtpShort::from_secs_f64(secs);
        prop_assert!((s.as_secs_f64() - secs).abs() < 1.0 / 65_536.0);
    }

    /// Packet round-trip for arbitrary field values.
    #[test]
    fn packet_round_trip(
        stratum in any::<u8>(),
        poll in any::<i8>(),
        precision in any::<i8>(),
        refid in any::<u32>(),
        bits in any::<[u64; 4]>(),
    ) {
        let pkt = NtpPacket {
            stratum,
            poll,
            precision,
            reference_id: refid,
            reference_ts: NtpTimestamp::from_bits(bits[0]),
            originate_ts: NtpTimestamp::from_bits(bits[1]),
            receive_ts: NtpTimestamp::from_bits(bits[2]),
            transmit_ts: NtpTimestamp::from_bits(bits[3]),
            ..NtpPacket::client_request(NtpTimestamp::ZERO)
        };
        prop_assert_eq!(NtpPacket::decode(&pkt.encode()).unwrap(), pkt);
    }

    /// Intersection safety: with every interval containing the true offset
    /// (honest majority of honest-only inputs), the result interval
    /// contains it too.
    #[test]
    fn intersection_contains_truth_for_honest_inputs(
        offsets in proptest::collection::vec(-5i64..5, 3..12),
        widths in proptest::collection::vec(6i64..40, 3..12),
    ) {
        let n = offsets.len().min(widths.len());
        let samples: Vec<PeerSample> = (0..n)
            .map(|i| sample(offsets[i], widths[i]))
            .collect();
        // every interval [off-w, off+w] contains 0 since |off| < 5 < 6 <= w
        let r = intersect(&samples).expect("honest inputs must intersect");
        prop_assert!(r.low <= 0 && 0 <= r.high, "[{}, {}]", r.low, r.high);
        prop_assert_eq!(r.survivors.len(), n);
    }

    /// Byzantine safety: fewer than n/2 liars, however placed, cannot pull
    /// the agreed interval away from zero by more than an honest width.
    #[test]
    fn intersection_bounded_by_honest_width(
        liar_offset in 200i64..100_000,
        liar_count in 1usize..3,
        honest_count in 4usize..8,
    ) {
        let mut samples: Vec<PeerSample> = (0..honest_count)
            .map(|i| sample((i as i64 % 5) - 2, 10))
            .collect();
        for _ in 0..liar_count.min((honest_count - 1) / 2) {
            samples.push(sample(liar_offset, 10));
        }
        if let Some(r) = intersect(&samples) {
            // The interval must stay anchored to the honest cluster.
            prop_assert!(r.low.abs() <= 13_000_000, "low {}", r.low);
        }
    }
}
