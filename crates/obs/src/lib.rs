//! `obs` — the *chronoscope*: a std-only, allocation-light metrics and
//! structured-logging core shared by the fleet engine, `chronosd` and the
//! bench harness.
//!
//! The container this workspace builds in has no network access, so like
//! everything under `crates/compat/` this crate depends on nothing but
//! `std`. It provides four small pieces:
//!
//! * [`Counter`] / [`Gauge`] — lock-free atomic instruments; a handle is
//!   an `Arc` clone, recording is a single relaxed atomic op.
//! * [`TimeHistogram`] — a log-binned wall-time histogram over
//!   1 µs … 1000 s, reusing the `fleet::stats::OffsetHistogram` edge
//!   construction (`10^(3 + d + b/bpd)` ns) so bin layouts read the same
//!   across the whole repo.
//! * [`Registry`] — a label-ordered instrument registry with
//!   point-in-time [`Registry::snapshot`]s and a Prometheus text
//!   exposition renderer ([`expo::render`]) plus a parser/validator
//!   ([`expo::parse`]) used by `chronosctl metrics` and CI.
//! * [`Logger`] — a leveled, monotonic-stamped structured (logfmt)
//!   logger that replaces `chronosd`'s silent failure paths.
//!
//! Everything here is wall-clock only: nothing in this crate touches
//! simulation state or RNG streams, which is what lets the fleet engine
//! attach instrumentation and stay byte-identical with metrics on or off
//! (proptest-proven in `crates/fleet/tests/prop_metrics_determinism.rs`).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod expo;
pub mod log;
pub mod metrics;
pub mod registry;

pub use crate::log::{Level, Logger};
pub use crate::metrics::{Counter, Gauge, HistogramSnapshot, TimeHistogram};
pub use crate::registry::{MetricSnapshot, MetricValue, Registry};
