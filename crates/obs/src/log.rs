//! A leveled, monotonic-stamped structured logger.
//!
//! Lines are logfmt-shaped — `ts=12.345678 level=info target=chronosd
//! msg="accepted connection" peer=3` — with the timestamp measured in
//! seconds since the logger was created on the monotonic clock
//! ([`std::time::Instant`]): log output never depends on (or perturbs)
//! simulation time, and two runs of the same binary differ only in the
//! wall-clock stamps.

use std::fmt;
use std::io::Write;
use std::sync::Mutex;
use std::time::Instant;

/// Log severity, most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or dropped work.
    Error,
    /// Degraded but continuing (e.g. a client connection died mid-write).
    Warn,
    /// Lifecycle events: jobs submitted, slices published, shutdown.
    Info,
    /// Per-request chatter.
    Debug,
}

impl Level {
    /// The lowercase name used in rendered lines and env configuration.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// Parses a level name (case-insensitive); `off` and unknown names
    /// return `None` (meaning: log nothing / use the default).
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }
}

/// A structured logger writing logfmt lines to a shared sink.
pub struct Logger {
    start: Instant,
    min: Level,
    sink: Mutex<Box<dyn Write + Send>>,
}

impl fmt::Debug for Logger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Logger").field("min", &self.min).finish()
    }
}

/// Quotes a field value when it contains logfmt-hostile characters.
fn render_value(value: &str, out: &mut String) {
    let needs_quoting = value.is_empty()
        || value
            .chars()
            .any(|c| c.is_whitespace() || c == '"' || c == '=' || c == '\\');
    if !needs_quoting {
        out.push_str(value);
        return;
    }
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out.push('"');
}

impl Logger {
    /// A logger writing to stderr at the given minimum level.
    pub fn stderr(min: Level) -> Logger {
        Logger::to_sink(min, Box::new(std::io::stderr()))
    }

    /// A logger writing to an arbitrary sink (used by tests to capture
    /// output).
    pub fn to_sink(min: Level, sink: Box<dyn Write + Send>) -> Logger {
        Logger {
            start: Instant::now(),
            min,
            sink: Mutex::new(sink),
        }
    }

    /// Whether `level` would be emitted.
    pub fn enabled(&self, level: Level) -> bool {
        level <= self.min
    }

    /// Emits one structured line; `fields` are appended as `key=value`
    /// pairs after the message.
    pub fn log(&self, level: Level, target: &str, msg: &str, fields: &[(&str, &dyn fmt::Display)]) {
        if !self.enabled(level) {
            return;
        }
        let ts = self.start.elapsed().as_secs_f64();
        let mut line = format!("ts={ts:.6} level={} target={target} msg=", level.as_str());
        render_value(msg, &mut line);
        for (key, value) in fields {
            line.push(' ');
            line.push_str(key);
            line.push('=');
            render_value(&value.to_string(), &mut line);
        }
        line.push('\n');
        let mut sink = self.sink.lock().expect("log sink poisoned");
        // A dead sink must never take the daemon down with it.
        let _ = sink.write_all(line.as_bytes());
        let _ = sink.flush();
    }

    /// [`Level::Error`] shorthand.
    pub fn error(&self, target: &str, msg: &str, fields: &[(&str, &dyn fmt::Display)]) {
        self.log(Level::Error, target, msg, fields);
    }

    /// [`Level::Warn`] shorthand.
    pub fn warn(&self, target: &str, msg: &str, fields: &[(&str, &dyn fmt::Display)]) {
        self.log(Level::Warn, target, msg, fields);
    }

    /// [`Level::Info`] shorthand.
    pub fn info(&self, target: &str, msg: &str, fields: &[(&str, &dyn fmt::Display)]) {
        self.log(Level::Info, target, msg, fields);
    }

    /// [`Level::Debug`] shorthand.
    pub fn debug(&self, target: &str, msg: &str, fields: &[(&str, &dyn fmt::Display)]) {
        self.log(Level::Debug, target, msg, fields);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A sink tests can read back.
    #[derive(Clone, Default)]
    struct Capture(Arc<Mutex<Vec<u8>>>);

    impl Write for Capture {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn captured(min: Level) -> (Logger, Capture) {
        let capture = Capture::default();
        (Logger::to_sink(min, Box::new(capture.clone())), capture)
    }

    #[test]
    fn lines_carry_monotonic_stamp_level_and_fields() {
        let (log, out) = captured(Level::Info);
        log.info(
            "daemon",
            "job submitted",
            &[("job", &"smoke"), ("kind", &"e16-fleet")],
        );
        let text = String::from_utf8(out.0.lock().unwrap().clone()).unwrap();
        assert!(text.starts_with("ts="), "got {text:?}");
        assert!(text.contains(" level=info target=daemon msg=\"job submitted\""));
        assert!(text.ends_with("job=smoke kind=e16-fleet\n"));
        let ts: f64 = text[3..text.find(' ').unwrap()].parse().unwrap();
        assert!(ts >= 0.0);
    }

    #[test]
    fn level_filter_suppresses_lower_severities() {
        let (log, out) = captured(Level::Warn);
        assert!(log.enabled(Level::Error) && !log.enabled(Level::Info));
        log.info("x", "dropped", &[]);
        log.debug("x", "dropped", &[]);
        log.error("x", "kept", &[]);
        let text = String::from_utf8(out.0.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("level=error"));
    }

    #[test]
    fn hostile_values_are_quoted_and_escaped() {
        let (log, out) = captured(Level::Debug);
        log.debug(
            "x",
            "has \"quotes\" and\nnewline",
            &[("k", &"a b=c"), ("empty", &"")],
        );
        let text = String::from_utf8(out.0.lock().unwrap().clone()).unwrap();
        assert!(text.contains("msg=\"has \\\"quotes\\\" and\\nnewline\""));
        assert!(text.contains("k=\"a b=c\""));
        assert!(text.contains("empty=\"\""));
    }

    #[test]
    fn level_parse_round_trips() {
        for level in [Level::Error, Level::Warn, Level::Info, Level::Debug] {
            assert_eq!(Level::parse(level.as_str()), Some(level));
        }
        assert_eq!(Level::parse("off"), None);
        assert_eq!(Level::parse("WARNING"), Some(Level::Warn));
    }
}
