//! Prometheus text exposition: rendering [`MetricSnapshot`]s and a small
//! parser/validator used by `chronosctl metrics` and the CI socket smoke.
//!
//! The renderer emits one `# HELP` / `# TYPE` pair per family followed by
//! its samples. Histograms render cumulative `_bucket{le="…"}` lines
//! (empty bins are skipped — cumulative values stay monotonic, which the
//! format allows — and the `+Inf` bucket is always present), then `_sum`
//! (seconds) and `_count`.

use crate::registry::{MetricSnapshot, MetricValue};
use std::fmt::Write as _;

/// Escapes a HELP string (`\` and newline).
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value (`\`, `"` and newline).
fn escape_label_value(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Formats a label set as `{k="v",…}`, with an optional extra pair
/// appended (used for `le`); empty input with no extra renders as "".
fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{}\"", escape_label_value(v)));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// Renders snapshots (already sorted by the registry) as Prometheus text
/// exposition.
pub fn render(snapshots: &[MetricSnapshot]) -> String {
    let mut out = String::new();
    let mut last_family: Option<&str> = None;
    for snap in snapshots {
        if last_family != Some(snap.name.as_str()) {
            let kind = match snap.value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram(_) => "histogram",
            };
            let _ = writeln!(out, "# HELP {} {}", snap.name, escape_help(&snap.help));
            let _ = writeln!(out, "# TYPE {} {kind}", snap.name);
            last_family = Some(snap.name.as_str());
        }
        match &snap.value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "{}{} {v}", snap.name, label_block(&snap.labels, None));
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "{}{} {v}", snap.name, label_block(&snap.labels, None));
            }
            MetricValue::Histogram(h) => {
                let mut cumulative = 0u64;
                for (i, &count) in h.counts.iter().enumerate() {
                    cumulative += count;
                    if count == 0 {
                        continue;
                    }
                    let Some(&edge_ns) = h.edges_ns.get(i) else {
                        break; // the overflow bin is covered by +Inf below
                    };
                    let le = format!("{}", edge_ns as f64 / 1e9);
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {cumulative}",
                        snap.name,
                        label_block(&snap.labels, Some(("le", &le)))
                    );
                }
                let _ = writeln!(
                    out,
                    "{}_bucket{} {}",
                    snap.name,
                    label_block(&snap.labels, Some(("le", "+Inf"))),
                    h.total
                );
                let _ = writeln!(
                    out,
                    "{}_sum{} {}",
                    snap.name,
                    label_block(&snap.labels, None),
                    h.sum_ns as f64 / 1e9
                );
                let _ = writeln!(
                    out,
                    "{}_count{} {}",
                    snap.name,
                    label_block(&snap.labels, None),
                    h.total
                );
            }
        }
    }
    out
}

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Sample name (including any `_bucket`/`_sum`/`_count` suffix).
    pub name: String,
    /// Label pairs in source order.
    pub labels: Vec<(String, String)>,
    /// The sample value (`+Inf` parses as [`f64::INFINITY`]).
    pub value: f64,
}

/// A parse failure: the offending 1-based line number and a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

fn is_name_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == ':'
}

fn is_name_char(c: char) -> bool {
    is_name_start(c) || c.is_ascii_digit()
}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

fn parse_value(s: &str) -> Option<f64> {
    match s {
        "+Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        other => other.parse().ok(),
    }
}

fn parse_sample(line: &str, lineno: usize) -> Result<Sample, ParseError> {
    let mut chars = line.char_indices().peekable();
    let name_end = loop {
        match chars.peek() {
            Some(&(i, c)) if !is_name_char(c) => break i,
            Some(_) => {
                chars.next();
            }
            None => break line.len(),
        }
    };
    if name_end == 0 || !line.starts_with(is_name_start) {
        return Err(err(lineno, "sample must start with a metric name"));
    }
    let name = line[..name_end].to_string();
    let mut rest = &line[name_end..];
    let mut labels = Vec::new();
    if let Some(stripped) = rest.strip_prefix('{') {
        let mut cursor = 0usize;
        loop {
            let tail = &stripped[cursor..];
            if let Some(after) = tail.strip_prefix('}') {
                rest = after;
                break;
            }
            // key
            let key_len = tail.chars().take_while(|&c| is_name_char(c)).count();
            if key_len == 0 {
                return Err(err(lineno, "expected a label name"));
            }
            let key: String = tail.chars().take(key_len).collect();
            let tail = &tail[key_len..];
            let Some(tail) = tail.strip_prefix("=\"") else {
                return Err(err(lineno, format!("label {key:?} must be =\"…\"-quoted")));
            };
            // quoted value with escapes
            let mut value = String::new();
            let mut consumed = 0usize;
            let mut escaped = false;
            let mut closed = false;
            for c in tail.chars() {
                consumed += c.len_utf8();
                if escaped {
                    match c {
                        '\\' => value.push('\\'),
                        '"' => value.push('"'),
                        'n' => value.push('\n'),
                        other => return Err(err(lineno, format!("bad escape \\{other}"))),
                    }
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    closed = true;
                    break;
                } else {
                    value.push(c);
                }
            }
            if !closed {
                return Err(err(lineno, format!("unterminated value for label {key:?}")));
            }
            labels.push((key, value));
            let tail = &tail[consumed..];
            cursor = stripped.len() - tail.len();
            if let Some(after_comma) = stripped[cursor..].strip_prefix(',') {
                cursor = stripped.len() - after_comma.len();
            }
        }
    }
    let value_str = rest.trim();
    if value_str.is_empty() {
        return Err(err(lineno, "sample has no value"));
    }
    // A timestamp suffix (second whitespace-separated field) is allowed by
    // the format; we accept and ignore it.
    let mut fields = value_str.split_ascii_whitespace();
    let value_field = fields.next().unwrap();
    let value = parse_value(value_field)
        .ok_or_else(|| err(lineno, format!("bad value {value_field:?}")))?;
    if let Some(ts) = fields.next() {
        if ts.parse::<i64>().is_err() {
            return Err(err(lineno, format!("bad timestamp {ts:?}")));
        }
    }
    if fields.next().is_some() {
        return Err(err(lineno, "trailing garbage after sample"));
    }
    Ok(Sample {
        name,
        labels,
        value,
    })
}

/// Parses (and thereby validates) a text exposition. Returns every sample
/// line; `# HELP` / `# TYPE` / comment lines are syntax-checked and
/// skipped; blank lines are ignored.
pub fn parse(text: &str) -> Result<Vec<Sample>, ParseError> {
    let mut samples = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            for (kw, arity) in [("HELP", 2), ("TYPE", 2)] {
                if let Some(rest) = comment.strip_prefix(kw) {
                    let mut fields = rest.split_ascii_whitespace();
                    let name = fields
                        .next()
                        .ok_or_else(|| err(lineno, format!("# {kw} needs a metric name")))?;
                    if !name.starts_with(is_name_start) || !name.chars().all(is_name_char) {
                        return Err(err(lineno, format!("bad metric name {name:?}")));
                    }
                    if kw == "TYPE" {
                        let ty = fields
                            .next()
                            .ok_or_else(|| err(lineno, "# TYPE needs a type"))?;
                        if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&ty) {
                            return Err(err(lineno, format!("unknown type {ty:?}")));
                        }
                    }
                    let _ = arity;
                }
            }
            continue;
        }
        samples.push(parse_sample(line, lineno)?);
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn render_counter_and_gauge_families() {
        let r = Registry::new();
        r.counter("hits_total", "Total hits.", &[("job", "a")])
            .add(3);
        r.counter("hits_total", "Total hits.", &[("job", "b")])
            .add(5);
        r.gauge("depth", "Queue depth.", &[]).set(1.5);
        let text = r.render_prometheus();
        let expected = "\
# HELP depth Queue depth.
# TYPE depth gauge
depth 1.5
# HELP hits_total Total hits.
# TYPE hits_total counter
hits_total{job=\"a\"} 3
hits_total{job=\"b\"} 5
";
        assert_eq!(text, expected);
    }

    #[test]
    fn render_escapes_help_and_label_values() {
        let r = Registry::new();
        r.counter("c_total", "line1\nline2 \\ slash", &[("p", "a\"b\\c\nd")])
            .inc();
        let text = r.render_prometheus();
        assert!(text.contains("# HELP c_total line1\\nline2 \\\\ slash"));
        assert!(text.contains("c_total{p=\"a\\\"b\\\\c\\nd\"} 1"));
        // And the parser round-trips the escaped label value.
        let samples = parse(&text).unwrap();
        assert_eq!(samples[0].labels[0].1, "a\"b\\c\nd");
    }

    #[test]
    fn render_histogram_buckets_are_cumulative_with_inf_sum_count() {
        let r = Registry::new();
        let h = r.histogram("op_seconds", "Op wall time.", &[("job", "x")], 1);
        h.record_ns(5_000); // 5 µs → first decade bin (le = 1e-5)
        h.record_ns(5_000);
        h.record_ns(50_000); // 50 µs → next bin (le = 1e-4)
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE op_seconds histogram"));
        assert!(text.contains("op_seconds_bucket{job=\"x\",le=\"0.00001\"} 2"));
        assert!(text.contains("op_seconds_bucket{job=\"x\",le=\"0.0001\"} 3"));
        assert!(text.contains("op_seconds_bucket{job=\"x\",le=\"+Inf\"} 3"));
        assert!(text.contains("op_seconds_sum{job=\"x\"} 0.00006"));
        assert!(text.contains("op_seconds_count{job=\"x\"} 3"));
        // Empty bins are skipped: only the two occupied edges render.
        assert_eq!(text.matches("op_seconds_bucket").count(), 3);
        parse(&text).expect("histogram exposition must parse");
    }

    #[test]
    fn parse_accepts_inf_and_rejects_garbage() {
        assert_eq!(parse("up 1\nx_bucket{le=\"+Inf\"} 3\n").unwrap().len(), 2);
        assert_eq!(parse("x{le=\"+Inf\"} 3").unwrap()[0].labels[0].1, "+Inf");
        assert!(parse("1bad 3").is_err());
        assert!(parse("x{unquoted=3} 1").is_err());
        assert!(parse("x nope").is_err());
        assert!(parse("# TYPE x rainbow").is_err());
        assert!(parse("x{k=\"unterminated} 1").is_err());
    }
}
