//! A label-ordered instrument registry with point-in-time snapshots.
//!
//! Registration returns shared handles ([`std::sync::Arc`]); recording
//! through a handle never touches the registry lock, which is only taken
//! at registration and snapshot time. Registering the same
//! `(name, labels)` pair twice returns the *existing* handle, so
//! registration is idempotent and callers can re-derive a handle instead
//! of threading it through.

use crate::metrics::{Counter, Gauge, HistogramSnapshot, TimeHistogram};
use std::fmt;
use std::sync::{Arc, Mutex};

/// One registered instrument behind its shared handle.
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<TimeHistogram>),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    instrument: Instrument,
}

/// The registry: a flat, mutex-guarded list of entries. Lookups are
/// linear — registries here hold tens of instruments, not thousands.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.entries.lock().map(|e| e.len()).unwrap_or(0);
        f.debug_struct("Registry").field("entries", &n).finish()
    }
}

/// A point-in-time reading of one instrument.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Metric family name (e.g. `chronosd_connections_total`).
    pub name: String,
    /// Human-readable help string.
    pub help: String,
    /// Label pairs, sorted by key at registration time.
    pub labels: Vec<(String, String)>,
    /// The instrument's value at snapshot time.
    pub value: MetricValue,
}

/// The value half of a [`MetricSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotonic counter reading.
    Counter(u64),
    /// A gauge reading.
    Gauge(f64),
    /// A histogram reading (edges, bin counts, sum, total).
    Histogram(HistogramSnapshot),
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn sorted_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
        let mut sorted: Vec<(String, String)> = labels
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect();
        sorted.sort();
        sorted
    }

    fn register<T, F, G>(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: F,
        extract: G,
    ) -> Arc<T>
    where
        F: FnOnce() -> Instrument,
        G: Fn(&Instrument) -> Option<Arc<T>>,
    {
        let labels = Self::sorted_labels(labels);
        let mut entries = self.entries.lock().expect("registry lock poisoned");
        if let Some(entry) = entries
            .iter()
            .find(|e| e.name == name && e.labels == labels)
        {
            return extract(&entry.instrument).unwrap_or_else(|| {
                panic!(
                    "metric {name:?} already registered as a {}",
                    entry.instrument.kind()
                )
            });
        }
        let instrument = make();
        let handle = extract(&instrument).expect("constructor matches extractor");
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            instrument,
        });
        handle
    }

    /// Registers (or re-derives) a counter.
    ///
    /// # Panics
    ///
    /// Panics if `(name, labels)` is already registered as another kind.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.register(
            name,
            help,
            labels,
            || Instrument::Counter(Arc::new(Counter::new())),
            |i| match i {
                Instrument::Counter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// Registers (or re-derives) a gauge.
    ///
    /// # Panics
    ///
    /// Panics if `(name, labels)` is already registered as another kind.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.register(
            name,
            help,
            labels,
            || Instrument::Gauge(Arc::new(Gauge::new())),
            |i| match i {
                Instrument::Gauge(g) => Some(g.clone()),
                _ => None,
            },
        )
    }

    /// Registers (or re-derives) a log-binned wall-time histogram with
    /// `bins_per_decade` bins per decade (see
    /// [`TimeHistogram::log_scale`]).
    ///
    /// # Panics
    ///
    /// Panics if `(name, labels)` is already registered as another kind.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bins_per_decade: usize,
    ) -> Arc<TimeHistogram> {
        self.register(
            name,
            help,
            labels,
            || Instrument::Histogram(Arc::new(TimeHistogram::log_scale(bins_per_decade))),
            |i| match i {
                Instrument::Histogram(h) => Some(h.clone()),
                _ => None,
            },
        )
    }

    /// Takes a point-in-time snapshot of every instrument, sorted by
    /// `(name, labels)` so renderings are stable regardless of
    /// registration order.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let entries = self.entries.lock().expect("registry lock poisoned");
        let mut snaps: Vec<MetricSnapshot> = entries
            .iter()
            .map(|e| MetricSnapshot {
                name: e.name.clone(),
                help: e.help.clone(),
                labels: e.labels.clone(),
                value: match &e.instrument {
                    Instrument::Counter(c) => MetricValue::Counter(c.get()),
                    Instrument::Gauge(g) => MetricValue::Gauge(g.get()),
                    Instrument::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                },
            })
            .collect();
        snaps.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        snaps
    }

    /// Renders the registry as Prometheus text exposition (shorthand for
    /// [`crate::expo::render`] over [`Registry::snapshot`]).
    pub fn render_prometheus(&self) -> String {
        crate::expo::render(&self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_shares_state() {
        let r = Registry::new();
        let a = r.counter("hits_total", "hits", &[("job", "x")]);
        let b = r.counter("hits_total", "hits", &[("job", "x")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(r.snapshot().len(), 1);
    }

    #[test]
    fn labels_are_sorted_by_key_at_registration() {
        let r = Registry::new();
        r.gauge("g", "gauge", &[("zeta", "1"), ("alpha", "2")]);
        let snap = r.snapshot();
        assert_eq!(
            snap[0].labels,
            vec![
                ("alpha".to_string(), "2".to_string()),
                ("zeta".to_string(), "1".to_string())
            ]
        );
    }

    #[test]
    fn snapshot_is_sorted_by_name_then_labels() {
        let r = Registry::new();
        r.counter("b_total", "b", &[]);
        r.counter("a_total", "a", &[("job", "z")]);
        r.counter("a_total", "a", &[("job", "a")]);
        let names: Vec<(String, Vec<(String, String)>)> = r
            .snapshot()
            .into_iter()
            .map(|s| (s.name, s.labels))
            .collect();
        assert_eq!(names[0].0, "a_total");
        assert_eq!(names[0].1[0].1, "a");
        assert_eq!(names[1].1[0].1, "z");
        assert_eq!(names[2].0, "b_total");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("m", "m", &[]);
        r.gauge("m", "m", &[]);
    }
}
