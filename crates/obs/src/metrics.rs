//! The three instrument kinds: atomic counters, atomic gauges and
//! log-binned wall-time histograms.
//!
//! All instruments record through `Relaxed` atomics — handles are cheap
//! to clone (`Arc`), recording never takes a lock, and concurrent
//! recorders (e.g. fleet shards fanned over worker threads) never
//! contend on anything heavier than a cache line.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the counter.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Returns the current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An atomic gauge holding one `f64` (stored as its bit pattern).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Creates a gauge at `0.0`.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrites the gauge.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` to the gauge (compare-exchange loop; use for
    /// up/down signals like subscriber counts).
    pub fn add(&self, delta: f64) {
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self.bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }

    /// Returns the current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A log-binned histogram of wall-clock durations in nanoseconds.
///
/// The bin edges reuse the `fleet::stats::OffsetHistogram::log_scale`
/// construction: `bins_per_decade` edges per decade at
/// `10^(3 + d + b/bpd)` ns across nine decades (1 µs … 1000 s), plus an
/// overflow bin. Recording is two relaxed atomic adds and a binary
/// search over the precomputed edges — no locks, no allocation.
#[derive(Debug)]
pub struct TimeHistogram {
    edges_ns: Vec<u64>,
    counts: Vec<AtomicU64>,
    sum_ns: AtomicU64,
    total: AtomicU64,
}

/// A point-in-time copy of a [`TimeHistogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Upper bin edges in nanoseconds (the final overflow bin is implicit).
    pub edges_ns: Vec<u64>,
    /// Per-bin counts; `counts.len() == edges_ns.len() + 1`.
    pub counts: Vec<u64>,
    /// Sum of all recorded durations in nanoseconds.
    pub sum_ns: u64,
    /// Number of recorded observations.
    pub total: u64,
}

impl TimeHistogram {
    /// Builds a histogram with `bins_per_decade` log bins per decade over
    /// 1 µs … 1000 s (the `fleet::stats` layout).
    ///
    /// # Panics
    ///
    /// Panics if `bins_per_decade` is zero.
    pub fn log_scale(bins_per_decade: usize) -> TimeHistogram {
        assert!(bins_per_decade > 0, "need at least one bin per decade");
        let decades = 9; // 1e3 ns .. 1e12 ns
        let mut edges_ns = Vec::with_capacity(decades * bins_per_decade);
        for d in 0..decades {
            for b in 1..=bins_per_decade {
                let exp = 3.0 + d as f64 + b as f64 / bins_per_decade as f64;
                edges_ns.push(10f64.powf(exp).round() as u64);
            }
        }
        let bins = edges_ns.len() + 1;
        TimeHistogram {
            edges_ns,
            counts: (0..bins).map(|_| AtomicU64::new(0)).collect(),
            sum_ns: AtomicU64::new(0),
            total: AtomicU64::new(0),
        }
    }

    /// Records one duration in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        let bin = self.edges_ns.partition_point(|&e| e <= ns);
        self.counts[bin].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one [`std::time::Duration`].
    pub fn record(&self, elapsed: std::time::Duration) {
        self.record_ns(elapsed.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Number of recorded observations.
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Sum of all recorded durations in seconds.
    pub fn sum_secs(&self) -> f64 {
        self.sum_ns.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Takes a point-in-time copy of edges, counts, sum and total.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            edges_ns: self.edges_ns.clone(),
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            total: self.total.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_sets_and_adds() {
        let g = Gauge::new();
        g.set(2.5);
        g.add(1.0);
        g.add(-0.5);
        assert_eq!(g.get(), 3.0);
    }

    #[test]
    fn histogram_edges_match_the_stats_idiom() {
        let h = TimeHistogram::log_scale(8);
        let snap = h.snapshot();
        assert_eq!(snap.edges_ns.len(), 72);
        assert_eq!(snap.counts.len(), 73);
        // First edge: 10^(3 + 1/8) ≈ 1333 ns; last edge: 10^12 ns.
        assert_eq!(snap.edges_ns[0], 10f64.powf(3.125).round() as u64);
        assert_eq!(*snap.edges_ns.last().unwrap(), 1_000_000_000_000);
    }

    #[test]
    fn histogram_bins_below_between_and_overflow() {
        let h = TimeHistogram::log_scale(1);
        h.record_ns(10); // below the first edge (10 µs) → bin 0
        h.record_ns(15_000); // between 10 µs and 100 µs → bin 1
        h.record_ns(u64::MAX); // beyond 1000 s → overflow bin
        let snap = h.snapshot();
        assert_eq!(snap.counts[0], 1);
        assert_eq!(snap.counts[1], 1);
        assert_eq!(*snap.counts.last().unwrap(), 1);
        assert_eq!(snap.total, 3);
        // The sum wraps (fetch_add semantics) — only the modular value is
        // defined for pathological inputs.
        assert_eq!(snap.sum_ns, 15_010u64.wrapping_add(u64::MAX));
    }
}
