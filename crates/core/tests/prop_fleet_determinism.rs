//! Property tests for the fleet sweep engine: `run_fleets` must be a pure
//! function of `(configs, trials)` — independent of worker count and of
//! whether a trial ran on a fresh fleet or a pooled/reset one.

use chronos_pitfalls::montecarlo::{run_fleets, trial_seed};
use fleet::config::{FleetAttack, FleetConfig};
use fleet::engine::Fleet;
use netsim::time::{SimDuration, SimTime};
use proptest::prelude::*;

fn config(seed: u64, clients: usize, attack: bool) -> FleetConfig {
    FleetConfig {
        seed,
        clients,
        universe: 96,
        chronos: chronos::config::ChronosConfig {
            sample_size: 9,
            trim: 3,
            poll_interval: SimDuration::from_secs(64),
            pool: chronos::config::PoolGenConfig {
                queries: 5,
                query_interval: SimDuration::from_secs(200),
                ..chronos::config::PoolGenConfig::default()
            },
            ..chronos::config::ChronosConfig::default()
        },
        stagger: SimDuration::from_secs(150),
        sample_every: SimDuration::from_secs(150),
        horizon: SimDuration::from_secs(1_200),
        attack: attack.then(|| {
            FleetAttack::paper_default(SimTime::from_secs(350), SimDuration::from_millis(500))
        }),
        ..FleetConfig::default()
    }
}

proptest! {
    /// Fleet sweeps are byte-identical across thread counts.
    #[test]
    fn fleet_sweeps_reproduce_across_thread_counts(
        seed in 1u64..300,
        clients in 4usize..12,
        trials in 1u32..4,
        attack in any::<bool>(),
    ) {
        let configs = vec![
            config(seed, clients, attack),
            config(seed ^ 0x5a5a, clients, attack),
        ];
        let (reference, _) = run_fleets(&configs, 1, trials, |f, _, _| f.run());
        let threads = 2 + (seed as usize % 3); // 2..=4, varied across cases
        let (got, stats) = run_fleets(&configs, threads, trials, |f, _, _| f.run());
        prop_assert_eq!(&reference, &got, "threads={} diverged", threads);
        prop_assert_eq!(stats.trials, 2 * u64::from(trials));
    }

    /// Every pooled/reset trial equals a fresh `Fleet::new` at the derived
    /// trial seed.
    #[test]
    fn pooled_fleet_trials_match_fresh_builds(
        seed in 1u64..300,
        clients in 4usize..10,
        attack in any::<bool>(),
    ) {
        let base = config(seed, clients, attack);
        let configs = vec![base.clone(), FleetConfig { seed: seed + 7, ..base.clone() }];
        let (reports, stats) = run_fleets(&configs, 3, 3, |f, _, _| f.run());
        prop_assert!(stats.worlds_built <= 3, "pooling bounded by workers: {:?}", stats);
        for (ci, cfg) in configs.iter().enumerate() {
            for t in 0..3u32 {
                let fresh = Fleet::new(FleetConfig {
                    seed: trial_seed(cfg.seed, t),
                    ..cfg.clone()
                })
                .run();
                prop_assert_eq!(&reports[ci][t as usize], &fresh, "config {} trial {}", ci, t);
            }
        }
    }
}
