//! Property tests pinning the E18 determinism contract: the secure-tier
//! lanes (NTS association/re-key state, Roughtime multi-source fetch
//! rounds) must not cost the fleet any reproducibility guarantee.
//!
//! 1. **Thread-count invariance** — a partially-secure [`e18_config`]
//!    fleet is byte-identical across thread counts ∈ {1, 2, 3, 8}:
//!    reports *and* per-client end states, association expiry and the
//!    packed source-set columns included. Every secure-lane draw is
//!    keyed on `(seed, global id, lane, round, slot)`, so stepping
//!    order cannot leak in.
//! 2. **Shard-size invariance** — same contract across shard sizes for
//!    the integer aggregates and fingerprints (only P² quantile
//!    *estimates* may differ, exactly as for fault-free fleets).
//! 3. **Experiment-level invariance** — [`run_e18`]'s full result (rows
//!    and derived series) is identical for any thread budget.
//! 4. **Inert E18 = PR 6 E17** — `e18_tiers(0.0)` over the E17 fault
//!    scenario *is* the PR 6 configuration: equal config bytes, equal
//!    report, equal per-client end states, every secure counter zero.
//!    Zero deployment means the E18 machinery contributes nothing.
//!
//! [`e18_config`]: chronos_pitfalls::experiments::e18_config
//! [`run_e18`]: chronos_pitfalls::experiments::run_e18

use chronos_pitfalls::experiments::{e17_config, e18_config, e18_tiers, run_e18};
use fleet::engine::Fleet;
use fleet::stats::SecureCounters;
use netsim::time::SimTime;
use proptest::prelude::*;

/// Everything observable about one client, secure-lane state included.
#[derive(Debug, Clone, PartialEq)]
struct ClientFingerprint {
    trace: Vec<(SimTime, i64)>,
    pool: (usize, usize),
    stats: chronos::core::ChronosStats,
    faults: fleet::stats::FaultCounters,
    secure: SecureCounters,
    sources: (u32, u32),
    assoc_expiry: Option<SimTime>,
    phase: chronos::core::Phase,
    tier: usize,
    resolver: usize,
    final_offset_ns: i64,
}

fn fingerprint(fleet: &Fleet, i: usize) -> ClientFingerprint {
    ClientFingerprint {
        trace: fleet.trace(i).to_vec(),
        pool: fleet.client_pool(i),
        stats: fleet.client_stats(i),
        faults: fleet.client_faults(i),
        secure: fleet.client_secure(i),
        sources: fleet.client_sources(i),
        assoc_expiry: fleet.client_association_expiry(i),
        phase: fleet.client_phase(i),
        tier: fleet.client_tier(i),
        resolver: fleet.client_resolver(i),
        final_offset_ns: fleet.client_offset_ns(i, fleet.now()),
    }
}

const CLIENTS: usize = 24;

/// One E18 grid point at a secure deployment fraction, with per-client
/// trajectories recorded and several shards so threading matters.
fn secure_config(seed: u64, d_units: u32, resolvers: usize, poisoned: usize) -> fleet::FleetConfig {
    let mut config = e18_config(
        seed,
        CLIENTS,
        resolvers,
        f64::from(d_units) * 0.25,
        poisoned,
    );
    config.record_trajectories = true;
    config.shard_size = 8;
    config
}

proptest! {
    /// Mixed secure fleets are byte-identical for every thread count:
    /// report and all per-client end states, NTS association expiry and
    /// Roughtime source sets included.
    #[test]
    fn secure_fleets_are_thread_count_invariant(
        seed in 1u64..400,
        d_units in 1u32..=4, // deployment ∈ {0.25, 0.5, 0.75, 1.0}
        resolvers in 1usize..=3,
    ) {
        let poisoned = 1 + (seed as usize) % resolvers;
        let mut config = secure_config(seed, d_units, resolvers, poisoned);
        config.threads = 1;
        let mut reference = Fleet::new(config.clone());
        let reference_report = reference.run();
        for threads in [2usize, 3, 8] {
            config.threads = threads;
            let mut fleet = Fleet::new(config.clone());
            let report = fleet.run();
            prop_assert_eq!(&reference_report, &report, "threads = {}", threads);
            for i in 0..CLIENTS {
                prop_assert_eq!(
                    fingerprint(&reference, i),
                    fingerprint(&fleet, i),
                    "client {} at {} threads", i, threads
                );
            }
        }
    }

    /// ... and for every shard size: the slab decomposition is invisible
    /// to the secure lanes (only P² quantile *estimates* may differ, as
    /// for fault-free fleets, so we compare fingerprints and the integer
    /// aggregates).
    #[test]
    fn secure_fleets_are_shard_size_invariant(
        seed in 1u64..400,
        d_units in 1u32..=4,
        resolvers in 1usize..=3,
    ) {
        let poisoned = 1 + (seed as usize) % resolvers;
        let mut config = secure_config(seed, d_units, resolvers, poisoned);
        config.threads = 2;
        let mut coarse = Fleet::new(config.clone());
        let coarse_report = coarse.run();
        for shard_size in [5usize, 11, CLIENTS] {
            config.shard_size = shard_size;
            let mut fleet = Fleet::new(config.clone());
            let report = fleet.run();
            prop_assert_eq!(&coarse_report.shifted, &report.shifted);
            prop_assert_eq!(&coarse_report.totals, &report.totals);
            prop_assert_eq!(&coarse_report.faults, &report.faults);
            prop_assert_eq!(&coarse_report.secure, &report.secure);
            prop_assert_eq!(&coarse_report.tiers, &report.tiers);
            for i in 0..CLIENTS {
                prop_assert_eq!(
                    fingerprint(&coarse, i),
                    fingerprint(&fleet, i),
                    "client {} at shard size {}", i, shard_size
                );
            }
        }
    }

    /// The whole experiment is thread-budget invariant: rows, reports
    /// and every derived series of [`run_e18`] are identical however the
    /// budget splits across sweep workers and intra-fleet shards.
    #[test]
    fn run_e18_results_are_thread_invariant(seed in 1u64..200) {
        let reference = run_e18(seed, 12, 2, 1);
        for threads in [2usize, 3, 8] {
            let got = run_e18(seed, 12, 2, threads);
            prop_assert_eq!(&reference.rows, &got.rows, "threads = {}", threads);
            prop_assert_eq!(&reference.series, &got.series, "threads = {}", threads);
        }
    }

    /// Zero-deployment E18 *is* PR 6's E17, byte for byte: `e18_tiers(0)`
    /// returns exactly the E16 mix, so swapping it into the E17 fault
    /// scenario changes neither the config nor one bit of the outcome —
    /// and no secure counter ever moves.
    #[test]
    fn inert_e18_reproduces_the_e17_fleet(
        seed in 1u64..400,
        clients in 4usize..=10,
        resolvers in 1usize..=3,
        loss in 0.0f64..0.4,
        with_outage in any::<bool>(),
    ) {
        let coverage = if with_outage { resolvers } else { 0 };
        let mut e17 = e17_config(seed, clients, resolvers, loss, coverage);
        e17.record_trajectories = true;
        let mut inert = e17.clone();
        inert.tiers = e18_tiers(0.0);
        // The configs themselves are equal — the zero end of the E18
        // deployment axis is the PR 6 scenario, not an approximation.
        prop_assert_eq!(&e17, &inert);
        let mut a = Fleet::new(e17);
        let mut b = Fleet::new(inert);
        let e17_report = a.run();
        let inert_report = b.run();
        prop_assert_eq!(&e17_report, &inert_report);
        prop_assert_eq!(e17_report.secure, SecureCounters::default());
        for tier in &e17_report.tiers {
            prop_assert_eq!(tier.secure, SecureCounters::default(), "tier {}", &tier.label);
        }
        for i in 0..clients {
            prop_assert_eq!(fingerprint(&a, i), fingerprint(&b, i), "client {}", i);
        }
    }
}
