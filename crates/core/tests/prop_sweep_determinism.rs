//! Property tests for the pooled scenario-sweep engine: a world reused via
//! `World::reset` must be observationally indistinguishable from a freshly
//! built one — byte-identical `WorldStats`, pool contents, selection
//! decisions and clock trajectories — for any small config grid.

use chronos_pitfalls::experiments::compressed_chronos;
use chronos_pitfalls::montecarlo::{run_scenarios_detailed, trial_seed};
use chronos_pitfalls::scenario::{Scenario, ScenarioConfig};
use netsim::time::{SimDuration, SimTime};
use netsim::world::WorldStats;
use proptest::prelude::*;
use std::net::Ipv4Addr;

/// Everything observable a trial produces: world activity counters, the
/// generated pool (selection input), the client's decision counters, and
/// the final clock offset.
#[derive(Debug, Clone, PartialEq)]
struct TrialFingerprint {
    world: WorldStats,
    trace_recorded: u64,
    pool: Vec<Ipv4Addr>,
    accepts: u64,
    rejects: u64,
    clock_offset_ns: i64,
}

fn fingerprint(s: &mut Scenario) -> TrialFingerprint {
    s.run_pool_generation(SimDuration::from_secs(500));
    // A slice of the syncing phase too, so selection decisions are covered.
    s.run_for(SimDuration::from_secs(100));
    TrialFingerprint {
        world: s.world.stats(),
        trace_recorded: s.world.trace().total_recorded(),
        pool: s.chronos().pool().servers().to_vec(),
        accepts: s.chronos().stats().accepts,
        rejects: s.chronos().stats().rejects,
        clock_offset_ns: s.chronos().offset_from_true(s.world.now()),
    }
}

fn config(seed: u64, universe: usize, rounds: usize, with_attack: bool) -> ScenarioConfig {
    use attacklab::plan::{AttackPlan, PoisonStrategy};
    let mut chronos = compressed_chronos(rounds, SimDuration::from_secs(200));
    chronos.sample_size = 6;
    chronos.trim = 2;
    ScenarioConfig {
        seed,
        benign_universe: universe,
        ns_count: 2,
        chronos,
        attack: with_attack.then(|| AttackPlan {
            strategy: PoisonStrategy::Fragmentation {
                start: SimTime::ZERO,
            },
            ..AttackPlan::paper_default(SimDuration::from_millis(500))
        }),
        ..ScenarioConfig::default()
    }
}

proptest! {
    /// For random small grids, the pooled sweep's per-trial fingerprints
    /// equal those of per-trial `Scenario::build` — and the pool really
    /// avoided rebuilding.
    #[test]
    fn pooled_sweep_is_byte_identical_to_fresh_builds(
        base_seed in 0u64..1_000_000,
        universe in 16usize..48,
        rounds in 1usize..3,
        configs in 1usize..4,
        trials in 1u32..4,
        with_attack in any::<bool>(),
    ) {
        let grid: Vec<ScenarioConfig> = (0..configs as u64)
            .map(|i| config(base_seed + 17 * i, universe, rounds, with_attack))
            .collect();
        let (pooled, stats) =
            run_scenarios_detailed(&grid, 2, trials, |s, _, _| fingerprint(s));
        prop_assert_eq!(stats.trials, configs as u64 * u64::from(trials));
        prop_assert!(
            stats.worlds_built <= (configs * 2) as u64,
            "built {} worlds for {} configs on 2 threads",
            stats.worlds_built,
            configs
        );
        for (ci, cfg) in grid.iter().enumerate() {
            for t in 0..trials {
                let mut fresh = Scenario::build(ScenarioConfig {
                    seed: trial_seed(cfg.seed, t),
                    ..cfg.clone()
                });
                prop_assert_eq!(
                    &pooled[ci][t as usize],
                    &fingerprint(&mut fresh),
                    "config {} trial {} diverged from a fresh world",
                    ci,
                    t
                );
            }
        }
    }

    /// Resetting one scenario through a random seed sequence always matches
    /// building fresh at each seed (order independence of reuse).
    #[test]
    fn reset_chain_matches_fresh_builds(
        seeds in proptest::collection::vec(0u64..1_000_000, 2..5),
        with_attack in any::<bool>(),
    ) {
        let cfg = config(seeds[0], 20, 1, with_attack);
        let mut reused = Scenario::build(cfg.clone());
        for &seed in &seeds {
            reused.reset(seed);
            let got = fingerprint(&mut reused);
            let mut fresh = Scenario::build(ScenarioConfig { seed, ..cfg.clone() });
            prop_assert_eq!(got, fingerprint(&mut fresh), "seed {} diverged", seed);
        }
    }
}
