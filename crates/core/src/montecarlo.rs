//! Parallel Monte-Carlo trial execution.
//!
//! Packet-level trials (one full scenario per sample) are embarrassingly
//! parallel: each gets its own seed-derived world. [`run_trials`] fans them
//! out over scoped threads and returns results in trial order, so outcomes
//! are independent of thread scheduling.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU32, Ordering};

/// Runs `trials` independent evaluations of `f` (called with the trial
/// index) across `threads` worker threads, returning results in index
/// order.
///
/// Determinism: `f` must derive all randomness from its trial index (e.g.
/// `seed ^ index`); the runner guarantees nothing else about ordering.
///
/// # Panics
///
/// Propagates panics from `f` and panics if `threads` is zero.
pub fn run_trials<T, F>(trials: u32, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u32) -> T + Sync,
{
    assert!(threads > 0, "need at least one worker thread");
    let results: Mutex<Vec<Option<T>>> =
        Mutex::new((0..trials).map(|_| None).collect());
    let next = AtomicU32::new(0);
    crossbeam::scope(|scope| {
        for _ in 0..threads.min(trials.max(1) as usize) {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= trials {
                    break;
                }
                let out = f(i);
                results.lock()[i as usize] = Some(out);
            });
        }
    })
    .expect("trial worker panicked");
    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("every trial filled"))
        .collect()
}

/// Summary statistics over boolean trial outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SuccessRate {
    /// Trials run.
    pub trials: u32,
    /// Successful trials.
    pub successes: u32,
    /// Point estimate.
    pub rate: f64,
    /// Half-width of the 95 % normal-approximation confidence interval.
    pub ci95_half_width: f64,
}

/// Aggregates boolean outcomes into a [`SuccessRate`].
pub fn success_rate(outcomes: &[bool]) -> SuccessRate {
    let trials = outcomes.len() as u32;
    let successes = outcomes.iter().filter(|&&b| b).count() as u32;
    let rate = if trials == 0 {
        0.0
    } else {
        f64::from(successes) / f64::from(trials)
    };
    let ci95_half_width = if trials == 0 {
        0.0
    } else {
        1.96 * (rate * (1.0 - rate) / f64::from(trials)).sqrt()
    };
    SuccessRate {
        trials,
        successes,
        rate,
        ci95_half_width,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::rng::SimRng;
    use rand::Rng;

    #[test]
    fn results_are_in_trial_order() {
        let out = run_trials(100, 8, |i| i * 2);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u32 * 2);
        }
    }

    #[test]
    fn parallel_equals_serial() {
        let f = |i: u32| {
            let mut rng = SimRng::seed_from(1000 + u64::from(i));
            rng.gen::<u64>()
        };
        let serial = run_trials(64, 1, f);
        let parallel = run_trials(64, 8, f);
        assert_eq!(serial, parallel, "outcomes independent of threading");
    }

    #[test]
    fn zero_trials_is_fine() {
        let out: Vec<u32> = run_trials(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        run_trials(1, 0, |i| i);
    }

    #[test]
    fn success_rate_aggregation() {
        let outcomes = vec![true, true, false, true];
        let s = success_rate(&outcomes);
        assert_eq!(s.trials, 4);
        assert_eq!(s.successes, 3);
        assert!((s.rate - 0.75).abs() < 1e-12);
        assert!(s.ci95_half_width > 0.0);
        let empty = success_rate(&[]);
        assert_eq!(empty.rate, 0.0);
    }

    /// A real (small) use: frag-attack capture probability across seeds.
    #[test]
    fn parallel_scenario_trials() {
        use crate::experiments::compressed_chronos;
        use crate::scenario::{Scenario, ScenarioConfig};
        use attacklab::plan::{AttackPlan, PoisonStrategy};
        use netsim::time::{SimDuration, SimTime};

        let outcomes = run_trials(6, 3, |i| {
            let mut s = Scenario::build(ScenarioConfig {
                seed: 7000 + u64::from(i),
                benign_universe: 64,
                chronos: compressed_chronos(6, SimDuration::from_secs(200)),
                attack: Some(AttackPlan {
                    strategy: PoisonStrategy::Fragmentation {
                        start: SimTime::ZERO,
                    },
                    ..AttackPlan::paper_default(SimDuration::from_millis(500))
                }),
                ..ScenarioConfig::default()
            });
            s.run_pool_generation(SimDuration::from_secs(2200));
            s.attacker_fraction() >= 2.0 / 3.0
        });
        let rate = success_rate(&outcomes);
        assert!(
            rate.rate >= 0.8,
            "sequential-ID capture should almost always land: {rate:?}"
        );
    }
}
