//! Parallel Monte-Carlo trial execution.
//!
//! Packet-level trials (one full scenario per sample) are embarrassingly
//! parallel: each gets its own seed-derived world. [`run_trials`] fans them
//! out over scoped threads and returns results in trial order, so outcomes
//! are independent of thread scheduling.
//!
//! # Design: lock-free result collection
//!
//! Results land in pre-allocated output slots. The slots are split into
//! contiguous batches handed to workers through disjoint `&mut` chunks, so
//! no worker ever touches another worker's slots — there is **no lock on
//! the per-trial result path**. Load balancing is work-stealing-style: a
//! single atomic batch cursor hands out the next unclaimed batch, so a
//! worker stuck on an expensive trial doesn't strand the rest of its
//! statically assigned range. [`TrialBudget`] controls the batch size:
//! larger batches amortize the (already tiny) dispatch cost for cheap
//! closures, smaller batches balance heavy packet-level scenarios.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Batching policy for [`run_trials_with_budget`].
///
/// A batch is the unit of work a worker claims from the shared cursor: all
/// trials in a batch run on one thread, back to back, with a single atomic
/// operation for the whole batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrialBudget {
    /// Trials claimed per atomic dispatch. `None` picks a size that yields
    /// roughly [`TrialBudget::AUTO_BATCHES_PER_THREAD`] batches per worker —
    /// enough slack for stealing, few enough that dispatch stays amortized.
    pub batch_size: Option<usize>,
}

impl TrialBudget {
    /// Batches each worker gets on average under the automatic policy.
    pub const AUTO_BATCHES_PER_THREAD: usize = 8;

    /// The automatic policy (recommended).
    pub const fn auto() -> Self {
        TrialBudget { batch_size: None }
    }

    /// A fixed batch size.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn fixed(size: usize) -> Self {
        assert!(size > 0, "batch size must be positive");
        TrialBudget {
            batch_size: Some(size),
        }
    }

    /// Resolves the batch size for a workload.
    pub fn resolve(self, trials: u32, threads: usize) -> usize {
        match self.batch_size {
            Some(n) => n.max(1),
            None => {
                let target = threads.max(1) * Self::AUTO_BATCHES_PER_THREAD;
                ((trials as usize).div_ceil(target.max(1))).max(1)
            }
        }
    }
}

impl Default for TrialBudget {
    fn default() -> Self {
        TrialBudget::auto()
    }
}

/// Runs `trials` independent evaluations of `f` (called with the trial
/// index) across `threads` worker threads, returning results in index
/// order. Batching follows [`TrialBudget::auto`]; use
/// [`run_trials_with_budget`] to tune it.
///
/// Determinism: `f` must derive all randomness from its trial index (e.g.
/// `seed ^ index`); results are written to slot `index` regardless of which
/// worker ran the trial, so the output is independent of scheduling.
///
/// Guarantee: when `trials == 0` the call returns immediately without
/// spawning any worker threads.
///
/// # Panics
///
/// Propagates panics from `f` and panics if `threads` is zero.
pub fn run_trials<T, F>(trials: u32, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u32) -> T + Sync,
{
    run_trials_with_budget(trials, threads, TrialBudget::auto(), f)
}

/// [`run_trials`] with an explicit [`TrialBudget`].
///
/// # Panics
///
/// Propagates panics from `f` and panics if `threads` is zero.
pub fn run_trials_with_budget<T, F>(
    trials: u32,
    threads: usize,
    budget: TrialBudget,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(u32) -> T + Sync,
{
    assert!(threads > 0, "need at least one worker thread");
    if trials == 0 {
        return Vec::new();
    }
    let batch = budget.resolve(trials, threads);
    let mut slots: Vec<Option<T>> = (0..trials).map(|_| None).collect();

    // Serial fast path: one worker needs neither threads nor atomics.
    if threads == 1 || trials == 1 {
        for (i, slot) in slots.iter_mut().enumerate() {
            *slot = Some(f(i as u32));
        }
        return unwrap_slots(slots);
    }

    // Disjoint &mut batches behind an atomic claim cursor: each batch index
    // is handed out exactly once, so every slot has a unique writer and no
    // result write ever takes a lock.
    {
        let cells: Vec<BatchCell<'_, T>> = slots
            .chunks_mut(batch)
            .map(BatchCell::new)
            .collect();
        let cells = &cells[..];
        let cursor = AtomicUsize::new(0);
        let workers = threads.min(cells.len());
        std::thread::scope(|scope| {
            let cursor = &cursor;
            let f = &f;
            for _ in 0..workers {
                scope.spawn(move || loop {
                    let b = cursor.fetch_add(1, Ordering::Relaxed);
                    if b >= cells.len() {
                        break;
                    }
                    // Safety: the cursor returns each index exactly once, so
                    // this worker is the sole accessor of batch `b`.
                    let chunk = unsafe { cells[b].take() };
                    let base = (b * batch) as u32;
                    for (off, slot) in chunk.iter_mut().enumerate() {
                        *slot = Some(f(base + off as u32));
                    }
                });
            }
        });
    }
    unwrap_slots(slots)
}

/// A batch of output slots claimed by exactly one worker (enforced by the
/// atomic cursor handing out each index once).
struct BatchCell<'a, T> {
    chunk: std::cell::UnsafeCell<*mut [Option<T>]>,
    _marker: std::marker::PhantomData<&'a mut [Option<T>]>,
}

// Safety: workers only dereference a cell after uniquely claiming its index
// from the atomic cursor; the scoped-thread join provides the release/acquire
// edge back to the collecting thread.
unsafe impl<T: Send> Sync for BatchCell<'_, T> {}

impl<'a, T> BatchCell<'a, T> {
    fn new(chunk: &'a mut [Option<T>]) -> Self {
        BatchCell {
            chunk: std::cell::UnsafeCell::new(chunk as *mut _),
            _marker: std::marker::PhantomData,
        }
    }

    /// # Safety
    ///
    /// Must be called at most once per cell (guaranteed by the cursor).
    #[allow(clippy::mut_from_ref)] // unique access enforced by the claim cursor
    unsafe fn take(&self) -> &mut [Option<T>] {
        &mut **self.chunk.get()
    }
}

fn unwrap_slots<T>(slots: Vec<Option<T>>) -> Vec<T> {
    slots
        .into_iter()
        .map(|r| r.expect("every trial filled"))
        .collect()
}

/// The seed implementation retained as the benchmark baseline: one global
/// mutex acquisition per trial result. Kept (not re-exported from the crate
/// root) so `e12_montecarlo_dispatch` can measure the win of the lock-free
/// path against it; do not use in new code.
#[doc(hidden)]
pub fn baseline_run_trials<T, F>(trials: u32, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u32) -> T + Sync,
{
    use std::sync::atomic::AtomicU32;
    assert!(threads > 0, "need at least one worker thread");
    let results: std::sync::Mutex<Vec<Option<T>>> =
        std::sync::Mutex::new((0..trials).map(|_| None).collect());
    let next = AtomicU32::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(trials.max(1) as usize) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= trials {
                    break;
                }
                let out = f(i);
                results.lock().expect("not poisoned")[i as usize] = Some(out);
            });
        }
    });
    results
        .into_inner()
        .expect("not poisoned")
        .into_iter()
        .map(|r| r.expect("every trial filled"))
        .collect()
}

/// Summary statistics over boolean trial outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SuccessRate {
    /// Trials run.
    pub trials: u32,
    /// Successful trials.
    pub successes: u32,
    /// Point estimate.
    pub rate: f64,
    /// Half-width of the 95 % normal-approximation confidence interval.
    pub ci95_half_width: f64,
}

/// Aggregates boolean outcomes into a [`SuccessRate`].
pub fn success_rate(outcomes: &[bool]) -> SuccessRate {
    let trials = outcomes.len() as u32;
    let successes = outcomes.iter().filter(|&&b| b).count() as u32;
    let rate = if trials == 0 {
        0.0
    } else {
        f64::from(successes) / f64::from(trials)
    };
    let ci95_half_width = if trials == 0 {
        0.0
    } else {
        1.96 * (rate * (1.0 - rate) / f64::from(trials)).sqrt()
    };
    SuccessRate {
        trials,
        successes,
        rate,
        ci95_half_width,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::rng::SimRng;
    use rand::Rng;

    #[test]
    fn results_are_in_trial_order() {
        let out = run_trials(100, 8, |i| i * 2);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u32 * 2);
        }
    }

    #[test]
    fn parallel_equals_serial() {
        let f = |i: u32| {
            let mut rng = SimRng::seed_from(1000 + u64::from(i));
            rng.gen::<u64>()
        };
        let serial = run_trials(64, 1, f);
        let parallel = run_trials(64, 8, f);
        assert_eq!(serial, parallel, "outcomes independent of threading");
    }

    #[test]
    fn parallel_equals_serial_across_budgets() {
        let f = |i: u32| {
            let mut rng = SimRng::seed_from(9000 + u64::from(i));
            rng.gen::<u64>()
        };
        let reference = run_trials_with_budget(257, 1, TrialBudget::auto(), f);
        for batch in [1usize, 2, 7, 64, 300] {
            let got = run_trials_with_budget(257, 6, TrialBudget::fixed(batch), f);
            assert_eq!(reference, got, "batch size {batch} changed outcomes");
        }
    }

    #[test]
    fn matches_baseline_implementation() {
        let f = |i: u32| u64::from(i).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        assert_eq!(run_trials(500, 4, f), baseline_run_trials(500, 4, f));
    }

    #[test]
    fn zero_trials_spawns_nothing() {
        // Would deadlock/panic if a worker were spawned with a waiting
        // barrier-style closure; mostly documents the no-spawn guarantee.
        let out: Vec<u32> = run_trials(0, 4, |i| i);
        assert!(out.is_empty());
        let out: Vec<u32> = run_trials_with_budget(0, 4, TrialBudget::fixed(3), |i| i);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        run_trials(1, 0, |i| i);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_rejected() {
        TrialBudget::fixed(0);
    }

    #[test]
    fn auto_budget_scales_with_workload() {
        assert_eq!(TrialBudget::auto().resolve(10_000, 8), 157);
        assert_eq!(TrialBudget::auto().resolve(4, 8), 1);
        assert_eq!(TrialBudget::fixed(32).resolve(10_000, 8), 32);
    }

    #[test]
    fn more_threads_than_trials_is_fine() {
        let out = run_trials(3, 16, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn success_rate_aggregation() {
        let outcomes = vec![true, true, false, true];
        let s = success_rate(&outcomes);
        assert_eq!(s.trials, 4);
        assert_eq!(s.successes, 3);
        assert!((s.rate - 0.75).abs() < 1e-12);
        assert!(s.ci95_half_width > 0.0);
        let empty = success_rate(&[]);
        assert_eq!(empty.rate, 0.0);
    }

    /// A real (small) use: frag-attack capture probability across seeds.
    #[test]
    fn parallel_scenario_trials() {
        use crate::experiments::compressed_chronos;
        use crate::scenario::{Scenario, ScenarioConfig};
        use attacklab::plan::{AttackPlan, PoisonStrategy};
        use netsim::time::{SimDuration, SimTime};

        let outcomes = run_trials(6, 3, |i| {
            let mut s = Scenario::build(ScenarioConfig {
                seed: 7000 + u64::from(i),
                benign_universe: 64,
                chronos: compressed_chronos(6, SimDuration::from_secs(200)),
                attack: Some(AttackPlan {
                    strategy: PoisonStrategy::Fragmentation {
                        start: SimTime::ZERO,
                    },
                    ..AttackPlan::paper_default(SimDuration::from_millis(500))
                }),
                ..ScenarioConfig::default()
            });
            s.run_pool_generation(SimDuration::from_secs(2200));
            s.attacker_fraction() >= 2.0 / 3.0
        });
        let rate = success_rate(&outcomes);
        assert!(
            rate.rate >= 0.8,
            "sequential-ID capture should almost always land: {rate:?}"
        );
    }
}
