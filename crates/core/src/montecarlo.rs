//! Parallel Monte-Carlo trial execution.
//!
//! Packet-level trials (one full scenario per sample) are embarrassingly
//! parallel: each gets its own seed-derived world. [`run_trials`] fans them
//! out over scoped threads and returns results in trial order, so outcomes
//! are independent of thread scheduling.
//!
//! # Design: lock-free result collection
//!
//! Results land in pre-allocated output slots. The slots are split into
//! contiguous batches handed to workers through disjoint `&mut` chunks, so
//! no worker ever touches another worker's slots — there is **no lock on
//! the per-trial result path**. Load balancing is work-stealing-style: a
//! single atomic batch cursor hands out the next unclaimed batch, so a
//! worker stuck on an expensive trial doesn't strand the rest of its
//! statically assigned range. [`TrialBudget`] controls the batch size:
//! larger batches amortize the (already tiny) dispatch cost for cheap
//! closures, smaller batches balance heavy packet-level scenarios.

use crate::scenario::{Scenario, ScenarioConfig};
use fleet::config::FleetConfig;
use fleet::engine::Fleet;
use netsim::pool::{ObjectPool, WorldPool, WorldPoolStats};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Batching policy for [`run_trials_with_budget`].
///
/// A batch is the unit of work a worker claims from the shared cursor: all
/// trials in a batch run on one thread, back to back, with a single atomic
/// operation for the whole batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrialBudget {
    /// Trials claimed per atomic dispatch. `None` picks a size that yields
    /// roughly [`TrialBudget::AUTO_BATCHES_PER_THREAD`] batches per worker —
    /// enough slack for stealing, few enough that dispatch stays amortized.
    pub batch_size: Option<usize>,
}

impl TrialBudget {
    /// Batches each worker gets on average under the automatic policy.
    pub const AUTO_BATCHES_PER_THREAD: usize = 8;

    /// The automatic policy (recommended).
    pub const fn auto() -> Self {
        TrialBudget { batch_size: None }
    }

    /// A fixed batch size.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn fixed(size: usize) -> Self {
        assert!(size > 0, "batch size must be positive");
        TrialBudget {
            batch_size: Some(size),
        }
    }

    /// Resolves the batch size for a workload.
    pub fn resolve(self, trials: u32, threads: usize) -> usize {
        match self.batch_size {
            Some(n) => n.max(1),
            None => {
                let target = threads.max(1) * Self::AUTO_BATCHES_PER_THREAD;
                ((trials as usize).div_ceil(target.max(1))).max(1)
            }
        }
    }
}

impl Default for TrialBudget {
    fn default() -> Self {
        TrialBudget::auto()
    }
}

/// Runs `trials` independent evaluations of `f` (called with the trial
/// index) across `threads` worker threads, returning results in index
/// order. Batching follows [`TrialBudget::auto`]; use
/// [`run_trials_with_budget`] to tune it.
///
/// Determinism: `f` must derive all randomness from its trial index (e.g.
/// `seed ^ index`); results are written to slot `index` regardless of which
/// worker ran the trial, so the output is independent of scheduling.
///
/// Guarantee: when `trials == 0` the call returns immediately without
/// spawning any worker threads.
///
/// # Panics
///
/// Propagates panics from `f` and panics if `threads` is zero.
pub fn run_trials<T, F>(trials: u32, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u32) -> T + Sync,
{
    run_trials_with_budget(trials, threads, TrialBudget::auto(), f)
}

/// [`run_trials`] with an explicit [`TrialBudget`].
///
/// # Panics
///
/// Propagates panics from `f` and panics if `threads` is zero.
pub fn run_trials_with_budget<T, F>(
    trials: u32,
    threads: usize,
    budget: TrialBudget,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(u32) -> T + Sync,
{
    run_trials_stateful(trials, threads, budget, || (), |(), i| f(i))
}

/// The dispatcher underneath [`run_trials`] and [`run_scenarios`]: like
/// [`run_trials_with_budget`], but each worker thread carries private state
/// created by `init` and threaded through every trial it claims.
///
/// This is what makes world pooling possible: the state holds the worker's
/// current scenario, so consecutive trials of one configuration reuse a
/// constructed world instead of rebuilding it. The state never crosses
/// threads and is dropped when the worker runs out of batches.
///
/// Determinism contract: `f`'s *result* must depend only on the trial
/// index, never on the worker state's history — state may only be used as a
/// cache whose observable behaviour is reset per trial.
///
/// # Panics
///
/// Propagates panics from `f` and panics if `threads` is zero.
pub fn run_trials_stateful<T, S, I, F>(
    trials: u32,
    threads: usize,
    budget: TrialBudget,
    init: I,
    f: F,
) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, u32) -> T + Sync,
{
    assert!(threads > 0, "need at least one worker thread");
    if trials == 0 {
        return Vec::new();
    }
    let batch = budget.resolve(trials, threads);
    let mut slots: Vec<Option<T>> = (0..trials).map(|_| None).collect();

    // Serial fast path: one worker needs neither threads nor atomics.
    if threads == 1 || trials == 1 {
        let mut state = init();
        for (i, slot) in slots.iter_mut().enumerate() {
            *slot = Some(f(&mut state, i as u32));
        }
        return unwrap_slots(slots);
    }

    // Disjoint &mut batches behind an atomic claim cursor: each batch index
    // is handed out exactly once, so every slot has a unique writer and no
    // result write ever takes a lock.
    {
        let cells: Vec<BatchCell<'_, T>> = slots.chunks_mut(batch).map(BatchCell::new).collect();
        let cells = &cells[..];
        let cursor = AtomicUsize::new(0);
        let workers = threads.min(cells.len());
        std::thread::scope(|scope| {
            let cursor = &cursor;
            let init = &init;
            let f = &f;
            for _ in 0..workers {
                scope.spawn(move || {
                    let mut state = init();
                    loop {
                        let b = cursor.fetch_add(1, Ordering::Relaxed);
                        if b >= cells.len() {
                            break;
                        }
                        // Safety: the cursor returns each index exactly
                        // once, so this worker is the sole accessor of
                        // batch `b`.
                        let chunk = unsafe { cells[b].take() };
                        let base = (b * batch) as u32;
                        for (off, slot) in chunk.iter_mut().enumerate() {
                            *slot = Some(f(&mut state, base + off as u32));
                        }
                    }
                });
            }
        });
    }
    unwrap_slots(slots)
}

/// A batch of output slots claimed by exactly one worker (enforced by the
/// atomic cursor handing out each index once).
struct BatchCell<'a, T> {
    chunk: std::cell::UnsafeCell<*mut [Option<T>]>,
    _marker: std::marker::PhantomData<&'a mut [Option<T>]>,
}

// Safety: workers only dereference a cell after uniquely claiming its index
// from the atomic cursor; the scoped-thread join provides the release/acquire
// edge back to the collecting thread.
unsafe impl<T: Send> Sync for BatchCell<'_, T> {}

impl<'a, T> BatchCell<'a, T> {
    fn new(chunk: &'a mut [Option<T>]) -> Self {
        BatchCell {
            chunk: std::cell::UnsafeCell::new(chunk as *mut _),
            _marker: std::marker::PhantomData,
        }
    }

    /// # Safety
    ///
    /// Must be called at most once per cell (guaranteed by the cursor).
    #[allow(clippy::mut_from_ref)] // unique access enforced by the claim cursor
    unsafe fn take(&self) -> &mut [Option<T>] {
        &mut **self.chunk.get()
    }
}

fn unwrap_slots<T>(slots: Vec<Option<T>>) -> Vec<T> {
    slots
        .into_iter()
        .map(|r| r.expect("every trial filled"))
        .collect()
}

/// The seed implementation retained as the benchmark baseline: one global
/// mutex acquisition per trial result. Kept (not re-exported from the crate
/// root) so `e12_montecarlo_dispatch` can measure the win of the lock-free
/// path against it; do not use in new code.
#[doc(hidden)]
pub fn baseline_run_trials<T, F>(trials: u32, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u32) -> T + Sync,
{
    use std::sync::atomic::AtomicU32;
    assert!(threads > 0, "need at least one worker thread");
    let results: std::sync::Mutex<Vec<Option<T>>> =
        std::sync::Mutex::new((0..trials).map(|_| None).collect());
    let next = AtomicU32::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(trials.max(1) as usize) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= trials {
                    break;
                }
                let out = f(i);
                results.lock().expect("not poisoned")[i as usize] = Some(out);
            });
        }
    });
    results
        .into_inner()
        .expect("not poisoned")
        .into_iter()
        .map(|r| r.expect("every trial filled"))
        .collect()
}

// ---------------------------------------------------------------------
// Scenario sweeps: a flattened (config × trial) index space over the
// batch dispatcher, with netsim worlds pooled and reset across trials.
// ---------------------------------------------------------------------

/// Derives the world seed for one trial of a sweep point from the config's
/// base seed. Trial 0 runs the base seed itself — so a 1-trial sweep
/// reproduces a plain `Scenario::build(config)` run exactly — and later
/// trials get SplitMix64-mixed decorrelated seeds. Exposed so a single
/// trial of a sweep can be reproduced in isolation.
pub fn trial_seed(base: u64, trial: u32) -> u64 {
    if trial == 0 {
        return base;
    }
    let mut z = base
        ^ u64::from(trial)
            .wrapping_add(1)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A sensible worker count for sweeps: the machine's available parallelism
/// (1 when it cannot be determined).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn flat_len(configs: usize, per_config_trials: u32) -> u32 {
    let total = configs as u64 * u64::from(per_config_trials);
    u32::try_from(total).expect("sweep too large: configs x trials overflows u32")
}

fn unflatten<T>(flat: Vec<T>, per_config_trials: u32) -> Vec<Vec<T>> {
    let mut per_config = Vec::new();
    let mut flat = flat.into_iter();
    loop {
        let chunk: Vec<T> = flat.by_ref().take(per_config_trials as usize).collect();
        if chunk.is_empty() {
            break;
        }
        per_config.push(chunk);
    }
    per_config
}

/// Sweeps an arbitrary config grid: runs `per_config_trials` evaluations of
/// `f` for every element of `configs`, fanning the flattened
/// (config × trial) index space over the batch dispatcher. Returns one
/// result vector per config, trials in index order (deterministic under
/// thread scheduling, like [`run_trials`]).
///
/// `f` receives `(config, config_index, trial_index)` and must derive all
/// randomness from those (e.g. via [`trial_seed`]).
///
/// This is the engine for *analytic* sweeps (no simulation world). For
/// packet-level scenario grids use [`run_scenarios`], which additionally
/// pools worlds.
///
/// # Panics
///
/// Propagates panics from `f` and panics if `threads` is zero.
pub fn run_grid<C, T, F>(configs: &[C], threads: usize, per_config_trials: u32, f: F) -> Vec<Vec<T>>
where
    C: Sync,
    T: Send,
    F: Fn(&C, usize, u32) -> T + Sync,
{
    assert!(threads > 0, "need at least one worker thread");
    if configs.is_empty() || per_config_trials == 0 {
        return configs.iter().map(|_| Vec::new()).collect();
    }
    let total = flat_len(configs.len(), per_config_trials);
    let flat = run_trials_stateful(
        total,
        threads,
        TrialBudget::auto(),
        || (),
        |(), i| {
            let cfg = (i / per_config_trials) as usize;
            let trial = i % per_config_trials;
            f(&configs[cfg], cfg, trial)
        },
    );
    unflatten(flat, per_config_trials)
}

/// Assigns each config a pool-shelf group by structural fingerprint, in
/// first-occurrence order. Returns `(group index per config, group count)`.
/// Shared by [`run_scenarios_detailed`] and [`run_fleets`] so the two
/// engines cannot drift in how they key their pools.
fn fingerprint_groups(fingerprints: impl Iterator<Item = u64>) -> (Vec<usize>, usize) {
    let mut group_of = Vec::new();
    let mut seen: Vec<u64> = Vec::new();
    for fp in fingerprints {
        let group = match seen.iter().position(|&g| g == fp) {
            Some(g) => g,
            None => {
                seen.push(fp);
                seen.len() - 1
            }
        };
        group_of.push(group);
    }
    let groups = seen.len();
    (group_of, groups)
}

/// Counters describing how much construction a scenario sweep avoided.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepStats {
    /// Scenario trials executed.
    pub trials: u64,
    /// Worlds constructed from scratch (`Scenario::build`).
    pub worlds_built: u64,
    /// Worlds adopted from the pool after a worker crossed configs.
    pub worlds_adopted: u64,
    /// Distinct structural config shapes in the grid (pool shelves).
    pub config_groups: u64,
    /// Raw pool counters (hits/misses), for sweep users who want pooling
    /// effectiveness without a debugger: `pool.hit_rate()` is the share of
    /// shape-boundary crossings served from the shelf.
    pub pool: WorldPoolStats,
}

impl SweepStats {
    /// Share of trials that ran on a reused world instead of a fresh
    /// build — the sweep-level hit rate (shelf handoffs *and* worker-local
    /// rewinds both count as reuse).
    pub fn reuse_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            (self.trials - self.worlds_built.min(self.trials)) as f64 / self.trials as f64
        }
    }
}

/// Sweeps a grid of packet-level scenarios: `per_config_trials` trials per
/// [`ScenarioConfig`], flattened over the batch dispatcher, with netsim
/// worlds **pooled and reset** across trials instead of rebuilt.
///
/// Each worker thread keeps the scenario for the config it is currently
/// inside; per trial it is rewound with [`Scenario::reset`] under
/// [`trial_seed`]`(config.seed, trial)` — byte-identical to a fresh
/// [`Scenario::build`] at that seed, at a fraction of the cost. The
/// [`WorldPool`] is keyed by [`ScenarioConfig::structural_fingerprint`]
/// (not config position), so when a worker crosses a config boundary
/// within one *shape group* — e.g. a seed sweep — it keeps its world and
/// just rewinds it, and shelved worlds serve every same-shape grid point.
/// Construction cost is therefore O(shapes + threads), not
/// O(configs × trials).
///
/// `f` receives the reset scenario plus `(config_index, trial_index)`;
/// results come back per config, in trial order, independent of scheduling.
///
/// # Panics
///
/// Propagates panics from `f` and panics if `threads` is zero.
pub fn run_scenarios<T, F>(
    configs: &[ScenarioConfig],
    threads: usize,
    per_config_trials: u32,
    f: F,
) -> Vec<Vec<T>>
where
    T: Send,
    F: Fn(&mut Scenario, usize, u32) -> T + Sync,
{
    run_scenarios_detailed(configs, threads, per_config_trials, f).0
}

/// [`run_scenarios`], also reporting pool-effectiveness counters.
///
/// # Panics
///
/// Propagates panics from `f` and panics if `threads` is zero.
pub fn run_scenarios_detailed<T, F>(
    configs: &[ScenarioConfig],
    threads: usize,
    per_config_trials: u32,
    f: F,
) -> (Vec<Vec<T>>, SweepStats)
where
    T: Send,
    F: Fn(&mut Scenario, usize, u32) -> T + Sync,
{
    assert!(threads > 0, "need at least one worker thread");
    if configs.is_empty() || per_config_trials == 0 {
        return (
            configs.iter().map(|_| Vec::new()).collect(),
            SweepStats::default(),
        );
    }
    let total = flat_len(configs.len(), per_config_trials);
    // Group configs by structural fingerprint: same-shape grid points
    // (differing only in seed) share one pool shelf — and a worker that
    // crosses between them keeps its world and merely rewinds it.
    let (group_of, groups) =
        fingerprint_groups(configs.iter().map(ScenarioConfig::structural_fingerprint));
    let pool = WorldPool::new(groups);
    let group_of = &group_of[..];

    // A worker's cache: the scenario for the shape group it is currently
    // inside. Returned to the pool when the worker crosses into another
    // group; whatever is still cached when workers finish is dropped.
    let flat = run_trials_stateful(
        total,
        threads,
        TrialBudget::auto(),
        || None::<(usize, Scenario)>,
        |cache, i| {
            let cfg_idx = (i / per_config_trials) as usize;
            let trial = i % per_config_trials;
            let group = group_of[cfg_idx];
            let config = &configs[cfg_idx];
            let seed = trial_seed(config.seed, trial);
            if cache.as_ref().map(|(k, _)| *k) == Some(group) {
                // Same shape (possibly a different config): rewinding under
                // the trial seed is all a shape-equal world needs.
                let (_, scenario) = cache.as_mut().expect("checked above");
                scenario.reset(seed);
            } else {
                if let Some((old_group, s)) = cache.take() {
                    pool.checkin(old_group, s.into_world());
                }
                // Build/adopt directly at the trial seed — both leave the
                // scenario reset and ready, so no second reset is needed.
                let trial_config = ScenarioConfig {
                    seed,
                    ..config.clone()
                };
                let scenario = match pool.checkout(group) {
                    Some(world) => Scenario::adopt(world, trial_config),
                    None => Scenario::build(trial_config),
                };
                *cache = Some((group, scenario));
            }
            let (_, scenario) = cache.as_mut().expect("cache populated above");
            f(scenario, cfg_idx, trial)
        },
    );
    // The pool's own counters are the single source of truth: a checkout
    // miss is exactly a build, a hit exactly an adoption.
    let pool_stats = pool.stats();
    let stats = SweepStats {
        trials: u64::from(total),
        worlds_built: pool_stats.misses,
        worlds_adopted: pool_stats.reused,
        config_groups: groups as u64,
        pool: pool_stats,
    };
    (unflatten(flat, per_config_trials), stats)
}

// ---------------------------------------------------------------------
// Fleet sweeps: population trials fan out over the same dispatcher, with
// fleets pooled and reset like worlds.
// ---------------------------------------------------------------------

/// Sweeps a grid of population simulations: `per_config_trials` trials per
/// [`FleetConfig`], flattened over the lock-free batch dispatcher, with
/// [`Fleet`] state **pooled and reset** across trials instead of
/// reallocated — the population analogue of [`run_scenarios`].
///
/// Pool shelves are keyed by [`FleetConfig::structural_fingerprint`], so a
/// seed sweep reuses one set of state columns per worker; per trial the
/// fleet is rewound with [`Fleet::reset`] under
/// [`trial_seed`]`(config.seed, trial)`, byte-identical to a fresh
/// [`Fleet::new`] at that seed. `f` receives the reset fleet plus
/// `(config_index, trial_index)` and typically runs it to its horizon;
/// results come back per config, in trial order, independent of thread
/// count and scheduling.
///
/// # Panics
///
/// Propagates panics from `f` and panics if `threads` is zero.
pub fn run_fleets<T, F>(
    configs: &[FleetConfig],
    threads: usize,
    per_config_trials: u32,
    f: F,
) -> (Vec<Vec<T>>, SweepStats)
where
    T: Send,
    F: Fn(&mut Fleet, usize, u32) -> T + Sync,
{
    assert!(threads > 0, "need at least one worker thread");
    if configs.is_empty() || per_config_trials == 0 {
        return (
            configs.iter().map(|_| Vec::new()).collect(),
            SweepStats::default(),
        );
    }
    let total = flat_len(configs.len(), per_config_trials);
    let (group_of, groups) =
        fingerprint_groups(configs.iter().map(FleetConfig::structural_fingerprint));
    let pool: ObjectPool<Fleet> = ObjectPool::new(groups);
    let group_of = &group_of[..];

    let flat = run_trials_stateful(
        total,
        threads,
        TrialBudget::auto(),
        || None::<(usize, Fleet)>,
        |cache, i| {
            let cfg_idx = (i / per_config_trials) as usize;
            let trial = i % per_config_trials;
            let group = group_of[cfg_idx];
            let config = &configs[cfg_idx];
            let seed = trial_seed(config.seed, trial);
            if cache.as_ref().map(|(k, _)| *k) == Some(group) {
                let (_, fleet) = cache.as_mut().expect("checked above");
                fleet.reset(seed);
            } else {
                if let Some((old_group, fleet)) = cache.take() {
                    pool.checkin(old_group, fleet);
                }
                let trial_config = FleetConfig {
                    seed,
                    ..config.clone()
                };
                let fleet = match pool.checkout(group) {
                    Some(mut fleet) => {
                        // Same shape ⇒ same client count: reconfigure
                        // reuses every column allocation.
                        fleet.reconfigure(trial_config);
                        fleet
                    }
                    None => Fleet::new(trial_config),
                };
                *cache = Some((group, fleet));
            }
            let (_, fleet) = cache.as_mut().expect("cache populated above");
            f(fleet, cfg_idx, trial)
        },
    );
    let pool_stats = pool.stats();
    let stats = SweepStats {
        trials: u64::from(total),
        worlds_built: pool_stats.misses,
        worlds_adopted: pool_stats.reused,
        config_groups: groups as u64,
        pool: pool_stats,
    };
    (unflatten(flat, per_config_trials), stats)
}

/// Aggregates a boolean sweep result (one inner vector per config, as
/// returned by [`run_scenarios`]/[`run_grid`]) into per-config
/// [`SuccessRate`]s.
pub fn success_rates(outcomes: &[Vec<bool>]) -> Vec<SuccessRate> {
    outcomes.iter().map(|o| success_rate(o)).collect()
}

/// Summary statistics over boolean trial outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SuccessRate {
    /// Trials run.
    pub trials: u32,
    /// Successful trials.
    pub successes: u32,
    /// Point estimate.
    pub rate: f64,
    /// Half-width of the 95 % normal-approximation confidence interval.
    pub ci95_half_width: f64,
}

/// Aggregates boolean outcomes into a [`SuccessRate`].
pub fn success_rate(outcomes: &[bool]) -> SuccessRate {
    let trials = outcomes.len() as u32;
    let successes = outcomes.iter().filter(|&&b| b).count() as u32;
    let rate = if trials == 0 {
        0.0
    } else {
        f64::from(successes) / f64::from(trials)
    };
    let ci95_half_width = if trials == 0 {
        0.0
    } else {
        1.96 * (rate * (1.0 - rate) / f64::from(trials)).sqrt()
    };
    SuccessRate {
        trials,
        successes,
        rate,
        ci95_half_width,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::rng::SimRng;
    use rand::Rng;

    #[test]
    fn results_are_in_trial_order() {
        let out = run_trials(100, 8, |i| i * 2);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u32 * 2);
        }
    }

    #[test]
    fn parallel_equals_serial() {
        let f = |i: u32| {
            let mut rng = SimRng::seed_from(1000 + u64::from(i));
            rng.gen::<u64>()
        };
        let serial = run_trials(64, 1, f);
        let parallel = run_trials(64, 8, f);
        assert_eq!(serial, parallel, "outcomes independent of threading");
    }

    #[test]
    fn parallel_equals_serial_across_budgets() {
        let f = |i: u32| {
            let mut rng = SimRng::seed_from(9000 + u64::from(i));
            rng.gen::<u64>()
        };
        let reference = run_trials_with_budget(257, 1, TrialBudget::auto(), f);
        for batch in [1usize, 2, 7, 64, 300] {
            let got = run_trials_with_budget(257, 6, TrialBudget::fixed(batch), f);
            assert_eq!(reference, got, "batch size {batch} changed outcomes");
        }
    }

    #[test]
    fn matches_baseline_implementation() {
        let f = |i: u32| u64::from(i).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        assert_eq!(run_trials(500, 4, f), baseline_run_trials(500, 4, f));
    }

    #[test]
    fn zero_trials_spawns_nothing() {
        // Would deadlock/panic if a worker were spawned with a waiting
        // barrier-style closure; mostly documents the no-spawn guarantee.
        let out: Vec<u32> = run_trials(0, 4, |i| i);
        assert!(out.is_empty());
        let out: Vec<u32> = run_trials_with_budget(0, 4, TrialBudget::fixed(3), |i| i);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        run_trials(1, 0, |i| i);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_rejected() {
        TrialBudget::fixed(0);
    }

    #[test]
    fn auto_budget_scales_with_workload() {
        assert_eq!(TrialBudget::auto().resolve(10_000, 8), 157);
        assert_eq!(TrialBudget::auto().resolve(4, 8), 1);
        assert_eq!(TrialBudget::fixed(32).resolve(10_000, 8), 32);
    }

    #[test]
    fn more_threads_than_trials_is_fine() {
        let out = run_trials(3, 16, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn success_rate_aggregation() {
        let outcomes = vec![true, true, false, true];
        let s = success_rate(&outcomes);
        assert_eq!(s.trials, 4);
        assert_eq!(s.successes, 3);
        assert!((s.rate - 0.75).abs() < 1e-12);
        assert!(s.ci95_half_width > 0.0);
        let empty = success_rate(&[]);
        assert_eq!(empty.rate, 0.0);
    }

    #[test]
    fn stateful_state_is_per_worker_and_reused() {
        use std::sync::atomic::AtomicUsize;
        let inits = AtomicUsize::new(0);
        let out = run_trials_stateful(
            100,
            4,
            TrialBudget::fixed(5),
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0u32
            },
            |calls, i| {
                *calls += 1;
                i * 3
            },
        );
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u32 * 3);
        }
        assert!(
            inits.load(Ordering::Relaxed) <= 4,
            "at most one state per worker"
        );
    }

    #[test]
    fn trial_seed_is_deterministic_and_spreads() {
        assert_eq!(trial_seed(7, 0), trial_seed(7, 0));
        let mut seeds: Vec<u64> = (0..64).map(|t| trial_seed(42, t)).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 64, "consecutive trials get distinct seeds");
        assert_ne!(trial_seed(1, 0), trial_seed(2, 0));
    }

    #[test]
    fn run_grid_shapes_and_orders_results() {
        let grid = run_grid(&[10u32, 20, 30], 4, 5, |cfg, ci, t| (*cfg, ci, t));
        assert_eq!(grid.len(), 3);
        for (ci, rows) in grid.iter().enumerate() {
            assert_eq!(rows.len(), 5);
            for (t, row) in rows.iter().enumerate() {
                assert_eq!(*row, ((ci as u32 + 1) * 10, ci, t as u32));
            }
        }
        // Degenerate shapes.
        let empty: Vec<Vec<u32>> = run_grid(&[] as &[u32], 2, 5, |_, _, _| 0);
        assert!(empty.is_empty());
        let zero_trials = run_grid(&[1u32], 2, 0, |_, _, _| 0);
        assert_eq!(zero_trials, vec![Vec::<u32>::new()]);
    }

    fn sweep_config(seed: u64) -> crate::scenario::ScenarioConfig {
        use crate::experiments::compressed_chronos;
        use netsim::time::SimDuration;
        crate::scenario::ScenarioConfig {
            seed,
            benign_universe: 24,
            ns_count: 4,
            chronos: compressed_chronos(2, SimDuration::from_secs(200)),
            ..crate::scenario::ScenarioConfig::default()
        }
    }

    /// The heart of the sweep engine's correctness: pooled/reset worlds must
    /// be indistinguishable from per-trial rebuilds.
    #[test]
    fn run_scenarios_matches_per_trial_rebuild() {
        use netsim::time::SimDuration;
        let configs = vec![sweep_config(100), sweep_config(900)];
        let probe = |s: &mut Scenario| {
            s.run_pool_generation(SimDuration::from_secs(600));
            (
                s.chronos().pool().servers().to_vec(),
                s.world.stats(),
                s.chronos().stats(),
            )
        };
        let (pooled, stats) = run_scenarios_detailed(&configs, 3, 6, |s, _, _| probe(s));
        assert_eq!(stats.trials, 12);
        assert!(
            stats.worlds_built < 12,
            "pooling must beat one build per trial: {stats:?}"
        );
        for (ci, config) in configs.iter().enumerate() {
            for t in 0..6u32 {
                let mut fresh = Scenario::build(ScenarioConfig {
                    seed: trial_seed(config.seed, t),
                    ..config.clone()
                });
                assert_eq!(
                    pooled[ci][t as usize],
                    probe(&mut fresh),
                    "config {ci} trial {t} diverged from a fresh build"
                );
            }
        }
    }

    /// Same-shape grid points (a seed sweep) must share pooled worlds: the
    /// fingerprint keying bounds construction by the worker count, not the
    /// config count, and the hit rate rises accordingly.
    #[test]
    fn same_shape_grid_shares_pooled_worlds() {
        use netsim::time::SimDuration;
        let threads = 3usize;
        // 8 configs differing only in seed: one structural group.
        let same_shape: Vec<ScenarioConfig> = (0..8).map(|i| sweep_config(5_000 + i)).collect();
        let (_, same_stats) = run_scenarios_detailed(&same_shape, threads, 2, |s, _, _| {
            s.run_pool_generation(SimDuration::from_secs(200));
            s.chronos().pool().len()
        });
        assert_eq!(same_stats.config_groups, 1, "one shape, one shelf");
        assert!(
            same_stats.worlds_built <= threads as u64,
            "seed sweep must build at most one world per worker: {same_stats:?}"
        );
        // A mixed-shape grid of the same size cannot pool across shapes.
        let mixed: Vec<ScenarioConfig> = (0..8)
            .map(|i| {
                let mut c = sweep_config(5_000 + i);
                c.benign_universe = 16 + 2 * i as usize; // distinct shapes
                c
            })
            .collect();
        let (_, mixed_stats) = run_scenarios_detailed(&mixed, threads, 2, |s, _, _| {
            s.run_pool_generation(SimDuration::from_secs(200));
            s.chronos().pool().len()
        });
        assert_eq!(mixed_stats.config_groups, 8);
        assert!(
            same_stats.reuse_rate() > mixed_stats.reuse_rate(),
            "hit rate must rise on a same-shape grid: {:?} (rate {:.2}) vs {:?} (rate {:.2})",
            same_stats,
            same_stats.reuse_rate(),
            mixed_stats,
            mixed_stats.reuse_rate()
        );
        assert!(same_stats.worlds_built < mixed_stats.worlds_built);
    }

    #[test]
    fn fleet_sweep_pools_and_matches_fresh_runs() {
        use netsim::time::SimDuration;
        let config = FleetConfig {
            seed: 40,
            clients: 24,
            universe: 96,
            stagger: SimDuration::from_secs(100),
            horizon: SimDuration::from_secs(1_200),
            chronos: crate::experiments::compressed_chronos(4, SimDuration::from_secs(200)),
            ..FleetConfig::default()
        };
        let configs = vec![
            config.clone(),
            FleetConfig {
                seed: 90,
                ..config.clone()
            },
        ];
        let (reports, stats) = run_fleets(&configs, 3, 4, |fleet, _, _| fleet.run());
        assert_eq!(stats.trials, 8);
        assert_eq!(stats.config_groups, 1, "seed-only grid is one shape");
        assert!(
            stats.worlds_built <= 3,
            "fleets pool like worlds: {stats:?}"
        );
        // Every pooled trial equals a fresh fleet at the derived seed.
        for (ci, cfg) in configs.iter().enumerate() {
            for t in 0..4u32 {
                let fresh = Fleet::new(FleetConfig {
                    seed: trial_seed(cfg.seed, t),
                    ..cfg.clone()
                })
                .run();
                assert_eq!(reports[ci][t as usize], fresh, "config {ci} trial {t}");
            }
        }
    }

    /// A real (small) use: frag-attack capture probability across seeds.
    #[test]
    fn parallel_scenario_trials() {
        use crate::experiments::compressed_chronos;
        use crate::scenario::{Scenario, ScenarioConfig};
        use attacklab::plan::{AttackPlan, PoisonStrategy};
        use netsim::time::{SimDuration, SimTime};

        let outcomes = run_trials(6, 3, |i| {
            let mut s = Scenario::build(ScenarioConfig {
                seed: 7000 + u64::from(i),
                benign_universe: 64,
                chronos: compressed_chronos(6, SimDuration::from_secs(200)),
                attack: Some(AttackPlan {
                    strategy: PoisonStrategy::Fragmentation {
                        start: SimTime::ZERO,
                    },
                    ..AttackPlan::paper_default(SimDuration::from_millis(500))
                }),
                ..ScenarioConfig::default()
            });
            s.run_pool_generation(SimDuration::from_secs(2200));
            s.attacker_fraction() >= 2.0 / 3.0
        });
        let rate = success_rate(&outcomes);
        assert!(
            rate.rate >= 0.8,
            "sequential-ID capture should almost always land: {rate:?}"
        );
    }
}
