//! Parallel Monte-Carlo trial execution.
//!
//! Packet-level trials (one full scenario per sample) are embarrassingly
//! parallel: each gets its own seed-derived world. [`run_trials`] fans them
//! out over scoped threads and returns results in trial order, so outcomes
//! are independent of thread scheduling.
//!
//! The lock-free batch dispatcher itself — pre-allocated slots, disjoint
//! `&mut` batches claimed off an atomic cursor, [`TrialBudget`] batching —
//! lives in [`netsim::par`] so the fleet engine's intra-fleet shard
//! stepping can run on the same machinery without a circular dependency;
//! this module re-exports the trial API and builds the *sweep* engines on
//! top: scenario grids with pooled worlds ([`run_scenarios`]) and fleet
//! grids with pooled state columns ([`run_fleets`]).

use crate::scenario::{Scenario, ScenarioConfig};
use fleet::config::FleetConfig;
use fleet::engine::Fleet;
use netsim::pool::{ObjectPool, WorldPool, WorldPoolStats};
use serde::{Deserialize, Serialize};

#[doc(hidden)]
pub use netsim::par::baseline_run_trials;
pub use netsim::par::{
    default_threads, run_trials, run_trials_stateful, run_trials_with_budget, TrialBudget,
};

// ---------------------------------------------------------------------
// Scenario sweeps: a flattened (config × trial) index space over the
// batch dispatcher, with netsim worlds pooled and reset across trials.
// ---------------------------------------------------------------------

/// Derives the world seed for one trial of a sweep point from the config's
/// base seed. Trial 0 runs the base seed itself — so a 1-trial sweep
/// reproduces a plain `Scenario::build(config)` run exactly — and later
/// trials get SplitMix64-mixed decorrelated seeds. Exposed so a single
/// trial of a sweep can be reproduced in isolation.
pub fn trial_seed(base: u64, trial: u32) -> u64 {
    if trial == 0 {
        return base;
    }
    let mut z = base
        ^ u64::from(trial)
            .wrapping_add(1)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn flat_len(configs: usize, per_config_trials: u32) -> u32 {
    let total = configs as u64 * u64::from(per_config_trials);
    u32::try_from(total).expect("sweep too large: configs x trials overflows u32")
}

fn unflatten<T>(flat: Vec<T>, per_config_trials: u32) -> Vec<Vec<T>> {
    let mut per_config = Vec::new();
    let mut flat = flat.into_iter();
    loop {
        let chunk: Vec<T> = flat.by_ref().take(per_config_trials as usize).collect();
        if chunk.is_empty() {
            break;
        }
        per_config.push(chunk);
    }
    per_config
}

/// Sweeps an arbitrary config grid: runs `per_config_trials` evaluations of
/// `f` for every element of `configs`, fanning the flattened
/// (config × trial) index space over the batch dispatcher. Returns one
/// result vector per config, trials in index order (deterministic under
/// thread scheduling, like [`run_trials`]).
///
/// `f` receives `(config, config_index, trial_index)` and must derive all
/// randomness from those (e.g. via [`trial_seed`]).
///
/// This is the engine for *analytic* sweeps (no simulation world). For
/// packet-level scenario grids use [`run_scenarios`], which additionally
/// pools worlds.
///
/// # Panics
///
/// Propagates panics from `f` and panics if `threads` is zero.
pub fn run_grid<C, T, F>(configs: &[C], threads: usize, per_config_trials: u32, f: F) -> Vec<Vec<T>>
where
    C: Sync,
    T: Send,
    F: Fn(&C, usize, u32) -> T + Sync,
{
    assert!(threads > 0, "need at least one worker thread");
    if configs.is_empty() || per_config_trials == 0 {
        return configs.iter().map(|_| Vec::new()).collect();
    }
    let total = flat_len(configs.len(), per_config_trials);
    let flat = run_trials_stateful(
        total,
        threads,
        TrialBudget::auto(),
        || (),
        |(), i| {
            let cfg = (i / per_config_trials) as usize;
            let trial = i % per_config_trials;
            f(&configs[cfg], cfg, trial)
        },
    );
    unflatten(flat, per_config_trials)
}

/// Assigns each config a pool-shelf group by structural fingerprint, in
/// first-occurrence order. Returns `(group index per config, group count)`.
/// Shared by [`run_scenarios_detailed`] and [`run_fleets`] so the two
/// engines cannot drift in how they key their pools.
fn fingerprint_groups(fingerprints: impl Iterator<Item = u64>) -> (Vec<usize>, usize) {
    let mut group_of = Vec::new();
    let mut seen: Vec<u64> = Vec::new();
    for fp in fingerprints {
        let group = match seen.iter().position(|&g| g == fp) {
            Some(g) => g,
            None => {
                seen.push(fp);
                seen.len() - 1
            }
        };
        group_of.push(group);
    }
    let groups = seen.len();
    (group_of, groups)
}

/// Counters describing how much construction a scenario sweep avoided.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepStats {
    /// Scenario trials executed.
    pub trials: u64,
    /// Worlds constructed from scratch (`Scenario::build`).
    pub worlds_built: u64,
    /// Worlds adopted from the pool after a worker crossed configs.
    pub worlds_adopted: u64,
    /// Distinct structural config shapes in the grid (pool shelves).
    pub config_groups: u64,
    /// Raw pool counters (hits/misses), for sweep users who want pooling
    /// effectiveness without a debugger: `pool.hit_rate()` is the share of
    /// shape-boundary crossings served from the shelf.
    pub pool: WorldPoolStats,
}

impl SweepStats {
    /// Share of trials that ran on a reused world instead of a fresh
    /// build — the sweep-level hit rate (shelf handoffs *and* worker-local
    /// rewinds both count as reuse).
    pub fn reuse_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            (self.trials - self.worlds_built.min(self.trials)) as f64 / self.trials as f64
        }
    }
}

/// Sweeps a grid of packet-level scenarios: `per_config_trials` trials per
/// [`ScenarioConfig`], flattened over the batch dispatcher, with netsim
/// worlds **pooled and reset** across trials instead of rebuilt.
///
/// Each worker thread keeps the scenario for the config it is currently
/// inside; per trial it is rewound with [`Scenario::reset`] under
/// [`trial_seed`]`(config.seed, trial)` — byte-identical to a fresh
/// [`Scenario::build`] at that seed, at a fraction of the cost. The
/// [`WorldPool`] is keyed by [`ScenarioConfig::structural_fingerprint`]
/// (not config position), so when a worker crosses a config boundary
/// within one *shape group* — e.g. a seed sweep — it keeps its world and
/// just rewinds it, and shelved worlds serve every same-shape grid point.
/// Construction cost is therefore O(shapes + threads), not
/// O(configs × trials).
///
/// `f` receives the reset scenario plus `(config_index, trial_index)`;
/// results come back per config, in trial order, independent of scheduling.
///
/// # Panics
///
/// Propagates panics from `f` and panics if `threads` is zero.
pub fn run_scenarios<T, F>(
    configs: &[ScenarioConfig],
    threads: usize,
    per_config_trials: u32,
    f: F,
) -> Vec<Vec<T>>
where
    T: Send,
    F: Fn(&mut Scenario, usize, u32) -> T + Sync,
{
    run_scenarios_detailed(configs, threads, per_config_trials, f).0
}

/// [`run_scenarios`], also reporting pool-effectiveness counters.
///
/// # Panics
///
/// Propagates panics from `f` and panics if `threads` is zero.
pub fn run_scenarios_detailed<T, F>(
    configs: &[ScenarioConfig],
    threads: usize,
    per_config_trials: u32,
    f: F,
) -> (Vec<Vec<T>>, SweepStats)
where
    T: Send,
    F: Fn(&mut Scenario, usize, u32) -> T + Sync,
{
    assert!(threads > 0, "need at least one worker thread");
    if configs.is_empty() || per_config_trials == 0 {
        return (
            configs.iter().map(|_| Vec::new()).collect(),
            SweepStats::default(),
        );
    }
    let total = flat_len(configs.len(), per_config_trials);
    // Group configs by structural fingerprint: same-shape grid points
    // (differing only in seed) share one pool shelf — and a worker that
    // crosses between them keeps its world and merely rewinds it.
    let (group_of, groups) =
        fingerprint_groups(configs.iter().map(ScenarioConfig::structural_fingerprint));
    let pool = WorldPool::new(groups);
    let group_of = &group_of[..];

    // A worker's cache: the scenario for the shape group it is currently
    // inside. Returned to the pool when the worker crosses into another
    // group; whatever is still cached when workers finish is dropped.
    let flat = run_trials_stateful(
        total,
        threads,
        TrialBudget::auto(),
        || None::<(usize, Scenario)>,
        |cache, i| {
            let cfg_idx = (i / per_config_trials) as usize;
            let trial = i % per_config_trials;
            let group = group_of[cfg_idx];
            let config = &configs[cfg_idx];
            let seed = trial_seed(config.seed, trial);
            if cache.as_ref().map(|(k, _)| *k) == Some(group) {
                // Same shape (possibly a different config): rewinding under
                // the trial seed is all a shape-equal world needs.
                let (_, scenario) = cache.as_mut().expect("checked above");
                scenario.reset(seed);
            } else {
                if let Some((old_group, s)) = cache.take() {
                    pool.checkin(old_group, s.into_world());
                }
                // Build/adopt directly at the trial seed — both leave the
                // scenario reset and ready, so no second reset is needed.
                let trial_config = ScenarioConfig {
                    seed,
                    ..config.clone()
                };
                let scenario = match pool.checkout(group) {
                    Some(world) => Scenario::adopt(world, trial_config),
                    None => Scenario::build(trial_config),
                };
                *cache = Some((group, scenario));
            }
            let (_, scenario) = cache.as_mut().expect("cache populated above");
            f(scenario, cfg_idx, trial)
        },
    );
    // The pool's own counters are the single source of truth: a checkout
    // miss is exactly a build, a hit exactly an adoption.
    let pool_stats = pool.stats();
    let stats = SweepStats {
        trials: u64::from(total),
        worlds_built: pool_stats.misses,
        worlds_adopted: pool_stats.reused,
        config_groups: groups as u64,
        pool: pool_stats,
    };
    (unflatten(flat, per_config_trials), stats)
}

// ---------------------------------------------------------------------
// Fleet sweeps: population trials fan out over the same dispatcher, with
// fleets pooled and reset like worlds.
// ---------------------------------------------------------------------

/// Sweeps a grid of population simulations: `per_config_trials` trials per
/// [`FleetConfig`], flattened over the lock-free batch dispatcher, with
/// [`Fleet`] state **pooled and reset** across trials instead of
/// reallocated — the population analogue of [`run_scenarios`].
///
/// Pool shelves are keyed by [`FleetConfig::structural_fingerprint`], so a
/// seed sweep reuses one set of state columns per worker; per trial the
/// fleet is rewound with [`Fleet::reset`] under
/// [`trial_seed`]`(config.seed, trial)`, byte-identical to a fresh
/// [`Fleet::new`] at that seed. `f` receives the reset fleet plus
/// `(config_index, trial_index)` and typically runs it to its horizon;
/// results come back per config, in trial order, independent of thread
/// count and scheduling.
///
/// # Panics
///
/// Propagates panics from `f` and panics if `threads` is zero.
pub fn run_fleets<T, F>(
    configs: &[FleetConfig],
    threads: usize,
    per_config_trials: u32,
    f: F,
) -> (Vec<Vec<T>>, SweepStats)
where
    T: Send,
    F: Fn(&mut Fleet, usize, u32) -> T + Sync,
{
    assert!(threads > 0, "need at least one worker thread");
    if configs.is_empty() || per_config_trials == 0 {
        return (
            configs.iter().map(|_| Vec::new()).collect(),
            SweepStats::default(),
        );
    }
    let total = flat_len(configs.len(), per_config_trials);
    let (group_of, groups) =
        fingerprint_groups(configs.iter().map(FleetConfig::structural_fingerprint));
    let pool: ObjectPool<Fleet> = ObjectPool::new(groups);
    let group_of = &group_of[..];

    let flat = run_trials_stateful(
        total,
        threads,
        TrialBudget::auto(),
        || None::<(usize, Fleet)>,
        |cache, i| {
            let cfg_idx = (i / per_config_trials) as usize;
            let trial = i % per_config_trials;
            let group = group_of[cfg_idx];
            let config = &configs[cfg_idx];
            let seed = trial_seed(config.seed, trial);
            if cache.as_ref().map(|(k, _)| *k) == Some(group) {
                let (_, fleet) = cache.as_mut().expect("checked above");
                // Same shape ≠ same config: the fingerprint deliberately
                // ignores `threads` (a pure wall-clock knob), so carry the
                // target config's worker count onto the reused fleet.
                fleet.set_threads(config.threads);
                fleet.reset(seed);
            } else {
                if let Some((old_group, fleet)) = cache.take() {
                    pool.checkin(old_group, fleet);
                }
                let trial_config = FleetConfig {
                    seed,
                    ..config.clone()
                };
                let fleet = match pool.checkout(group) {
                    Some(mut fleet) => {
                        // Same shape ⇒ same client count: reconfigure
                        // reuses every column allocation.
                        fleet.reconfigure(trial_config);
                        fleet
                    }
                    None => Fleet::new(trial_config),
                };
                *cache = Some((group, fleet));
            }
            let (_, fleet) = cache.as_mut().expect("cache populated above");
            f(fleet, cfg_idx, trial)
        },
    );
    let pool_stats = pool.stats();
    let stats = SweepStats {
        trials: u64::from(total),
        worlds_built: pool_stats.misses,
        worlds_adopted: pool_stats.reused,
        config_groups: groups as u64,
        pool: pool_stats,
    };
    (unflatten(flat, per_config_trials), stats)
}

/// Aggregates a boolean sweep result (one inner vector per config, as
/// returned by [`run_scenarios`]/[`run_grid`]) into per-config
/// [`SuccessRate`]s.
pub fn success_rates(outcomes: &[Vec<bool>]) -> Vec<SuccessRate> {
    outcomes.iter().map(|o| success_rate(o)).collect()
}

/// Summary statistics over boolean trial outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SuccessRate {
    /// Trials run.
    pub trials: u32,
    /// Successful trials.
    pub successes: u32,
    /// Point estimate.
    pub rate: f64,
    /// Half-width of the 95 % normal-approximation confidence interval.
    pub ci95_half_width: f64,
}

/// Aggregates boolean outcomes into a [`SuccessRate`].
pub fn success_rate(outcomes: &[bool]) -> SuccessRate {
    let trials = outcomes.len() as u32;
    let successes = outcomes.iter().filter(|&&b| b).count() as u32;
    let rate = if trials == 0 {
        0.0
    } else {
        f64::from(successes) / f64::from(trials)
    };
    let ci95_half_width = if trials == 0 {
        0.0
    } else {
        1.96 * (rate * (1.0 - rate) / f64::from(trials)).sqrt()
    };
    SuccessRate {
        trials,
        successes,
        rate,
        ci95_half_width,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_rate_aggregation() {
        let outcomes = vec![true, true, false, true];
        let s = success_rate(&outcomes);
        assert_eq!(s.trials, 4);
        assert_eq!(s.successes, 3);
        assert!((s.rate - 0.75).abs() < 1e-12);
        assert!(s.ci95_half_width > 0.0);
        let empty = success_rate(&[]);
        assert_eq!(empty.rate, 0.0);
    }

    #[test]
    fn trial_seed_is_deterministic_and_spreads() {
        assert_eq!(trial_seed(7, 0), trial_seed(7, 0));
        let mut seeds: Vec<u64> = (0..64).map(|t| trial_seed(42, t)).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 64, "consecutive trials get distinct seeds");
        assert_ne!(trial_seed(1, 0), trial_seed(2, 0));
    }

    #[test]
    fn run_grid_shapes_and_orders_results() {
        let grid = run_grid(&[10u32, 20, 30], 4, 5, |cfg, ci, t| (*cfg, ci, t));
        assert_eq!(grid.len(), 3);
        for (ci, rows) in grid.iter().enumerate() {
            assert_eq!(rows.len(), 5);
            for (t, row) in rows.iter().enumerate() {
                assert_eq!(*row, ((ci as u32 + 1) * 10, ci, t as u32));
            }
        }
        // Degenerate shapes.
        let empty: Vec<Vec<u32>> = run_grid(&[] as &[u32], 2, 5, |_, _, _| 0);
        assert!(empty.is_empty());
        let zero_trials = run_grid(&[1u32], 2, 0, |_, _, _| 0);
        assert_eq!(zero_trials, vec![Vec::<u32>::new()]);
    }

    fn sweep_config(seed: u64) -> crate::scenario::ScenarioConfig {
        use crate::experiments::compressed_chronos;
        use netsim::time::SimDuration;
        crate::scenario::ScenarioConfig {
            seed,
            benign_universe: 24,
            ns_count: 4,
            chronos: compressed_chronos(2, SimDuration::from_secs(200)),
            ..crate::scenario::ScenarioConfig::default()
        }
    }

    /// The heart of the sweep engine's correctness: pooled/reset worlds must
    /// be indistinguishable from per-trial rebuilds.
    #[test]
    fn run_scenarios_matches_per_trial_rebuild() {
        use netsim::time::SimDuration;
        let configs = vec![sweep_config(100), sweep_config(900)];
        let probe = |s: &mut Scenario| {
            s.run_pool_generation(SimDuration::from_secs(600));
            (
                s.chronos().pool().servers().to_vec(),
                s.world.stats(),
                s.chronos().stats(),
            )
        };
        let (pooled, stats) = run_scenarios_detailed(&configs, 3, 6, |s, _, _| probe(s));
        assert_eq!(stats.trials, 12);
        assert!(
            stats.worlds_built < 12,
            "pooling must beat one build per trial: {stats:?}"
        );
        for (ci, config) in configs.iter().enumerate() {
            for t in 0..6u32 {
                let mut fresh = Scenario::build(ScenarioConfig {
                    seed: trial_seed(config.seed, t),
                    ..config.clone()
                });
                assert_eq!(
                    pooled[ci][t as usize],
                    probe(&mut fresh),
                    "config {ci} trial {t} diverged from a fresh build"
                );
            }
        }
    }

    /// Same-shape grid points (a seed sweep) must share pooled worlds: the
    /// fingerprint keying bounds construction by the worker count, not the
    /// config count, and the hit rate rises accordingly.
    #[test]
    fn same_shape_grid_shares_pooled_worlds() {
        use netsim::time::SimDuration;
        let threads = 3usize;
        // 8 configs differing only in seed: one structural group.
        let same_shape: Vec<ScenarioConfig> = (0..8).map(|i| sweep_config(5_000 + i)).collect();
        let (_, same_stats) = run_scenarios_detailed(&same_shape, threads, 2, |s, _, _| {
            s.run_pool_generation(SimDuration::from_secs(200));
            s.chronos().pool().len()
        });
        assert_eq!(same_stats.config_groups, 1, "one shape, one shelf");
        assert!(
            same_stats.worlds_built <= threads as u64,
            "seed sweep must build at most one world per worker: {same_stats:?}"
        );
        // A mixed-shape grid of the same size cannot pool across shapes.
        let mixed: Vec<ScenarioConfig> = (0..8)
            .map(|i| {
                let mut c = sweep_config(5_000 + i);
                c.benign_universe = 16 + 2 * i as usize; // distinct shapes
                c
            })
            .collect();
        let (_, mixed_stats) = run_scenarios_detailed(&mixed, threads, 2, |s, _, _| {
            s.run_pool_generation(SimDuration::from_secs(200));
            s.chronos().pool().len()
        });
        assert_eq!(mixed_stats.config_groups, 8);
        assert!(
            same_stats.reuse_rate() > mixed_stats.reuse_rate(),
            "hit rate must rise on a same-shape grid: {:?} (rate {:.2}) vs {:?} (rate {:.2})",
            same_stats,
            same_stats.reuse_rate(),
            mixed_stats,
            mixed_stats.reuse_rate()
        );
        assert!(same_stats.worlds_built < mixed_stats.worlds_built);
    }

    #[test]
    fn fleet_sweep_pools_and_matches_fresh_runs() {
        use netsim::time::SimDuration;
        let config = FleetConfig {
            seed: 40,
            clients: 24,
            universe: 96,
            stagger: SimDuration::from_secs(100),
            horizon: SimDuration::from_secs(1_200),
            chronos: crate::experiments::compressed_chronos(4, SimDuration::from_secs(200)),
            ..FleetConfig::default()
        };
        let configs = vec![
            config.clone(),
            FleetConfig {
                seed: 90,
                ..config.clone()
            },
        ];
        let (reports, stats) = run_fleets(&configs, 3, 4, |fleet, _, _| fleet.run());
        assert_eq!(stats.trials, 8);
        assert_eq!(stats.config_groups, 1, "seed-only grid is one shape");
        assert!(
            stats.worlds_built <= 3,
            "fleets pool like worlds: {stats:?}"
        );
        // Every pooled trial equals a fresh fleet at the derived seed.
        for (ci, cfg) in configs.iter().enumerate() {
            for t in 0..4u32 {
                let fresh = Fleet::new(FleetConfig {
                    seed: trial_seed(cfg.seed, t),
                    ..cfg.clone()
                })
                .run();
                assert_eq!(reports[ci][t as usize], fresh, "config {ci} trial {t}");
            }
        }
    }

    /// Same-shape configs differing only in `threads` share one pool
    /// group (the fingerprint deliberately ignores the knob), so the
    /// cached-fleet reuse path must apply each config's own worker count
    /// rather than keeping whatever the fleet was built with.
    #[test]
    fn fleet_reuse_carries_the_threads_knob() {
        use netsim::time::SimDuration;
        let base = FleetConfig {
            seed: 5,
            clients: 8,
            universe: 96,
            stagger: SimDuration::from_secs(50),
            horizon: SimDuration::from_secs(400),
            chronos: crate::experiments::compressed_chronos(2, SimDuration::from_secs(200)),
            ..FleetConfig::default()
        };
        let configs = vec![
            FleetConfig {
                threads: 1,
                ..base.clone()
            },
            FleetConfig {
                threads: 3,
                ..base.clone()
            },
        ];
        // One outer worker serves both configs back to back, so config 1
        // is guaranteed to run on config 0's cached fleet.
        let (seen, stats) = run_fleets(&configs, 1, 1, |fleet, _, _| {
            fleet.run();
            fleet.config().threads
        });
        assert_eq!(stats.config_groups, 1, "threads must not split the pool");
        assert_eq!(seen[0][0], 1);
        assert_eq!(seen[1][0], 3, "reuse path must adopt the new knob");
    }

    /// A real (small) use: frag-attack capture probability across seeds.
    #[test]
    fn parallel_scenario_trials() {
        use crate::experiments::compressed_chronos;
        use crate::scenario::{Scenario, ScenarioConfig};
        use attacklab::plan::{AttackPlan, PoisonStrategy};
        use netsim::time::{SimDuration, SimTime};

        let outcomes = run_trials(6, 3, |i| {
            let mut s = Scenario::build(ScenarioConfig {
                seed: 7000 + u64::from(i),
                benign_universe: 64,
                chronos: compressed_chronos(6, SimDuration::from_secs(200)),
                attack: Some(AttackPlan {
                    strategy: PoisonStrategy::Fragmentation {
                        start: SimTime::ZERO,
                    },
                    ..AttackPlan::paper_default(SimDuration::from_millis(500))
                }),
                ..ScenarioConfig::default()
            });
            s.run_pool_generation(SimDuration::from_secs(2200));
            s.attacker_fraction() >= 2.0 / 3.0
        });
        let rate = success_rate(&outcomes);
        assert!(
            rate.rate >= 0.8,
            "sequential-ID capture should almost always land: {rate:?}"
        );
    }
}
