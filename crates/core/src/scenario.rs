//! Scenario construction: complete attack/defence worlds, wired.
//!
//! A scenario contains the full cast of the paper: the `pool.ntp.org`
//! authoritative servers and their rotating zone, a caching recursive
//! resolver, a universe of benign NTP servers with imperfect clocks, a
//! Chronos client (and optionally a plain-NTP baseline client), and —
//! depending on the [`AttackPlan`] — the attacker's fragmentation node,
//! BGP MitM, blind spoofer, fake nameserver and malicious NTP farm.

use attacklab::bgp::{BgpHijackAttacker, BgpHijackConfig};
use attacklab::farm::{build_ntp_farm, fake_ns_addr, fake_pool_zone_with_ttl};
use attacklab::fragpoison::{FragPoisonConfig, FragPoisoner};
use attacklab::kaminsky::{BlindSpoofAttacker, BlindSpoofConfig, PortGuess};
use attacklab::payload::{farm_addrs, is_farm_addr};
use attacklab::plan::{AttackPlan, PoisonStrategy};
use chronos::client::{ChronosClient, Phase};
use chronos::config::ChronosConfig;
use dnslab::cache::CacheKey;
use dnslab::name::Name;
use dnslab::resolver::{RecursiveResolver, ResolverConfig, Upstream};
use dnslab::server::AuthServer;
use dnslab::wire::Record;
use dnslab::zone::pool_ntp_zone;
use netsim::ip::Ipv4Net;
use netsim::node::NodeId;
use netsim::time::{SimDuration, SimTime};
use netsim::world::World;
use ntplab::clock::LocalClock;
use ntplab::plain::{PlainNtpClient, PlainNtpConfig};
use ntplab::server::NtpServer;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Well-known scenario addresses.
pub mod addrs {
    use std::net::Ipv4Addr;

    /// First `pool.ntp.org` nameserver; the rest follow sequentially.
    pub const NS_BASE: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 1);
    /// The shared recursive resolver.
    pub const RESOLVER: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 53);
    /// The Chronos victim.
    pub const CHRONOS: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 10);
    /// The plain-NTP baseline victim.
    pub const PLAIN: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 11);
    /// First benign NTP server; the universe follows sequentially.
    pub const NTP_BASE: Ipv4Addr = Ipv4Addr::new(10, 32, 0, 1);
    /// The fragmentation attacker's own address.
    pub const FRAG_ATTACKER: Ipv4Addr = Ipv4Addr::new(198, 19, 0, 66);
    /// The BGP MitM node's own address.
    pub const BGP_ATTACKER: Ipv4Addr = Ipv4Addr::new(198, 19, 0, 67);
    /// The blind spoofer's own address.
    pub const SPOOFER: Ipv4Addr = Ipv4Addr::new(198, 19, 0, 68);
}

/// Scenario-level configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// World RNG seed (everything is deterministic under it).
    pub seed: u64,
    /// Size of the benign NTP server universe behind the pool rotation.
    pub benign_universe: usize,
    /// Number of `pool.ntp.org` nameservers (paper's zone has many; 14
    /// makes responses fragment at small MTUs).
    pub ns_count: usize,
    /// Chronos client configuration (pool mitigation knobs live here).
    pub chronos: ChronosConfig,
    /// Add a plain-NTP baseline client too?
    pub plain: Option<PlainNtpConfig>,
    /// Resolver behaviour.
    pub resolver: ResolverConfig,
    /// Resolver-side TTL cap (defence-in-depth variant of §V).
    pub resolver_ttl_cap: Option<u32>,
    /// Benign server clock imperfection: max |offset| in ms.
    pub benign_offset_ms: u64,
    /// Benign server drift spread in ppm (pool servers are themselves
    /// disciplined, so their residual drift is small).
    pub benign_drift_ppm: f64,
    /// IP-ID allocation policy of the pool nameservers (the knob E9 turns:
    /// sequential IDs enable fragment pre-planting, random IDs defeat it).
    pub auth_ip_id: netsim::stack::IpIdPolicy,
    /// When set, a background client queries the nameserver at this mean
    /// interval, consuming IP-IDs and degrading the attacker's prediction.
    pub noise_query_interval: Option<SimDuration>,
    /// Overrides the PMTU the fragmentation attacker forces (default 296,
    /// which puts every glue record in the forged tail; 548 — the paper's
    /// measured nameserver bound — only reaches the trailing ones).
    pub frag_forced_mtu: Option<u16>,
    /// §V residual: makes a BGP-hijack attacker serve inconspicuous
    /// rotating responses (like the benign pool) instead of the full farm
    /// blast. Ignored for other strategies.
    pub bgp_low_profile: Option<LowProfileBgp>,
    /// The attack, if any.
    pub attack: Option<AttackPlan>,
}

/// Knobs of the low-profile (mitigation-evading) BGP hijacker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LowProfileBgp {
    /// Records per response (the benign pool serves 4).
    pub records: usize,
    /// TTL on served records (the benign pool uses 150).
    pub ttl: u32,
    /// Size of the farm address space rotated over.
    pub rotate_over: usize,
}

impl Default for LowProfileBgp {
    fn default() -> Self {
        LowProfileBgp {
            records: 4,
            ttl: 150,
            rotate_over: 120,
        }
    }
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            seed: 1,
            benign_universe: 150,
            ns_count: 14,
            chronos: ChronosConfig::default(),
            plain: None,
            resolver: ResolverConfig::default(),
            resolver_ttl_cap: None,
            benign_offset_ms: 2,
            benign_drift_ppm: 0.5,
            auth_ip_id: netsim::stack::IpIdPolicy::GlobalSequential,
            noise_query_interval: None,
            frag_forced_mtu: None,
            bgp_low_profile: None,
            attack: None,
        }
    }
}

impl ScenarioConfig {
    /// A seed-independent hash of the configuration *shape*: two configs
    /// with equal fingerprints differ at most in `seed`, which means a
    /// world built for one can be [`Scenario::adopt`]ed for the other —
    /// the node set, zones, attack wiring and topology are identical, and
    /// everything seed-derived re-derives on reset. Sweep engines key
    /// their [`netsim::pool::WorldPool`] by this, so same-shape grid
    /// points (e.g. a seed sweep) share pooled worlds.
    pub fn structural_fingerprint(&self) -> u64 {
        let mut shape = self.clone();
        shape.seed = 0;
        // Hash of the Debug rendering: every field participates, new
        // fields participate automatically, and stability is only needed
        // within one process (pool keys never persist).
        netsim::pool::fingerprint_str(&format!("{shape:?}"))
    }
}

/// Draws one benign server's clock imperfection. Shared by `build` and
/// `reset` so both consume the labelled RNG stream identically.
fn benign_clock(rng: &mut netsim::rng::SimRng, config: &ScenarioConfig) -> LocalClock {
    let offset_bound = config.benign_offset_ms as i64 * 1_000_000;
    let offset = if offset_bound > 0 {
        rng.gen_range(-offset_bound..=offset_bound)
    } else {
        0
    };
    let drift = rng.gen_range(-config.benign_drift_ppm..=config.benign_drift_ppm);
    LocalClock::new(offset, drift)
}

/// Node handles of a built scenario.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ScenarioNodes {
    /// The authoritative nameserver node (owns all NS addresses).
    pub auth: NodeId,
    /// The recursive resolver.
    pub resolver: NodeId,
    /// The Chronos client.
    pub chronos: NodeId,
    /// The plain-NTP client, when configured.
    pub plain: Option<NodeId>,
    /// The fragmentation attacker, when configured.
    pub frag_attacker: Option<NodeId>,
    /// The fake authoritative nameserver, when an attack is configured.
    pub fake_auth: Option<NodeId>,
    /// The malicious NTP farm, when an attack is configured.
    pub farm: Option<NodeId>,
}

/// A fully wired simulation scenario.
#[derive(Debug)]
pub struct Scenario {
    /// The simulation world.
    pub world: World,
    /// Handles to the principal nodes.
    pub nodes: ScenarioNodes,
    /// Benign NTP server nodes, in creation order (needed to re-derive
    /// their per-seed clock imperfections on reset).
    benign: Vec<NodeId>,
    config: ScenarioConfig,
    oracle_done: bool,
}

impl Scenario {
    /// Builds the world described by `config`.
    ///
    /// # Panics
    ///
    /// Panics if the Chronos configuration is inconsistent.
    pub fn build(config: ScenarioConfig) -> Scenario {
        let mut world = World::new(config.seed);
        world.trace_mut().set_enabled(false); // experiments re-enable as needed

        // --- pool.ntp.org authoritative servers (one node, many addrs) ---
        let ns_addrs: Vec<Ipv4Addr> = (0..config.ns_count as u32)
            .map(|i| Ipv4Addr::from(u32::from(addrs::NS_BASE) + i))
            .collect();
        let zone = pool_ntp_zone(config.benign_universe, config.ns_count);
        let ns_names: Vec<Name> = zone.nameservers().iter().map(|(n, _)| n.clone()).collect();
        let auth = world.add_node(
            "pool-auth",
            Box::new(AuthServer::with_addrs_and_stack(
                ns_addrs.clone(),
                vec![zone],
                netsim::stack::StackConfig {
                    ip_id_policy: config.auth_ip_id,
                    ..netsim::stack::StackConfig::default()
                },
            )),
            &ns_addrs,
        );
        if let Some(interval) = config.noise_query_interval {
            let noise_addr = Ipv4Addr::new(198, 51, 100, 99);
            world.add_node(
                "noise",
                Box::new(attacklab::trigger::BackgroundQuerier::new(
                    noise_addr,
                    ns_addrs[0],
                    "pool.ntp.org".parse().expect("static name"),
                    interval,
                )),
                &[noise_addr],
            );
        }

        // --- recursive resolver ---
        let mut resolver_node = RecursiveResolver::new(
            addrs::RESOLVER,
            vec![Upstream {
                zone: "pool.ntp.org".parse().expect("static name"),
                ns_names,
                bootstrap: ns_addrs.clone(),
            }],
        )
        .with_config(config.resolver);
        resolver_node
            .cache_mut()
            .set_ttl_cap(config.resolver_ttl_cap);
        resolver_node.allow_client(addrs::CHRONOS);
        resolver_node.allow_client(addrs::PLAIN);
        let resolver = world.add_node("resolver", Box::new(resolver_node), &[addrs::RESOLVER]);

        // --- benign NTP universe with slightly imperfect clocks ---
        let mut clock_rng = world.rng_mut().fork_labeled("benign-clocks");
        let mut benign = Vec::with_capacity(config.benign_universe);
        for i in 0..config.benign_universe as u32 {
            let addr = Ipv4Addr::from(u32::from(addrs::NTP_BASE) + i);
            let clock = benign_clock(&mut clock_rng, &config);
            benign.push(world.add_node(
                format!("ntp{i}"),
                Box::new(NtpServer::new(addr, clock)),
                &[addr],
            ));
        }

        // --- victims ---
        let chronos = world.add_node(
            "chronos",
            Box::new(ChronosClient::with_config(
                addrs::CHRONOS,
                addrs::RESOLVER,
                LocalClock::perfect(),
                config.chronos.clone(),
            )),
            &[addrs::CHRONOS],
        );
        let plain = config.plain.clone().map(|plain_cfg| {
            world.add_node(
                "plain-ntp",
                Box::new(PlainNtpClient::with_config(
                    addrs::PLAIN,
                    addrs::RESOLVER,
                    LocalClock::perfect(),
                    plain_cfg,
                )),
                &[addrs::PLAIN],
            )
        });

        // --- the attacker's infrastructure ---
        let mut frag_attacker = None;
        let mut fake_auth = None;
        let mut farm = None;
        if let Some(plan) = &config.attack {
            let farm_node = build_ntp_farm(plan.farm_size, plan.shift_ns());
            farm = Some(world.add_node(
                "malicious-farm",
                Box::new(farm_node),
                &farm_addrs(plan.farm_size),
            ));
            let fake_zone = fake_pool_zone_with_ttl(
                "pool.ntp.org".parse().expect("static name"),
                plan.farm_size,
                plan.poison_ttl,
            );
            fake_auth = Some(world.add_node(
                "fake-auth",
                Box::new(AuthServer::new(fake_ns_addr(), vec![fake_zone])),
                &[fake_ns_addr()],
            ));
            match &plan.strategy {
                PoisonStrategy::Fragmentation { start } => {
                    let mut frag_config =
                        FragPoisonConfig::new(addrs::RESOLVER, ns_addrs[0], fake_ns_addr())
                            .with_spoof_sources(ns_addrs.clone());
                    if let Some(mtu) = config.frag_forced_mtu {
                        frag_config.forced_mtu = mtu;
                    }
                    let mut poisoner = FragPoisoner::new(addrs::FRAG_ATTACKER, frag_config);
                    let delayed = start.as_nanos() > 0;
                    poisoner.set_enabled(!delayed);
                    let id = world.add_node(
                        "frag-attacker",
                        Box::new(poisoner),
                        &[addrs::FRAG_ATTACKER],
                    );
                    if delayed {
                        world.schedule_timer(
                            id,
                            start.duration_since(SimTime::ZERO),
                            attacklab::fragpoison::BEGIN_TAG,
                        );
                    }
                    frag_attacker = Some(id);
                }
                PoisonStrategy::BgpHijack { from, until } => {
                    let bgp_config = match config.bgp_low_profile {
                        Some(lp) => BgpHijackConfig {
                            qname: "pool.ntp.org".parse().expect("static name"),
                            records: lp.records,
                            ttl: lp.ttl,
                            rotate: true,
                            farm_size: lp.rotate_over,
                        },
                        None => BgpHijackConfig {
                            qname: "pool.ntp.org".parse().expect("static name"),
                            records: plan.farm_size,
                            ttl: plan.poison_ttl,
                            rotate: false,
                            farm_size: plan.farm_size,
                        },
                    };
                    let attacker = world.add_node(
                        "bgp-attacker",
                        Box::new(BgpHijackAttacker::new(addrs::BGP_ATTACKER, bgp_config)),
                        &[addrs::BGP_ATTACKER],
                    );
                    world.add_hijack(Ipv4Net::new(addrs::NS_BASE, 24), attacker, *from, *until);
                }
                PoisonStrategy::BlindSpoof { start, burst } => {
                    let _ = start;
                    world.add_node(
                        "spoofer",
                        Box::new(BlindSpoofAttacker::new(
                            addrs::SPOOFER,
                            BlindSpoofConfig {
                                resolver: addrs::RESOLVER,
                                nameserver: ns_addrs[0],
                                qname: "pool.ntp.org".parse().expect("static name"),
                                records: plan.farm_size,
                                ttl: plan.poison_ttl,
                                burst: *burst,
                                port_guess: PortGuess::Range {
                                    lo: 1024,
                                    hi: 65535,
                                },
                                sequential_txid_guess: false,
                                attempt_interval: SimDuration::from_secs(200),
                            },
                        )),
                        &[addrs::SPOOFER],
                    );
                }
                PoisonStrategy::Oracle { .. } => {
                    // Injection happens during `run_pool_generation`.
                }
            }
        }

        Scenario {
            world,
            nodes: ScenarioNodes {
                auth,
                resolver,
                chronos,
                plain,
                frag_attacker,
                fake_auth,
                farm,
            },
            benign,
            config,
            oracle_done: false,
        }
    }

    /// Rewinds a built scenario to time zero under a new seed, reusing the
    /// world (topology, zones, nodes, allocations) instead of rebuilding it.
    ///
    /// After `reset`, running the scenario is byte-identical to running
    /// `Scenario::build` with the same config and seed: the world is
    /// drained and reseeded, every node's run state is cleared, the benign
    /// servers' clock imperfections are re-derived from the new seed (same
    /// labelled RNG stream the builder uses), and the attack wiring that
    /// lives outside nodes — the delayed-start fragmentation timer and the
    /// BGP hijack window — is re-applied.
    pub fn reset(&mut self, seed: u64) {
        self.config.seed = seed;
        self.world.reset(seed);
        // `World::reset` keeps the trace's enabled flag; `build` starts
        // disabled, so mirror it — otherwise a trial that enabled tracing
        // would leak recording into every later trial on this world.
        self.world.trace_mut().set_enabled(false);
        self.oracle_done = false;

        // Re-derive the benign clock lottery exactly as `build` does: the
        // labelled fork does not advance the parent stream, and nothing
        // else draws from the world RNG before this point in `build`.
        let mut clock_rng = self.world.rng_mut().fork_labeled("benign-clocks");
        for &id in &self.benign {
            let clock = benign_clock(&mut clock_rng, &self.config);
            self.world.node_mut::<NtpServer>(id).set_clock(clock);
        }

        // Re-apply attack wiring cleared by the world reset.
        if let Some(plan) = &self.config.attack {
            match &plan.strategy {
                PoisonStrategy::Fragmentation { start } => {
                    let id = self
                        .nodes
                        .frag_attacker
                        .expect("fragmentation plan built a frag attacker");
                    let delayed = start.as_nanos() > 0;
                    self.world
                        .node_mut::<FragPoisoner>(id)
                        .set_enabled(!delayed);
                    if delayed {
                        self.world.schedule_timer(
                            id,
                            start.duration_since(SimTime::ZERO),
                            attacklab::fragpoison::BEGIN_TAG,
                        );
                    }
                }
                PoisonStrategy::BgpHijack { from, until } => {
                    let attacker = self
                        .world
                        .find_node("bgp-attacker")
                        .expect("bgp plan built a bgp attacker");
                    self.world.add_hijack(
                        Ipv4Net::new(addrs::NS_BASE, 24),
                        attacker,
                        *from,
                        *until,
                    );
                }
                PoisonStrategy::BlindSpoof { .. } | PoisonStrategy::Oracle { .. } => {}
            }
        }
    }

    /// Consumes the scenario, releasing its world for pooling (see
    /// [`netsim::pool::WorldPool`]); re-attach it with [`Scenario::adopt`].
    pub fn into_world(self) -> World {
        self.world
    }

    /// Re-attaches a world previously detached with [`Scenario::into_world`]
    /// and resets it for `config.seed`.
    ///
    /// The world must have been built by [`Scenario::build`] from a config
    /// identical to `config` except for the seed — node handles are
    /// re-bound by label, and structural differences would make the reused
    /// world diverge from a fresh build (debug assertions catch label
    /// mismatches; semantic mismatches are the caller's responsibility).
    pub fn adopt(world: World, config: ScenarioConfig) -> Scenario {
        let find = |label: &str| {
            world
                .find_node(label)
                .unwrap_or_else(|| panic!("adopted world has no {label:?} node"))
        };
        let nodes = ScenarioNodes {
            auth: find("pool-auth"),
            resolver: find("resolver"),
            chronos: find("chronos"),
            plain: world.find_node("plain-ntp"),
            frag_attacker: world.find_node("frag-attacker"),
            fake_auth: world.find_node("fake-auth"),
            farm: world.find_node("malicious-farm"),
        };
        let benign: Vec<NodeId> = (0..config.benign_universe)
            .map(|i| find(&format!("ntp{i}")))
            .collect();
        let seed = config.seed;
        let mut scenario = Scenario {
            world,
            nodes,
            benign,
            config,
            oracle_done: false,
        };
        scenario.reset(seed);
        scenario
    }

    /// The scenario configuration.
    pub fn config(&self) -> &ScenarioConfig {
        &self.config
    }

    /// The Chronos client.
    pub fn chronos(&self) -> &ChronosClient {
        self.world.node(self.nodes.chronos)
    }

    /// The plain-NTP client.
    ///
    /// # Panics
    ///
    /// Panics if the scenario was built without one.
    pub fn plain(&self) -> &PlainNtpClient {
        self.world
            .node(self.nodes.plain.expect("scenario has no plain client"))
    }

    /// The recursive resolver.
    pub fn resolver(&self) -> &RecursiveResolver {
        self.world.node(self.nodes.resolver)
    }

    /// Runs the world until Chronos finishes pool generation (or `limit`
    /// passes), handling any Oracle poisoning on the way.
    pub fn run_pool_generation(&mut self, limit: SimDuration) {
        let deadline = self.world.now() + limit;
        let interval = self.config.chronos.pool.query_interval;
        loop {
            if self.chronos().phase() != Phase::PoolGeneration {
                break;
            }
            if self.world.now() >= deadline {
                break;
            }
            // Oracle: plant the cache entry one second before the target
            // round's query fires.
            if let Some(round) = self.oracle_round() {
                if !self.oracle_done {
                    let fire_at = SimTime::ZERO + interval * (round as u64 - 1);
                    if let Some(inject_at) = fire_at.checked_sub(SimDuration::from_secs(1)) {
                        if self.world.now() < inject_at && inject_at < deadline {
                            self.world.run_until(inject_at);
                            self.inject_oracle_poison();
                            continue;
                        }
                    }
                    if self.world.now() == SimTime::ZERO && round == 1 {
                        self.inject_oracle_poison();
                    }
                }
            }
            let next = (self.world.now() + interval).min(deadline);
            self.world.run_until(next);
        }
    }

    fn oracle_round(&self) -> Option<usize> {
        match &self.config.attack {
            Some(AttackPlan {
                strategy: PoisonStrategy::Oracle { round },
                ..
            }) => Some(*round),
            _ => None,
        }
    }

    /// Injects the Oracle poison into the resolver cache right now.
    pub fn inject_oracle_poison(&mut self) {
        let Some(plan) = self.config.attack.clone() else {
            return;
        };
        let pool_name: Name = "pool.ntp.org".parse().expect("static name");
        let records: Vec<Record> = farm_addrs(plan.farm_size)
            .into_iter()
            .map(|a| Record::a(pool_name.clone(), a, plan.poison_ttl))
            .collect();
        let now = self.world.now();
        let resolver = self
            .world
            .node_mut::<RecursiveResolver>(self.nodes.resolver);
        resolver
            .cache_mut()
            .insert(now, CacheKey::a(pool_name), &records);
        self.oracle_done = true;
    }

    /// Chronos pool composition as `(benign, malicious)`.
    pub fn chronos_pool_composition(&self) -> (usize, usize) {
        self.chronos().pool().composition(is_farm_addr)
    }

    /// The attacker's fraction of the Chronos pool.
    pub fn attacker_fraction(&self) -> f64 {
        self.chronos().pool().attacker_fraction(is_farm_addr)
    }

    /// Convenience: run for a duration.
    pub fn run_for(&mut self, d: SimDuration) {
        self.world.run_for(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chronos::config::PoolGenConfig;

    /// Compressed timings so scenario tests stay fast: 6 pool rounds every
    /// 200 s, small samples.
    pub(crate) fn fast_chronos() -> ChronosConfig {
        ChronosConfig {
            sample_size: 6,
            trim: 2,
            poll_interval: SimDuration::from_secs(32),
            pool: PoolGenConfig {
                queries: 6,
                query_interval: SimDuration::from_secs(200),
                ..PoolGenConfig::default()
            },
            ..ChronosConfig::default()
        }
    }

    #[test]
    fn benign_scenario_builds_and_generates_pool() {
        let mut s = Scenario::build(ScenarioConfig {
            seed: 5,
            benign_universe: 48,
            chronos: fast_chronos(),
            ..ScenarioConfig::default()
        });
        s.run_pool_generation(SimDuration::from_hours(2));
        assert_eq!(s.chronos().phase(), Phase::Syncing);
        assert_eq!(s.chronos().pool().len(), 24, "6 rounds x 4");
        assert_eq!(s.chronos_pool_composition(), (24, 0));
        // Let it sync a bit; the clock stays true.
        s.run_for(SimDuration::from_secs(300));
        assert!(s.chronos().offset_from_true(s.world.now()).abs() < 5_000_000);
    }

    #[test]
    fn oracle_attack_at_half_captures_pool() {
        let mut chronos_cfg = fast_chronos();
        chronos_cfg.pool.queries = 6;
        let mut plan = AttackPlan::paper_default(SimDuration::from_millis(500));
        plan.strategy = PoisonStrategy::Oracle { round: 3 };
        let mut s = Scenario::build(ScenarioConfig {
            seed: 6,
            benign_universe: 48,
            chronos: chronos_cfg,
            attack: Some(plan),
            ..ScenarioConfig::default()
        });
        s.run_pool_generation(SimDuration::from_hours(2));
        let (benign, malicious) = s.chronos_pool_composition();
        assert_eq!(malicious, 89);
        assert_eq!(benign, 8, "2 benign rounds before the poison");
        assert!(s.attacker_fraction() > 2.0 / 3.0);
    }

    /// Regression: a trial that turns tracing on must not leak recording
    /// into later trials on the same pooled world (`build` starts with the
    /// trace disabled; `reset` must restore that).
    #[test]
    fn reset_restores_the_disabled_trace() {
        let mut s = Scenario::build(ScenarioConfig {
            seed: 9,
            benign_universe: 16,
            chronos: fast_chronos(),
            ..ScenarioConfig::default()
        });
        s.world.trace_mut().set_enabled(true);
        s.run_for(SimDuration::from_secs(10));
        assert!(s.world.trace().entries().count() > 0);
        s.reset(9);
        assert!(!s.world.trace().is_enabled(), "reset must mirror build");
        s.run_for(SimDuration::from_secs(10));
        assert_eq!(s.world.trace().entries().count(), 0);
    }

    #[test]
    fn plain_client_coexists() {
        let mut s = Scenario::build(ScenarioConfig {
            seed: 7,
            benign_universe: 48,
            chronos: fast_chronos(),
            plain: Some(PlainNtpConfig::default()),
            ..ScenarioConfig::default()
        });
        s.run_for(SimDuration::from_secs(400));
        assert_eq!(s.plain().servers().len(), 4);
        assert!(s.plain().stats().updates >= 1);
    }
}
