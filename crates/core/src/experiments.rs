//! Experiment runners E1–E9: one per table/figure of the reproduction
//! (see EXPERIMENTS.md for the index and DESIGN.md §4 for the mapping).
//!
//! Every runner returns typed rows plus a rendered [`Table`] (or
//! [`crate::report::Series`]), so
//! benches, examples and tests share one implementation.

use crate::montecarlo;
use crate::poolmodel::{self, PoolCompositionRow, PoolModelParams};
use crate::report::{fmt_prob, fmt_years, Table};
use crate::scenario::{Scenario, ScenarioConfig};
use crate::study::{self, StudyFindings};
use crate::successmodel::{self, SuccessRow};
use attacklab::fragpoison::FragPoisonStats;
use attacklab::payload::is_farm_addr;
use attacklab::plan::{AttackPlan, PoisonStrategy};
use chronos::analysis::{shift_attack_bound, SecurityBound};
use chronos::config::{ChronosConfig, PoolGenConfig};
use dnslab::capacity::{dns_budget, max_a_records, response_size};
use dnslab::name::Name;
use netsim::rng::SimRng;
use netsim::stack::IpIdPolicy;
use netsim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A compressed Chronos configuration for packet-level experiments: the
/// full 24-round structure at `interval` spacing (instead of hourly), so
/// the whole generation fits in a short simulation without changing the
/// attack's arithmetic.
pub fn compressed_chronos(rounds: usize, interval: SimDuration) -> ChronosConfig {
    ChronosConfig {
        poll_interval: SimDuration::from_secs(32),
        pool: PoolGenConfig {
            queries: rounds,
            query_interval: interval,
            ..PoolGenConfig::default()
        },
        ..ChronosConfig::default()
    }
}

// ---------------------------------------------------------------------
// E1 — Figure 1: the attack timeline.
// ---------------------------------------------------------------------

/// Which poisoning mechanism E1 exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum E1Strategy {
    /// Packet-level defragmentation poisoning (glue rewrite).
    Fragmentation,
    /// Oracle injection at the given round.
    Oracle {
        /// 1-based pool-generation round.
        round: usize,
    },
}

/// One pool-generation round of the timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E1RoundRow {
    /// 1-based round.
    pub round: usize,
    /// Hours since generation start (1 round/hour in paper time).
    pub hour: f64,
    /// Benign addresses added this round.
    pub added_benign: usize,
    /// Malicious addresses added this round.
    pub added_malicious: usize,
    /// Cumulative benign pool.
    pub pool_benign: usize,
    /// Cumulative malicious pool.
    pub pool_malicious: usize,
    /// Attacker fraction after this round.
    pub fraction: f64,
}

/// Result of the E1 timeline run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E1Result {
    /// Per-round timeline (Figure 1's data).
    pub rows: Vec<E1RoundRow>,
    /// First round that contributed malicious addresses.
    pub first_malicious_round: Option<usize>,
    /// Final attacker fraction.
    pub final_fraction: f64,
    /// Whether the attacker ends with ≥ 2/3 (panic-mode control).
    pub attack_succeeds: bool,
    /// Fragmentation attacker counters (packet-level runs only).
    pub frag_stats: Option<FragPoisonStats>,
}

/// Runs the Figure 1 timeline.
pub fn run_e1(seed: u64, strategy: E1Strategy, rounds: usize) -> E1Result {
    let interval = SimDuration::from_secs(200);
    let attack = match strategy {
        E1Strategy::Fragmentation => AttackPlan {
            strategy: PoisonStrategy::Fragmentation {
                start: SimTime::ZERO,
            },
            ..AttackPlan::paper_default(SimDuration::from_millis(500))
        },
        E1Strategy::Oracle { round } => AttackPlan {
            strategy: PoisonStrategy::Oracle { round },
            ..AttackPlan::paper_default(SimDuration::from_millis(500))
        },
    };
    let mut scenario = Scenario::build(ScenarioConfig {
        seed,
        benign_universe: 120,
        chronos: compressed_chronos(rounds, interval),
        attack: Some(attack),
        ..ScenarioConfig::default()
    });
    scenario.run_pool_generation(interval * (rounds as u64 + 4));

    let mut rows = Vec::new();
    let mut pool_benign = 0usize;
    let mut pool_malicious = 0usize;
    let mut first_malicious_round = None;
    for r in scenario.chronos().pool().rounds() {
        let added_malicious = r.added.iter().filter(|&&a| is_farm_addr(a)).count();
        let added_benign = r.added.len() - added_malicious;
        pool_benign += added_benign;
        pool_malicious += added_malicious;
        if added_malicious > 0 && first_malicious_round.is_none() {
            first_malicious_round = Some(r.round);
        }
        let total = pool_benign + pool_malicious;
        rows.push(E1RoundRow {
            round: r.round,
            hour: r.round as f64,
            added_benign,
            added_malicious,
            pool_benign,
            pool_malicious,
            fraction: if total == 0 {
                0.0
            } else {
                pool_malicious as f64 / total as f64
            },
        });
    }
    let final_fraction = scenario.attacker_fraction();
    let frag_stats = scenario.nodes.frag_attacker.map(|id| {
        scenario
            .world
            .node::<attacklab::fragpoison::FragPoisoner>(id)
            .stats()
    });
    E1Result {
        rows,
        first_malicious_round,
        final_fraction,
        attack_succeeds: chronos::analysis::panic_controlled(
            pool_benign + pool_malicious,
            pool_malicious,
        ),
        frag_stats,
    }
}

impl E1Result {
    /// Renders the timeline as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "E1 / Figure 1 — DNS poisoning attack on Chronos pool generation",
            &[
                "round",
                "+benign",
                "+malicious",
                "pool benign",
                "pool malicious",
                "attacker %",
            ],
        );
        for r in &self.rows {
            t.push_row(vec![
                r.round.to_string(),
                r.added_benign.to_string(),
                r.added_malicious.to_string(),
                r.pool_benign.to_string(),
                r.pool_malicious.to_string(),
                format!("{:.1}", 100.0 * r.fraction),
            ]);
        }
        t
    }
}

// ---------------------------------------------------------------------
// E2 — pool composition vs poisoning round (claim C3).
// ---------------------------------------------------------------------

/// Result of the E2 analytic sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E2Result {
    /// One row per poisoning round.
    pub rows: Vec<PoolCompositionRow>,
    /// The paper's deadline: the latest winning round (12).
    pub latest_winning_round: Option<usize>,
}

/// Runs the E2 sweep.
pub fn run_e2(params: PoolModelParams) -> E2Result {
    E2Result {
        rows: poolmodel::sweep(params),
        latest_winning_round: poolmodel::latest_winning_round(params),
    }
}

impl E2Result {
    /// Renders the sweep as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "E2 — pool composition vs poisoning round (analytic, §IV)",
            &[
                "poison round",
                "benign",
                "malicious",
                "attacker %",
                ">= 2/3",
            ],
        );
        for r in &self.rows {
            t.push_row(vec![
                r.poison_round.to_string(),
                r.benign.to_string(),
                r.malicious.to_string(),
                format!("{:.1}", 100.0 * r.fraction),
                if r.controls_panic { "yes" } else { "no" }.to_string(),
            ]);
        }
        t
    }
}

// ---------------------------------------------------------------------
// E3 — response capacity (claim C2).
// ---------------------------------------------------------------------

/// One capacity measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E3Row {
    /// Path MTU.
    pub mtu: u16,
    /// Whether the response carries an EDNS OPT record.
    pub edns: bool,
    /// Maximum A records that fit unfragmented.
    pub max_records: usize,
    /// Wire size of the maximal response (DNS payload bytes).
    pub wire_bytes: usize,
    /// The DNS payload budget at this MTU.
    pub budget: usize,
}

/// Runs the E3 capacity measurements against the real encoder.
pub fn run_e3() -> Vec<E3Row> {
    let pool: Name = "pool.ntp.org".parse().expect("static name");
    let mut rows = Vec::new();
    for &(mtu, edns) in &[
        (548u16, true),
        (576, true),
        (1280, true),
        (1500, true),
        (1500, false),
    ] {
        let max_records = max_a_records(&pool, mtu, edns);
        rows.push(E3Row {
            mtu,
            edns,
            max_records,
            wire_bytes: response_size(&pool, max_records, edns),
            budget: dns_budget(mtu),
        });
    }
    rows
}

/// Renders the E3 rows.
pub fn e3_table(rows: &[E3Row]) -> Table {
    let mut t = Table::new(
        "E3 — max A records in one non-fragmented response (claim: 89 @ MTU 1500)",
        &["mtu", "edns", "max records", "wire bytes", "budget"],
    );
    for r in rows {
        t.push_row(vec![
            r.mtu.to_string(),
            if r.edns { "yes" } else { "no" }.to_string(),
            r.max_records.to_string(),
            r.wire_bytes.to_string(),
            r.budget.to_string(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// E4 — success probability amplification (claim C4).
// ---------------------------------------------------------------------

/// One E4 row: closed form plus Monte-Carlo cross-check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E4Row {
    /// The analytic comparison.
    pub analytic: SuccessRow,
    /// Monte-Carlo estimate of the Chronos capture probability.
    pub mc_chronos: f64,
}

/// Runs the E4 sweep with `trials` Monte-Carlo trials per point, fanned
/// over `threads` workers via the [`crate::montecarlo::run_grid`] engine.
pub fn run_e4(seed: u64, qs: &[f64], trials: u32, threads: usize) -> Vec<E4Row> {
    let outcomes = montecarlo::run_grid(qs, threads, trials, |&q, point, trial| {
        let mut rng = SimRng::seed_from(montecarlo::trial_seed(
            seed ^ ((point as u64 + 1) << 32),
            trial,
        ));
        successmodel::single_trial(q, successmodel::opportunities::CHRONOS_WINNING, &mut rng)
    });
    let rates = montecarlo::success_rates(&outcomes);
    successmodel::sweep(qs)
        .into_iter()
        .zip(rates)
        .map(|(analytic, rate)| E4Row {
            analytic,
            mc_chronos: rate.rate,
        })
        .collect()
}

/// Renders the E4 rows.
pub fn e4_table(rows: &[E4Row]) -> Table {
    let mut t = Table::new(
        "E4 — capture probability: plain NTP (1 try) vs Chronos (12 tries)",
        &[
            "q per try",
            "plain",
            "chronos",
            "chronos (MC)",
            "amplification",
        ],
    );
    for r in rows {
        t.push_row(vec![
            fmt_prob(r.analytic.q),
            fmt_prob(r.analytic.p_plain),
            fmt_prob(r.analytic.p_chronos),
            fmt_prob(r.mc_chronos),
            format!("{:.2}x", r.analytic.amplification),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// E5 — the Chronos security bound and its collapse at 2/3 (claim C6).
// ---------------------------------------------------------------------

/// One E5 row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E5Row {
    /// Attacker's pool fraction.
    pub fraction: f64,
    /// Attacker servers of the pool.
    pub malicious: usize,
    /// The analytic bound.
    pub bound: SecurityBound,
}

/// Sweeps attacker fractions for a pool of `n`, sampling `m` with trim `d`,
/// one grid point per fraction over `threads` workers.
pub fn run_e5(n: usize, m: usize, d: usize, fractions: &[f64], threads: usize) -> Vec<E5Row> {
    montecarlo::run_grid(fractions, threads, 1, |&f, _, _| {
        let malicious = ((n as f64) * f).round() as usize;
        E5Row {
            fraction: f,
            malicious,
            bound: shift_attack_bound(
                n,
                malicious,
                m,
                d,
                SimDuration::from_millis(100),
                SimDuration::from_millis(100),
                SimDuration::from_hours(1),
            ),
        }
    })
    .into_iter()
    .map(|mut rows| rows.remove(0))
    .collect()
}

/// Renders the E5 rows.
pub fn e5_table(n: usize, rows: &[E5Row]) -> Table {
    let mut t = Table::new(
        format!("E5 — expected effort to shift a Chronos client >100 ms (n = {n})"),
        &[
            "attacker %",
            "servers",
            "p/poll",
            "E[polls]",
            "years",
            "panic owned",
        ],
    );
    for r in rows {
        t.push_row(vec![
            format!("{:.1}", 100.0 * r.fraction),
            r.malicious.to_string(),
            fmt_prob(r.bound.p_per_poll),
            if r.bound.expected_polls.is_finite() {
                format!("{:.3e}", r.bound.expected_polls)
            } else {
                "inf".to_string()
            },
            fmt_years(r.bound.expected_years),
            if r.bound.panic_is_controlled {
                "yes"
            } else {
                "no"
            }
            .to_string(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// Figure drivers: one sweep invocation → report::Series.
// ---------------------------------------------------------------------

/// One labelled y-extractor of a figure projection.
pub type SeriesProjection<'a, R> = (&'a str, &'a dyn Fn(&R) -> f64);

/// Projects one sweep's typed rows into labelled
/// [`Series`](crate::report::Series) over a shared x-axis — the
/// Series-emitting driver behind the figure outputs, so every plot
/// regenerates from a *single* sweep invocation instead of ad-hoc
/// per-point loops.
pub fn rows_to_series<R>(
    rows: &[R],
    x: impl Fn(&R) -> f64,
    ys: &[SeriesProjection<'_, R>],
) -> Vec<crate::report::Series> {
    ys.iter()
        .map(|(label, f)| crate::report::Series {
            label: (*label).to_string(),
            points: rows.iter().map(|r| (x(r), f(r))).collect(),
        })
        .collect()
}

/// Projects already-computed E4 rows into the figure's series (no second
/// sweep: table and figure share one grid run).
pub fn e4_series_from_rows(rows: &[E4Row]) -> Vec<crate::report::Series> {
    rows_to_series(
        rows,
        |r| r.analytic.q,
        &[
            ("plain NTP", &|r: &E4Row| r.analytic.p_plain),
            ("chronos", &|r: &E4Row| r.analytic.p_chronos),
            ("chronos (MC)", &|r: &E4Row| r.mc_chronos),
        ],
    )
}

/// The E4 figure (capture probability vs per-try q): analytic plain,
/// analytic Chronos and the Monte-Carlo cross-check, from one
/// [`montecarlo::run_grid`] sweep.
pub fn e4_figure(seed: u64, qs: &[f64], trials: u32, threads: usize) -> Vec<crate::report::Series> {
    e4_series_from_rows(&run_e4(seed, qs, trials, threads))
}

/// Projects already-computed E5 rows into the figure's series. Years are
/// log10-scaled (the paper's cliff spans ~10 orders of magnitude);
/// per-poll probability rides along.
pub fn e5_series_from_rows(rows: &[E5Row]) -> Vec<crate::report::Series> {
    rows_to_series(
        rows,
        |r| r.fraction,
        &[
            ("log10(years)", &|r: &E5Row| {
                if r.bound.expected_years <= 0.0 {
                    f64::NEG_INFINITY
                } else {
                    r.bound.expected_years.log10()
                }
            }),
            ("p per poll", &|r: &E5Row| r.bound.p_per_poll),
        ],
    )
}

/// The E5 figure (expected shift effort vs attacker pool fraction) for a
/// pool of `n`, from one grid sweep.
pub fn e5_figure(
    n: usize,
    m: usize,
    d: usize,
    fractions: &[f64],
    threads: usize,
) -> Vec<crate::report::Series> {
    e5_series_from_rows(&run_e5(n, m, d, fractions, threads))
}

// ---------------------------------------------------------------------
// E14 — the fleet experiment: fraction of a client population shifted
// beyond the safety bound, over time, under shared attacks.
// ---------------------------------------------------------------------

/// One population-attack variant of E14.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E14Row {
    /// Variant label.
    pub label: String,
    /// The fleet's aggregate outcome.
    pub report: fleet::FleetReport,
}

/// Result of the E14 population sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E14Result {
    /// One row per attack variant.
    pub rows: Vec<E14Row>,
    /// Fraction-shifted-vs-time, one series per variant (the figure).
    pub series: Vec<crate::report::Series>,
    /// Sweep/pooling counters.
    pub stats: montecarlo::SweepStats,
}

/// The fleet configuration E14 uses: the paper's full 24-round pool
/// generation compressed to a 200 s cadence, 64 s polls, a 240-server
/// rotation universe, clients booting staggered over one round.
pub fn e14_config(
    seed: u64,
    clients: usize,
    attack: Option<fleet::FleetAttack>,
) -> fleet::FleetConfig {
    use netsim::time::SimDuration as D;
    fleet::FleetConfig {
        seed,
        clients,
        chronos: ChronosConfig {
            poll_interval: D::from_secs(64),
            pool: PoolGenConfig {
                queries: 24,
                query_interval: D::from_secs(200),
                ..PoolGenConfig::default()
            },
            ..ChronosConfig::default()
        },
        universe: 240,
        stagger: D::from_secs(200),
        sample_every: D::from_secs(60),
        horizon: D::from_secs(6_000),
        attack,
        ..fleet::FleetConfig::default()
    }
}

/// Runs E14: one [`montecarlo::run_fleets`] invocation sweeps the attack
/// variants — no attack, an early poisoning (inside the paper's round-12
/// window, so every pool ends ≥ 2/3 malicious), a past-deadline poisoning
/// (only the final generation round can be hit, leaving a benign
/// majority), and the early poisoning against the §V-mitigated client —
/// and emits the fraction-shifted series for each.
///
/// `threads` is a total CPU budget split across both parallelism levels:
/// the four variants dispatch over the trial engine on
/// `min(threads, variants)` workers, and each fleet steps its shards on
/// the remaining `threads / outer` workers
/// ([`fleet::FleetConfig::threads`]) — so a 4-core host runs the variants
/// concurrently while a 16-core host also gets 4-way intra-fleet
/// stepping, without oversubscribing either. Results are byte-identical
/// for any value; the knob is pure wall-clock.
pub fn run_e14(seed: u64, clients: usize, threads: usize) -> E14Result {
    use netsim::time::SimDuration as D;
    let shift = D::from_millis(500);
    let early = fleet::FleetAttack::paper_default(SimTime::from_secs(400), shift);
    let late = fleet::FleetAttack::paper_default(SimTime::from_secs(4_700), shift);
    let mut mitigated = e14_config(seed, clients, Some(early));
    mitigated.chronos.pool = PoolGenConfig {
        queries: 24,
        query_interval: D::from_secs(200),
        ..PoolGenConfig::mitigated()
    };
    let labelled: Vec<(&str, fleet::FleetConfig)> = vec![
        ("no attack", e14_config(seed, clients, None)),
        (
            "poison @400s (early)",
            e14_config(seed, clients, Some(early)),
        ),
        (
            "poison @4700s (late)",
            e14_config(seed, clients, Some(late)),
        ),
        ("poison @400s vs §V mitigations", mitigated),
    ];
    let outer = threads.max(1).min(labelled.len());
    let inner = (threads.max(1) / outer).max(1);
    let configs: Vec<fleet::FleetConfig> = labelled
        .iter()
        .map(|(_, c)| fleet::FleetConfig {
            threads: inner,
            ..c.clone()
        })
        .collect();
    let (mut reports, stats) =
        montecarlo::run_fleets(&configs, outer, 1, |fleet, _, _| fleet.run());
    let rows: Vec<E14Row> = labelled
        .iter()
        .zip(reports.iter_mut())
        .map(|((label, _), r)| E14Row {
            label: (*label).to_string(),
            report: r.remove(0),
        })
        .collect();
    let series = rows
        .iter()
        .map(|row| crate::report::Series {
            label: row.label.clone(),
            points: row.report.shifted.clone(),
        })
        .collect();
    E14Result {
        rows,
        series,
        stats,
    }
}

/// Renders the E14 rows.
pub fn e14_table(result: &E14Result) -> Table {
    let mut t = Table::new(
        "E14 — population under shared DNS attack (fleet engine)",
        &[
            "variant",
            "clients",
            "poisoned",
            "shifted %",
            "p50 |off| ms",
            "p99 |off| ms",
            "panics",
        ],
    );
    for row in &result.rows {
        let r = &row.report;
        let q = |p: f64| {
            r.quantiles
                .iter()
                .find(|&&(qp, _)| qp == p)
                .map(|&(_, v)| v / 1e6)
                .unwrap_or(f64::NAN)
        };
        t.push_row(vec![
            row.label.clone(),
            r.clients.to_string(),
            r.poisoned_clients.to_string(),
            format!("{:.1}", 100.0 * r.final_shifted_fraction),
            format!("{:.3}", q(0.5)),
            format!("{:.3}", q(0.99)),
            r.totals.panics.to_string(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// E16 — heterogeneous fleets under partial resolver poisoning: the
// fraction-of-population-shifted vs fraction-of-resolvers-poisoned
// curve, broken down by tier. Neither the paper nor the repo could draw
// this before the cohort layer (PR 5).
// ---------------------------------------------------------------------

/// One point of the E16 sweep: the fleet outcome with the attacker in
/// `poisoned_resolvers` of the resolver caches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E16Row {
    /// Resolvers the attacker poisoned (`0..=resolvers`).
    pub poisoned_resolvers: usize,
    /// The x coordinate: `poisoned_resolvers / resolvers`.
    pub poisoned_fraction: f64,
    /// The mixed fleet's aggregate outcome (per-tier breakdown included).
    pub report: fleet::FleetReport,
}

/// Result of the E16 partial-poisoning sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E16Result {
    /// Independent resolver caches in every fleet.
    pub resolvers: usize,
    /// One row per poisoned-resolver count, in increasing order.
    pub rows: Vec<E16Row>,
    /// Fraction-shifted vs fraction-of-resolvers-poisoned — one series
    /// per tier plus the fleet-wide `"all clients"` curve (the figure).
    pub series: Vec<crate::report::Series>,
    /// Sweep/pooling counters.
    pub stats: montecarlo::SweepStats,
}

/// The E16 population mix: half the fleet runs stock Chronos (the paper's
/// vulnerable 24-round generation), a quarter runs the §V-mitigated
/// Chronos, and a quarter is the plain-NTP baseline (one resolution, four
/// servers).
pub fn e16_tiers() -> Vec<fleet::CohortTier> {
    use fleet::CohortTier;
    let mut mitigated = CohortTier::chronos("chronos §V", 1);
    mitigated.chronos = Some(ChronosConfig {
        poll_interval: netsim::time::SimDuration::from_secs(64),
        pool: PoolGenConfig {
            queries: 24,
            query_interval: netsim::time::SimDuration::from_secs(200),
            ..PoolGenConfig::mitigated()
        },
        ..ChronosConfig::default()
    });
    vec![
        CohortTier::chronos("chronos", 2),
        mitigated,
        CohortTier::plain_ntp("plain ntp", 1),
    ]
}

/// The fleet configuration E16 sweeps: the E14 scenario shape (24-round
/// generation at a 200 s cadence, 64 s polls, 240-server universe) with
/// the [`e16_tiers`] mix across `resolvers` caches, and the poison
/// landing at t = 100 s — *inside* the 200 s boot stagger, so roughly
/// half the plain-NTP tier resolves before the entry exists while every
/// Chronos client behind a poisoned cache has ≥ 23 rounds left to absorb
/// it (the paper's 1-vs-24-opportunities contrast, per resolver).
pub fn e16_config(
    seed: u64,
    clients: usize,
    resolvers: usize,
    poisoned_resolvers: usize,
) -> fleet::FleetConfig {
    let mut config = e14_config(
        seed,
        clients,
        Some(
            fleet::FleetAttack::paper_default(
                SimTime::from_secs(100),
                netsim::time::SimDuration::from_millis(500),
            )
            .with_poisoned_resolvers(poisoned_resolvers),
        ),
    );
    config.tiers = e16_tiers();
    config.resolvers = resolvers;
    config
}

/// Runs E16: one [`montecarlo::run_fleets`] invocation sweeps the
/// poisoned-resolver count `k = 0..=resolvers` over the mixed fleet and
/// emits fraction-shifted vs fraction-of-resolvers-poisoned, fleet-wide
/// and per tier, from that single sweep.
///
/// The expected shape, which the unit tests pin: the stock-Chronos curve
/// tracks `k/R` (every client behind a poisoned cache is captured), the
/// plain-NTP curve rises at roughly half that slope (only clients whose
/// *single* resolution fell after the poison landed), and the
/// §V-mitigated curve stays at zero — so the fleet-wide curve's slope
/// *is* the population's mitigation/legacy mix, which is the
/// trust-anchor-diversity question partial poisoning asks.
///
/// `threads` splits across the two parallelism levels exactly as
/// [`run_e14`] does: `min(threads, k+1)` sweep workers, the rest stepping
/// shards inside each fleet. Results are byte-identical for any value.
pub fn run_e16(seed: u64, clients: usize, resolvers: usize, threads: usize) -> E16Result {
    assert!(resolvers >= 1, "need at least one resolver");
    let ks: Vec<usize> = (0..=resolvers).collect();
    let outer = threads.max(1).min(ks.len());
    let inner = (threads.max(1) / outer).max(1);
    let configs: Vec<fleet::FleetConfig> = ks
        .iter()
        .map(|&k| fleet::FleetConfig {
            threads: inner,
            ..e16_config(seed, clients, resolvers, k)
        })
        .collect();
    let (mut reports, stats) =
        montecarlo::run_fleets(&configs, outer, 1, |fleet, _, _| fleet.run());
    let rows: Vec<E16Row> = ks
        .iter()
        .zip(reports.iter_mut())
        .map(|(&k, r)| E16Row {
            poisoned_resolvers: k,
            poisoned_fraction: k as f64 / resolvers as f64,
            report: r.remove(0),
        })
        .collect();
    e16_result_from_rows(resolvers, rows, stats)
}

/// Assembles an [`E16Result`] from already-computed rows: derives the
/// per-tier and fleet-wide fraction-shifted series from the row reports.
///
/// This is the tail of [`run_e16`], split out so callers that produce the
/// rows incrementally (chronosd steps each row's fleet in checkpointable
/// slices) build the identical result structure. Because each row's
/// report is a pure function of its `FleetConfig`, assembling from
/// row-by-row `Fleet::run` output is byte-identical to the pooled sweep.
pub fn e16_result_from_rows(
    resolvers: usize,
    rows: Vec<E16Row>,
    stats: montecarlo::SweepStats,
) -> E16Result {
    assert!(!rows.is_empty(), "need at least one E16 row");
    // One curve per tier, plus the fleet-wide one: x = fraction of
    // resolvers poisoned, y = fraction shifted at the horizon.
    let mut series: Vec<crate::report::Series> = rows[0]
        .report
        .tiers
        .iter()
        .enumerate()
        .map(|(t, tier)| crate::report::Series {
            label: tier.label.clone(),
            points: rows
                .iter()
                .map(|row| {
                    (
                        row.poisoned_fraction,
                        row.report.tiers[t].final_shifted_fraction,
                    )
                })
                .collect(),
        })
        .collect();
    series.push(crate::report::Series {
        label: "all clients".to_string(),
        points: rows
            .iter()
            .map(|row| (row.poisoned_fraction, row.report.final_shifted_fraction))
            .collect(),
    });
    E16Result {
        resolvers,
        rows,
        series,
        stats,
    }
}

/// Renders the E16 rows (one line per poisoned-resolver count, shifted
/// percentage per tier).
pub fn e16_table(result: &E16Result) -> Table {
    let tier_labels: Vec<String> = result.rows[0]
        .report
        .tiers
        .iter()
        .map(|t| format!("{} shifted %", t.label))
        .collect();
    let mut columns = vec!["poisoned resolvers".to_string(), "fraction".to_string()];
    columns.extend(tier_labels);
    columns.push("all shifted %".to_string());
    columns.push("poisoned clients".to_string());
    let column_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "E16 — heterogeneous fleet under partial resolver poisoning",
        &column_refs,
    );
    for row in &result.rows {
        let mut cells = vec![
            format!("{}/{}", row.poisoned_resolvers, result.resolvers),
            format!("{:.3}", row.poisoned_fraction),
        ];
        for tier in &row.report.tiers {
            cells.push(format!("{:.1}", 100.0 * tier.final_shifted_fraction));
        }
        cells.push(format!("{:.1}", 100.0 * row.report.final_shifted_fraction));
        cells.push(row.report.poisoned_clients.to_string());
        t.push_row(cells);
    }
    t
}

// ---------------------------------------------------------------------
// E17 — deterministic fault injection: the E16 cohort mix under NTP
// sample loss, DNS SERVFAILs, a boot-time resolver outage and RFC 8767
// serve-stale, swept loss × outage coverage. The robustness question the
// fault layer exists to answer: does a degraded network weaken or
// *widen* the paper's attack? (Serve-stale re-serves a poisoned entry
// with a short stale TTL, laundering the attacker's day-long TTL past
// the §V reject-TTL mitigation; a boot outage pushes plain-NTP retries
// into the poison window.)
// ---------------------------------------------------------------------

/// The E17 loss sweep: each value is used as both the per-sample NTP
/// loss probability and the per-query DNS SERVFAIL probability.
pub const E17_LOSSES: [f64; 5] = [0.0, 0.001, 0.01, 0.05, 0.15];

/// One point of the E17 grid: the mixed fleet under `loss` with the
/// first `outage_coverage` resolvers down for the boot window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E17Row {
    /// NTP sample-loss = DNS SERVFAIL probability for every tier.
    pub loss: f64,
    /// Resolvers (of [`E17Result::resolvers`]) under the boot outage.
    pub outage_coverage: usize,
    /// The mixed fleet's outcome (per-tier fault counters included).
    pub report: fleet::FleetReport,
}

/// Result of the E17 loss × outage-coverage sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E17Result {
    /// Independent resolver caches in every fleet.
    pub resolvers: usize,
    /// One row per grid point, loss-major then coverage.
    pub rows: Vec<E17Row>,
    /// Per-tier fraction-shifted, panics-per-client and boot-retries-
    /// per-client curves over the loss axis, one family per coverage.
    pub series: Vec<crate::report::Series>,
    /// Sweep/pooling counters.
    pub stats: montecarlo::SweepStats,
}

/// The fleet configuration one E17 grid point runs: [`e16_config`] with
/// *every* resolver poisoned (the attack is the constant; the faults are
/// the sweep), `loss` applied to every tier as both NTP sample loss and
/// DNS SERVFAIL probability, a 300 s outage from t = 0 on the first
/// `outage_coverage` resolvers (covering the boot stagger and the
/// poison's landing at t = 100 s), and RFC 8767 serve-stale with a one-
/// hour budget.
pub fn e17_config(
    seed: u64,
    clients: usize,
    resolvers: usize,
    loss: f64,
    outage_coverage: usize,
) -> fleet::FleetConfig {
    const NS: u64 = 1_000_000_000;
    let mut config = e16_config(seed, clients, resolvers, resolvers);
    config.faults.all_tiers = fleet::TierFaults {
        ntp_loss: loss,
        dns_servfail: loss,
    };
    config.faults.serve_stale = Some(fleet::ServeStalePolicy {
        max_stale_secs: 3600,
    });
    config.faults.outages = (0..outage_coverage)
        .map(|_| {
            vec![fleet::OutageWindow {
                start_ns: 0,
                duration_ns: 300 * NS,
            }]
        })
        .collect();
    config
}

/// Runs E17: one [`montecarlo::run_fleets`] invocation sweeps
/// [`E17_LOSSES`] × outage coverage ∈ {0, all resolvers} over the fully
/// poisoned E16 mix.
///
/// The shape the unit test pins: the zero-loss/no-outage corner *is* the
/// fault-free E16 run (inert plan, byte-identical); rising loss drives
/// real rejects and panic episodes through the shared decision core; the
/// boot outage makes plain-NTP boots retry into the poison window; and
/// under SERVFAILs serve-stale re-serves the poisoned entry at the short
/// stale TTL — capturing clients in the §V-mitigated tier that the
/// fault-free attack cannot touch.
pub fn run_e17(seed: u64, clients: usize, resolvers: usize, threads: usize) -> E17Result {
    assert!(resolvers >= 1, "need at least one resolver");
    let coverages = [0usize, resolvers];
    let grid: Vec<(f64, usize)> = E17_LOSSES
        .iter()
        .flat_map(|&loss| coverages.iter().map(move |&c| (loss, c)))
        .collect();
    let outer = threads.max(1).min(grid.len());
    let inner = (threads.max(1) / outer).max(1);
    let configs: Vec<fleet::FleetConfig> = grid
        .iter()
        .map(|&(loss, c)| fleet::FleetConfig {
            threads: inner,
            ..e17_config(seed, clients, resolvers, loss, c)
        })
        .collect();
    let (mut reports, stats) =
        montecarlo::run_fleets(&configs, outer, 1, |fleet, _, _| fleet.run());
    let rows: Vec<E17Row> = grid
        .iter()
        .zip(reports.iter_mut())
        .map(|(&(loss, c), r)| E17Row {
            loss,
            outage_coverage: c,
            report: r.remove(0),
        })
        .collect();
    // Per coverage level, one curve family over the loss axis per tier:
    // fraction shifted, panic episodes per client, boot retries per
    // client (the latter only ever non-zero for plain-NTP tiers).
    let mut series: Vec<crate::report::Series> = Vec::new();
    for &cov in &coverages {
        let cov_rows: Vec<&E17Row> = rows.iter().filter(|r| r.outage_coverage == cov).collect();
        let suffix = if cov == 0 {
            "no outage".to_string()
        } else {
            format!("outage {cov}/{resolvers}")
        };
        for (t, tier) in cov_rows[0].report.tiers.iter().enumerate() {
            let per_client =
                |v: u64, row: &E17Row| v as f64 / row.report.tiers[t].clients.max(1) as f64;
            series.push(crate::report::Series {
                label: format!("{} shifted ({suffix})", tier.label),
                points: cov_rows
                    .iter()
                    .map(|r| (r.loss, r.report.tiers[t].final_shifted_fraction))
                    .collect(),
            });
            series.push(crate::report::Series {
                label: format!("{} panics/client ({suffix})", tier.label),
                points: cov_rows
                    .iter()
                    .map(|r| (r.loss, per_client(r.report.tiers[t].totals.panics, r)))
                    .collect(),
            });
            series.push(crate::report::Series {
                label: format!("{} boot retries/client ({suffix})", tier.label),
                points: cov_rows
                    .iter()
                    .map(|r| (r.loss, per_client(r.report.tiers[t].faults.boot_retries, r)))
                    .collect(),
            });
        }
    }
    E17Result {
        resolvers,
        rows,
        series,
        stats,
    }
}

/// Renders the E17 grid, one line per (loss, coverage, tier) with the
/// tier's decision and fault counters side by side.
pub fn e17_table(result: &E17Result) -> Table {
    let mut t = Table::new(
        "E17 — fault injection over the mixed fleet (loss × outage coverage)",
        &[
            "loss %",
            "outage",
            "tier",
            "shifted %",
            "panics",
            "rejects",
            "pool fails",
            "servfails",
            "outage hits",
            "stale served",
            "boot retries",
            "ntp losses",
        ],
    );
    for row in &result.rows {
        for tier in &row.report.tiers {
            t.push_row(vec![
                format!("{:.1}", 100.0 * row.loss),
                format!("{}/{}", row.outage_coverage, result.resolvers),
                tier.label.clone(),
                format!("{:.1}", 100.0 * tier.final_shifted_fraction),
                tier.totals.panics.to_string(),
                tier.totals.rejects.to_string(),
                tier.totals.pool_failures.to_string(),
                tier.faults.dns_servfails.to_string(),
                tier.faults.outage_hits.to_string(),
                tier.faults.stale_served.to_string(),
                tier.faults.boot_retries.to_string(),
                tier.faults.ntp_losses.to_string(),
            ]);
        }
    }
    t
}

// ---------------------------------------------------------------------
// E18 — partial secure-time deployment: the E16 mix diluted with NTS and
// Roughtime cohort tiers, swept deployment fraction × poisoned
// resolvers. The question the secure tiers exist to answer: how much of
// the paper's population-scale capture survives when a fraction of the
// fleet runs authenticated time — and through *which* residual surface
// (the NTS-KE bootstrap still rides poisoned DNS; Roughtime's
// cross-referencing degenerates at M = 1, the ETH2-Medalla failure).
// ---------------------------------------------------------------------

/// The E18 deployment sweep: the fraction of the population (in
/// sixteenths, see [`e18_tiers`]) moved from the legacy E16 mix onto
/// secure-time tiers.
pub const E18_DEPLOYMENTS: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

/// One point of the E18 grid: the partially-secure fleet with the
/// attacker in `poisoned_resolvers` caches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E18Row {
    /// Fraction of the population on secure-time tiers (NTS + Roughtime).
    pub deployment: f64,
    /// Resolvers the attacker poisoned.
    pub poisoned_resolvers: usize,
    /// The x coordinate of the poisoning axis: `poisoned / resolvers`.
    pub poisoned_fraction: f64,
    /// The mixed fleet's outcome (per-tier secure counters included).
    pub report: fleet::FleetReport,
}

/// Result of the E18 deployment × poisoning sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E18Result {
    /// Independent resolver caches in every fleet.
    pub resolvers: usize,
    /// One row per grid point, deployment-major then poisoned count.
    pub rows: Vec<E18Row>,
    /// Fraction-shifted vs deployment fraction, one curve per tier plus
    /// the fleet-wide one, one family per poisoned-resolver count — and
    /// the secure tiers' capture/detection diagnostics.
    pub series: Vec<crate::report::Series>,
    /// Sweep/pooling counters.
    pub stats: montecarlo::SweepStats,
}

/// The E18 population mix at `deployment` ∈ [0, 1]: the fleet is carved
/// into 16 weighted-round-robin units, `deployment · 16` of them secure
/// (split evenly NTS / Roughtime at their default knobs: day-long NTS
/// key lifetime, M = 3 Roughtime sources) and the rest the [`e16_tiers`]
/// 2:1:1 Chronos / §V-mitigated / plain-NTP legacy mix. Shares are
/// gcd-reduced and zero-share tiers dropped, so `deployment = 0` returns
/// *exactly* [`e16_tiers`] — the inert end of the sweep is the E16 fleet
/// byte for byte.
pub fn e18_tiers(deployment: f64) -> Vec<fleet::CohortTier> {
    use fleet::CohortTier;
    assert!(
        (0.0..=1.0).contains(&deployment),
        "deployment fraction {deployment} outside [0, 1]"
    );
    const UNITS: u32 = 16;
    let secure = (deployment * f64::from(UNITS)).round() as u32;
    if secure == 0 {
        return e16_tiers();
    }
    let nts = secure / 2;
    let roughtime = secure - nts;
    let insecure = UNITS - secure;
    let chronos = insecure / 2;
    let mitigated = insecure / 4;
    let plain = insecure - chronos - mitigated;
    let mut shares = vec![chronos, mitigated, plain, nts, roughtime];
    let g = shares.iter().copied().filter(|&s| s > 0).fold(0, gcd);
    for s in &mut shares {
        *s /= g.max(1);
    }
    let mut base = e16_tiers();
    let mut tiers = Vec::new();
    for (tier, share) in base.drain(..).zip(&shares) {
        if *share > 0 {
            tiers.push(fleet::CohortTier {
                share: *share,
                ..tier
            });
        }
    }
    if shares[3] > 0 {
        tiers.push(CohortTier::nts("nts", shares[3]));
    }
    if shares[4] > 0 {
        tiers.push(CohortTier::roughtime("roughtime", shares[4]));
    }
    tiers
}

fn gcd(a: u32, b: u32) -> u32 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// The fleet configuration one E18 grid point runs: [`e16_config`]'s
/// scenario (poison at t = 100 s, inside the 200 s boot stagger) with the
/// [`e18_tiers`] mix swapped in. No fault plan — E18 isolates the
/// secure-deployment question; the fault × secure-tier interactions are
/// pinned by the engine's unit tests.
pub fn e18_config(
    seed: u64,
    clients: usize,
    resolvers: usize,
    deployment: f64,
    poisoned_resolvers: usize,
) -> fleet::FleetConfig {
    let mut config = e16_config(seed, clients, resolvers, poisoned_resolvers);
    config.tiers = e18_tiers(deployment);
    config
}

/// Runs E18: one [`montecarlo::run_fleets`] invocation sweeps
/// [`E18_DEPLOYMENTS`] × poisoned resolvers ∈ {1, all} over the
/// partially-secure mix.
///
/// The shape the unit test pins: the zero-deployment corner is the E16
/// fleet byte for byte; NTS capture is bounded by the *association*
/// exposure window (only clients whose boot-time NTS-KE resolution fell
/// after the poison landed — polls are authenticated and unspoofable),
/// so the tier tracks the plain-NTP slope rather than the 24-round
/// Chronos one; and Roughtime's M = 3 majority-of-midpoints stays flat
/// under single-resolver poisoning (each client holds at most one
/// captured source) while full poisoning captures whole source sets at
/// boot.
pub fn run_e18(seed: u64, clients: usize, resolvers: usize, threads: usize) -> E18Result {
    assert!(resolvers >= 1, "need at least one resolver");
    let grid = e18_grid(resolvers);
    let outer = threads.max(1).min(grid.len());
    let inner = (threads.max(1) / outer).max(1);
    let configs: Vec<fleet::FleetConfig> = grid
        .iter()
        .map(|&(d, k)| fleet::FleetConfig {
            threads: inner,
            ..e18_config(seed, clients, resolvers, d, k)
        })
        .collect();
    let (mut reports, stats) =
        montecarlo::run_fleets(&configs, outer, 1, |fleet, _, _| fleet.run());
    let rows: Vec<E18Row> = grid
        .iter()
        .zip(reports.iter_mut())
        .map(|(&(d, k), r)| E18Row {
            deployment: d,
            poisoned_resolvers: k,
            poisoned_fraction: k as f64 / resolvers as f64,
            report: r.remove(0),
        })
        .collect();
    e18_result_from_rows(resolvers, rows, stats)
}

/// The E18 grid, deployment-major: every [`E18_DEPLOYMENTS`] fraction
/// crossed with the poisoned-resolver counts `{1, resolvers}` (just
/// `{1}` when there is a single resolver). Shared between [`run_e18`]
/// and chronosd's row-by-row `e18-sweep` jobs so both walk the exact
/// same rows in the exact same order.
pub fn e18_grid(resolvers: usize) -> Vec<(f64, usize)> {
    assert!(resolvers >= 1, "need at least one resolver");
    let mut ks = vec![1usize];
    if resolvers > 1 {
        ks.push(resolvers);
    }
    E18_DEPLOYMENTS
        .iter()
        .flat_map(|&d| ks.iter().map(move |&k| (d, k)))
        .collect()
}

/// Assembles an [`E18Result`] from already-computed rows — the tail of
/// [`run_e18`], split out (like [`e16_result_from_rows`]) so chronosd's
/// checkpointable row-by-row sweeps build the identical structure.
pub fn e18_result_from_rows(
    resolvers: usize,
    rows: Vec<E18Row>,
    stats: montecarlo::SweepStats,
) -> E18Result {
    assert!(!rows.is_empty(), "need at least one E18 row");
    let mut ks: Vec<usize> = rows.iter().map(|r| r.poisoned_resolvers).collect();
    ks.dedup();
    ks.sort_unstable();
    ks.dedup();
    // Per poisoned-resolver count, fraction-shifted vs deployment per
    // tier (tier sets change across deployments, so each label's curve
    // spans the rows where the tier exists), the fleet-wide curve, and
    // the secure tiers' per-client capture/detection diagnostics.
    let mut series: Vec<crate::report::Series> = Vec::new();
    for &k in &ks {
        let k_rows: Vec<&E18Row> = rows.iter().filter(|r| r.poisoned_resolvers == k).collect();
        let suffix = format!("k={k}/{resolvers}");
        let mut labels: Vec<String> = Vec::new();
        for row in &k_rows {
            for tier in &row.report.tiers {
                if !labels.contains(&tier.label) {
                    labels.push(tier.label.clone());
                }
            }
        }
        let tier_points = |f: &dyn Fn(&fleet::TierBreakdown) -> f64, label: &str| {
            k_rows
                .iter()
                .filter_map(|r| {
                    r.report
                        .tiers
                        .iter()
                        .find(|t| t.label == label)
                        .map(|t| (r.deployment, f(t)))
                })
                .collect::<Vec<_>>()
        };
        for label in &labels {
            series.push(crate::report::Series {
                label: format!("{label} shifted ({suffix})"),
                points: tier_points(&|t| t.final_shifted_fraction, label),
            });
        }
        series.push(crate::report::Series {
            label: format!("all clients shifted ({suffix})"),
            points: k_rows
                .iter()
                .map(|r| (r.deployment, r.report.final_shifted_fraction))
                .collect(),
        });
        let per_client = |v: u64, t: &fleet::TierBreakdown| v as f64 / t.clients.max(1) as f64;
        if labels.iter().any(|l| l == "nts") {
            series.push(crate::report::Series {
                label: format!("nts captured assoc/client ({suffix})"),
                points: tier_points(&|t| per_client(t.secure.captured_associations, t), "nts"),
            });
        }
        if labels.iter().any(|l| l == "roughtime") {
            series.push(crate::report::Series {
                label: format!("roughtime inconsistencies/client ({suffix})"),
                points: tier_points(
                    &|t| per_client(t.secure.detected_inconsistencies, t),
                    "roughtime",
                ),
            });
        }
    }
    E18Result {
        resolvers,
        rows,
        series,
        stats,
    }
}

/// Renders the E18 grid, one line per (deployment, poisoned count, tier)
/// with the tier's decision and secure counters side by side.
pub fn e18_table(result: &E18Result) -> Table {
    let mut t = Table::new(
        "E18 — partial secure-time deployment (deployment × poisoned resolvers)",
        &[
            "deployment %",
            "poisoned",
            "tier",
            "shifted %",
            "poisoned clients",
            "captured assoc",
            "inconsistencies",
            "re-keys",
            "accepts",
            "rejects",
        ],
    );
    for row in &result.rows {
        for tier in &row.report.tiers {
            t.push_row(vec![
                format!("{:.0}", 100.0 * row.deployment),
                format!("{}/{}", row.poisoned_resolvers, result.resolvers),
                tier.label.clone(),
                format!("{:.1}", 100.0 * tier.final_shifted_fraction),
                tier.poisoned_clients.to_string(),
                tier.secure.captured_associations.to_string(),
                tier.secure.detected_inconsistencies.to_string(),
                tier.secure.rekeys.to_string(),
                tier.totals.accepts.to_string(),
                tier.totals.rejects.to_string(),
            ]);
        }
    }
    t
}

// ---------------------------------------------------------------------
// E7 — the measurement study (claims C7–C9).
// ---------------------------------------------------------------------

/// Result of the E7 study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E7Result {
    /// What our scan of the synthetic population measured.
    pub measured: StudyFindings,
    /// The paper's published values.
    pub paper: StudyFindings,
}

/// Synthesises a population and scans it.
pub fn run_e7(seed: u64, resolver_count: usize) -> E7Result {
    let population = study::synthesize_population(seed, resolver_count);
    E7Result {
        measured: study::scan(&population, seed ^ 0xabcd),
        paper: study::paper_reference(),
    }
}

impl E7Result {
    /// Renders measured-vs-paper.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "E7 — fragmentation measurement study (measured vs paper §II)",
            &["metric", "measured", "paper"],
        );
        let m = &self.measured;
        let p = &self.paper;
        t.push_row(vec![
            "nameservers fragmenting @548, unsigned".into(),
            format!("{}/{}", m.nameservers_frag_vulnerable, m.nameservers_total),
            format!("{}/{}", p.nameservers_frag_vulnerable, p.nameservers_total),
        ]);
        t.push_row(vec![
            "resolvers accepting some fragments".into(),
            format!("{:.0}%", m.resolvers_accept_any_pct),
            format!("{:.0}%", p.resolvers_accept_any_pct),
        ]);
        t.push_row(vec![
            "resolvers accepting 68-byte-MTU fragments".into(),
            format!("{:.0}%", m.resolvers_accept_tiny_pct),
            format!("{:.0}%", p.resolvers_accept_tiny_pct),
        ]);
        t.push_row(vec![
            "resolvers triggerable via third parties".into(),
            format!("{:.0}%", m.resolvers_triggerable_pct),
            format!("{:.0}%", p.resolvers_triggerable_pct),
        ]);
        t
    }
}

// ---------------------------------------------------------------------
// E8 — mitigations (claim C10).
// ---------------------------------------------------------------------

/// The §V mitigation variants under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum E8Variant {
    /// No attack at all (control).
    NoAttack,
    /// Attack, unmitigated Chronos.
    Unmitigated,
    /// Cap: at most 4 addresses accepted per response.
    RecordCap,
    /// Responses with TTL > 3600 discarded.
    TtlReject,
    /// Both mitigations.
    Both,
    /// Both mitigations, but the attacker holds a 24 h BGP hijack and
    /// serves inconspicuous rotating responses (the §V residual).
    BothPlusBgp24h,
}

impl E8Variant {
    /// All variants in report order.
    pub fn all() -> [E8Variant; 6] {
        [
            E8Variant::NoAttack,
            E8Variant::Unmitigated,
            E8Variant::RecordCap,
            E8Variant::TtlReject,
            E8Variant::Both,
            E8Variant::BothPlusBgp24h,
        ]
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            E8Variant::NoAttack => "no attack",
            E8Variant::Unmitigated => "attack, unmitigated",
            E8Variant::RecordCap => "attack, cap 4/response",
            E8Variant::TtlReject => "attack, reject TTL>1h",
            E8Variant::Both => "attack, both mitigations",
            E8Variant::BothPlusBgp24h => "24h BGP hijack vs both",
        }
    }
}

/// One E8 outcome row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E8Row {
    /// The variant.
    pub variant: E8Variant,
    /// Final benign pool size.
    pub benign: usize,
    /// Final malicious pool size.
    pub malicious: usize,
    /// Attacker fraction.
    pub fraction: f64,
    /// Whether the attacker controls panic mode (attack success).
    pub attack_succeeds: bool,
}

/// The [`ScenarioConfig`] for one E8 variant — each variant is a pure
/// config, so the whole table runs as one [`montecarlo::run_scenarios`]
/// sweep (and larger grids can Monte-Carlo each variant across seeds).
pub fn e8_config(variant: E8Variant, seed: u64) -> ScenarioConfig {
    let interval = SimDuration::from_secs(200);
    let rounds = 24usize;
    let mut chronos_cfg = compressed_chronos(rounds, interval);
    match variant {
        E8Variant::RecordCap => {
            chronos_cfg.pool.max_records_per_response = Some(4);
        }
        E8Variant::TtlReject => {
            chronos_cfg.pool.reject_ttl_above = Some(3600);
        }
        E8Variant::Both | E8Variant::BothPlusBgp24h => {
            chronos_cfg.pool.max_records_per_response = Some(4);
            chronos_cfg.pool.reject_ttl_above = Some(3600);
        }
        _ => {}
    }
    let attack = match variant {
        E8Variant::NoAttack => None,
        E8Variant::BothPlusBgp24h => Some(AttackPlan {
            strategy: PoisonStrategy::BgpHijack {
                from: SimTime::ZERO,
                until: SimTime::ZERO + interval * (rounds as u64 + 1),
            },
            ..AttackPlan::paper_default(SimDuration::from_millis(500))
        }),
        _ => Some(AttackPlan {
            strategy: PoisonStrategy::Oracle { round: 12 },
            ..AttackPlan::paper_default(SimDuration::from_millis(500))
        }),
    };
    ScenarioConfig {
        seed,
        benign_universe: 120,
        chronos: chronos_cfg,
        attack,
        bgp_low_profile: matches!(variant, E8Variant::BothPlusBgp24h)
            .then(crate::scenario::LowProfileBgp::default),
        ..ScenarioConfig::default()
    }
}

/// Runs all E8 variants as one pooled scenario sweep over `threads`
/// workers.
pub fn run_e8(seed: u64, threads: usize) -> Vec<E8Row> {
    let interval = SimDuration::from_secs(200);
    let rounds = 24usize;
    let variants = E8Variant::all();
    let configs: Vec<ScenarioConfig> = variants.iter().map(|&v| e8_config(v, seed)).collect();
    let rows = montecarlo::run_scenarios(&configs, threads, 1, |scenario, ci, _| {
        scenario.run_pool_generation(interval * (rounds as u64 + 4));
        let (benign, malicious) = scenario.chronos_pool_composition();
        let total = benign + malicious;
        E8Row {
            variant: variants[ci],
            benign,
            malicious,
            fraction: if total == 0 {
                0.0
            } else {
                malicious as f64 / total as f64
            },
            attack_succeeds: chronos::analysis::panic_controlled(total, malicious),
        }
    });
    rows.into_iter().map(|mut r| r.remove(0)).collect()
}

/// Renders the E8 rows.
pub fn e8_table(rows: &[E8Row]) -> Table {
    let mut t = Table::new(
        "E8 — §V mitigations vs the attack (and the 24h-hijack residual)",
        &[
            "variant",
            "benign",
            "malicious",
            "attacker %",
            "attack wins",
        ],
    );
    for r in rows {
        t.push_row(vec![
            r.variant.name().to_string(),
            r.benign.to_string(),
            r.malicious.to_string(),
            format!("{:.1}", 100.0 * r.fraction),
            if r.attack_succeeds { "yes" } else { "no" }.to_string(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// E9 — packet-level fragmentation poisoning sweep.
// ---------------------------------------------------------------------

/// One E9 configuration and its outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E9Row {
    /// The nameserver's IP-ID allocation policy.
    pub ip_id_policy: IpIdPolicy,
    /// Cross-traffic mean interval (None = quiet network).
    pub noise_interval_secs: Option<u64>,
    /// First pool round that received malicious records.
    pub captured_at_round: Option<usize>,
    /// Final attacker fraction of the pool.
    pub final_fraction: f64,
    /// Whether the attack reached 2/3.
    pub attack_succeeds: bool,
    /// Attacker activity counters.
    pub frag_stats: FragPoisonStats,
}

/// Runs the E9 sweep over IP-ID policies and cross-traffic rates.
pub fn run_e9(seed: u64, rounds: usize) -> Vec<E9Row> {
    let interval = SimDuration::from_secs(200);
    let mut rows = Vec::new();
    let configs: [(IpIdPolicy, Option<u64>); 5] = [
        (IpIdPolicy::GlobalSequential, None),
        (IpIdPolicy::GlobalSequential, Some(30)),
        (IpIdPolicy::GlobalSequential, Some(3)),
        (IpIdPolicy::PerDestSequential, None),
        (IpIdPolicy::Random, None),
    ];
    for (policy, noise) in configs {
        let mut scenario = Scenario::build(ScenarioConfig {
            seed: seed ^ (policy_tag(policy) << 4) ^ noise.unwrap_or(0),
            benign_universe: 120,
            chronos: compressed_chronos(rounds, interval),
            auth_ip_id: policy,
            noise_query_interval: noise.map(SimDuration::from_secs),
            attack: Some(AttackPlan {
                strategy: PoisonStrategy::Fragmentation {
                    start: SimTime::ZERO,
                },
                ..AttackPlan::paper_default(SimDuration::from_millis(500))
            }),
            ..ScenarioConfig::default()
        });
        scenario.run_pool_generation(interval * (rounds as u64 + 4));
        let captured_at_round = scenario
            .chronos()
            .pool()
            .rounds()
            .iter()
            .find(|r| r.added.iter().any(|&a| is_farm_addr(a)))
            .map(|r| r.round);
        let (benign, malicious) = scenario.chronos_pool_composition();
        let total = benign + malicious;
        let frag_stats = scenario
            .nodes
            .frag_attacker
            .map(|id| {
                scenario
                    .world
                    .node::<attacklab::fragpoison::FragPoisoner>(id)
                    .stats()
            })
            .unwrap_or_default();
        rows.push(E9Row {
            ip_id_policy: policy,
            noise_interval_secs: noise,
            captured_at_round,
            final_fraction: if total == 0 {
                0.0
            } else {
                malicious as f64 / total as f64
            },
            attack_succeeds: chronos::analysis::panic_controlled(total, malicious),
            frag_stats,
        });
    }
    rows
}

fn policy_tag(p: IpIdPolicy) -> u64 {
    match p {
        IpIdPolicy::GlobalSequential => 1,
        IpIdPolicy::PerDestSequential => 2,
        IpIdPolicy::Random => 3,
    }
}

/// One forced-MTU ablation row (E9b).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E9MtuRow {
    /// The PMTU the attacker forces onto the nameserver.
    pub forced_mtu: u16,
    /// First pool round that received malicious records.
    pub captured_at_round: Option<usize>,
    /// Final attacker fraction.
    pub final_fraction: f64,
    /// Probe responses the attacker failed to forge (e.g. nothing
    /// fragments, or no glue reachable in the tail).
    pub forge_failures: u64,
}

/// E9b: ablation over the forced MTU. At 296 every glue record lands in
/// the forged tail (deterministic redirect); at 548 — the paper's measured
/// bound for real nameservers — only the trailing glue records are
/// reachable, so the resolver only sometimes picks a poisoned nameserver
/// and capture arrives later (or not within the window).
pub fn run_e9_mtu(seed: u64, rounds: usize) -> Vec<E9MtuRow> {
    let interval = SimDuration::from_secs(200);
    [296u16, 380, 460, 548]
        .into_iter()
        .map(|mtu| {
            let mut scenario = Scenario::build(ScenarioConfig {
                seed: seed ^ u64::from(mtu),
                benign_universe: 120,
                chronos: compressed_chronos(rounds, interval),
                frag_forced_mtu: Some(mtu),
                attack: Some(AttackPlan {
                    strategy: PoisonStrategy::Fragmentation {
                        start: SimTime::ZERO,
                    },
                    ..AttackPlan::paper_default(SimDuration::from_millis(500))
                }),
                ..ScenarioConfig::default()
            });
            scenario.run_pool_generation(interval * (rounds as u64 + 4));
            let captured_at_round = scenario
                .chronos()
                .pool()
                .rounds()
                .iter()
                .find(|r| r.added.iter().any(|&a| is_farm_addr(a)))
                .map(|r| r.round);
            let forge_failures = scenario
                .nodes
                .frag_attacker
                .map(|id| {
                    scenario
                        .world
                        .node::<attacklab::fragpoison::FragPoisoner>(id)
                        .stats()
                        .forge_failures
                })
                .unwrap_or(0);
            E9MtuRow {
                forced_mtu: mtu,
                captured_at_round,
                final_fraction: scenario.attacker_fraction(),
                forge_failures,
            }
        })
        .collect()
}

/// Renders the E9b rows.
pub fn e9_mtu_table(rows: &[E9MtuRow]) -> Table {
    let mut t = Table::new(
        "E9b — forced-MTU ablation (glue reachability in the forged tail)",
        &["forced mtu", "captured @", "attacker %", "forge failures"],
    );
    for r in rows {
        t.push_row(vec![
            r.forced_mtu.to_string(),
            r.captured_at_round
                .map(|x| format!("round {x}"))
                .unwrap_or_else(|| "never".to_string()),
            format!("{:.1}", 100.0 * r.final_fraction),
            r.forge_failures.to_string(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// E10 — consensus pool generation (the paper's recommended fix, [12]).
// ---------------------------------------------------------------------

/// One E10 configuration and outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E10Row {
    /// Consensus rule in force.
    pub rule: chronos::consensus::ConsensusRule,
    /// Total resolvers queried per round.
    pub resolvers: usize,
    /// Resolvers the attacker poisoned.
    pub poisoned: usize,
    /// Whether the zone serves a stable (consensus-friendly) answer set.
    pub stable_zone: bool,
    /// Final benign pool size.
    pub benign: usize,
    /// Final malicious pool size.
    pub malicious: usize,
    /// Attack success (any malicious record admitted).
    pub attack_succeeds: bool,
}

/// Runs the consensus-mitigation sweep: for each rule, how many poisoned
/// resolvers does the attacker need — and what does consensus cost over a
/// rotating zone? The five cases fan out over `threads` workers via
/// [`montecarlo::run_grid`].
pub fn run_e10(seed: u64, threads: usize) -> Vec<E10Row> {
    use chronos::consensus::ConsensusRule;

    let cases: Vec<(ConsensusRule, usize, bool)> = vec![
        (ConsensusRule::Union, 1, true),
        (ConsensusRule::Majority, 1, true),
        (ConsensusRule::Majority, 2, true),
        (ConsensusRule::Intersection, 2, true),
        (ConsensusRule::Majority, 1, false),
    ];
    montecarlo::run_grid(
        &cases,
        threads,
        1,
        |&(rule, poisoned, stable), case_idx, _| e10_case(seed, case_idx, rule, poisoned, stable),
    )
    .into_iter()
    .map(|mut r| r.remove(0))
    .collect()
}

fn e10_case(
    seed: u64,
    case_idx: usize,
    rule: chronos::consensus::ConsensusRule,
    poisoned: usize,
    stable: bool,
) -> E10Row {
    use chronos::multipath::ConsensusPoolClient;
    use dnslab::resolver::{RecursiveResolver, Upstream};
    use dnslab::server::AuthServer;
    use dnslab::zone::{pool_ntp_zone, Rotation, Zone};
    use netsim::world::World;
    use std::net::Ipv4Addr;

    let resolvers = 3usize;
    {
        let ns_addr = Ipv4Addr::new(203, 0, 113, 1);
        let client_addr = Ipv4Addr::new(198, 51, 100, 10);
        let mut world = World::new(seed ^ case_idx as u64);
        world.trace_mut().set_enabled(false);
        let zone = if stable {
            let addrs: Vec<Ipv4Addr> = (1..=4u8).map(|i| Ipv4Addr::new(10, 32, 0, i)).collect();
            Zone::new("pool.ntp.org".parse().expect("static name"))
                .with_synthetic_ns(2, Ipv4Addr::new(203, 0, 113, 101))
                .with_rotation(Rotation::new(addrs, 4, 150))
        } else {
            pool_ntp_zone(96, 2)
        };
        world.add_node(
            "auth",
            Box::new(AuthServer::new(ns_addr, vec![zone])),
            &[ns_addr],
        );
        let mut resolver_addrs = Vec::new();
        let mut resolver_ids = Vec::new();
        for i in 0..resolvers {
            let addr = Ipv4Addr::new(198, 51, 100, 60 + i as u8);
            let mut res = RecursiveResolver::new(
                addr,
                vec![Upstream {
                    zone: "pool.ntp.org".parse().expect("static name"),
                    ns_names: vec![],
                    bootstrap: vec![ns_addr],
                }],
            );
            res.allow_client(client_addr);
            resolver_ids.push(world.add_node(format!("res{i}"), Box::new(res), &[addr]));
            resolver_addrs.push(addr);
        }
        let client = world.add_node(
            "consensus-client",
            Box::new(ConsensusPoolClient::new(
                client_addr,
                resolver_addrs,
                rule,
                PoolGenConfig {
                    queries: 12,
                    query_interval: SimDuration::from_secs(200),
                    ..PoolGenConfig::default()
                },
            )),
            &[client_addr],
        );
        // Poison the first `poisoned` resolvers' caches directly (the
        // poisoning mechanics are E1/E9's subject; E10 is about quorums).
        for &id in resolver_ids.iter().take(poisoned) {
            let name: Name = "pool.ntp.org".parse().expect("static name");
            let records: Vec<dnslab::wire::Record> = attacklab::payload::farm_addrs(89)
                .into_iter()
                .map(|a| dnslab::wire::Record::a(name.clone(), a, 86_401))
                .collect();
            let now = world.now();
            world.node_mut::<RecursiveResolver>(id).cache_mut().insert(
                now,
                dnslab::cache::CacheKey::a(name),
                &records,
            );
        }
        world.run_for(SimDuration::from_secs(200 * 13));
        let c = world.node::<ConsensusPoolClient>(client);
        let (benign, malicious) = c.composition(is_farm_addr);
        E10Row {
            rule,
            resolvers,
            poisoned,
            stable_zone: stable,
            benign,
            malicious,
            attack_succeeds: malicious > 0,
        }
    }
}

/// Renders the E10 rows.
pub fn e10_table(rows: &[E10Row]) -> Table {
    let mut t = Table::new(
        "E10 — consensus pool generation (the paper's recommended fix)",
        &[
            "rule",
            "poisoned/of",
            "zone",
            "benign",
            "malicious",
            "attack wins",
        ],
    );
    for r in rows {
        t.push_row(vec![
            format!("{:?}", r.rule),
            format!("{}/{}", r.poisoned, r.resolvers),
            if r.stable_zone { "stable" } else { "rotating" }.to_string(),
            r.benign.to_string(),
            r.malicious.to_string(),
            if r.attack_succeeds { "yes" } else { "no" }.to_string(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// E11 — the blind-spoofing baseline (how hard poisoning is without
// fragments or BGP).
// ---------------------------------------------------------------------

/// One E11 configuration and outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E11Row {
    /// Human-readable resolver hardening level.
    pub resolver_profile: String,
    /// Attacker bursts fired.
    pub attempts: u64,
    /// Whether the cache ended up poisoned.
    pub poisoned: bool,
    /// Analytic per-attempt success probability (entropy argument).
    pub analytic_per_attempt: f64,
    /// Forged responses the resolver rejected on TXID grounds.
    pub rejected_txid: u64,
}

/// Runs the blind-spoofing baseline against a weak and a hardened resolver.
pub fn run_e11(seed: u64) -> Vec<E11Row> {
    use attacklab::kaminsky::{
        per_attempt_success_probability, BlindSpoofAttacker, BlindSpoofConfig, PortGuess,
    };
    use dnslab::resolver::{RecursiveResolver, ResolverConfig, SourcePortPolicy, Upstream};
    use dnslab::server::AuthServer;
    use dnslab::zone::pool_ntp_zone;
    use netsim::world::World;
    use std::net::Ipv4Addr;

    let mut rows = Vec::new();
    let profiles: [(&str, ResolverConfig, PortGuess, bool, u32); 2] = [
        (
            "fixed port + sequential TXID",
            ResolverConfig {
                source_ports: SourcePortPolicy::Fixed(3333),
                random_txid: false,
                open: true,
                ..ResolverConfig::default()
            },
            PortGuess::Known(3333),
            true,
            1,
        ),
        (
            "random port + random TXID",
            ResolverConfig {
                open: true,
                ..ResolverConfig::default()
            },
            PortGuess::Range {
                lo: 1024,
                hi: 65535,
            },
            false,
            64_512,
        ),
    ];
    for (label, resolver_cfg, guess, sequential, port_space) in profiles {
        let ns_addr = Ipv4Addr::new(203, 0, 113, 1);
        let resolver_addr = Ipv4Addr::new(198, 51, 100, 53);
        let attacker_addr = Ipv4Addr::new(198, 19, 0, 68);
        let mut world = World::new(seed);
        world.trace_mut().set_enabled(false);
        world.add_node(
            "auth",
            Box::new(AuthServer::new(ns_addr, vec![pool_ntp_zone(96, 2)])),
            &[ns_addr],
        );
        let res = RecursiveResolver::new(
            resolver_addr,
            vec![Upstream {
                zone: "pool.ntp.org".parse().expect("static name"),
                ns_names: vec![],
                bootstrap: vec![ns_addr],
            }],
        )
        .with_config(resolver_cfg);
        let resolver = world.add_node("resolver", Box::new(res), &[resolver_addr]);
        let burst = 64usize;
        let attacker = world.add_node(
            "spoofer",
            Box::new(BlindSpoofAttacker::new(
                attacker_addr,
                BlindSpoofConfig {
                    resolver: resolver_addr,
                    nameserver: ns_addr,
                    qname: "pool.ntp.org".parse().expect("static name"),
                    records: 89,
                    ttl: 86_401,
                    burst,
                    port_guess: guess,
                    sequential_txid_guess: sequential,
                    attempt_interval: SimDuration::from_secs(200),
                },
            )),
            &[attacker_addr],
        );
        world.run_for(SimDuration::from_secs(2400));
        let attempts = world.node::<BlindSpoofAttacker>(attacker).stats().attempts;
        let now = world.now();
        let resolver_node = world.node_mut::<RecursiveResolver>(resolver);
        let poisoned = resolver_node
            .cache_mut()
            .get(
                now,
                &dnslab::cache::CacheKey::a("pool.ntp.org".parse().expect("static name")),
            )
            .map(|records| records.iter().filter_map(|r| r.as_a()).any(is_farm_addr))
            .unwrap_or(false);
        let rejected_txid = world
            .node::<RecursiveResolver>(resolver)
            .stats()
            .rejected_txid;
        rows.push(E11Row {
            resolver_profile: label.to_string(),
            attempts,
            poisoned,
            analytic_per_attempt: per_attempt_success_probability(burst, port_space),
            rejected_txid,
        });
    }
    rows
}

/// Renders the E11 rows.
pub fn e11_table(rows: &[E11Row]) -> Table {
    let mut t = Table::new(
        "E11 — blind (Kaminsky) spoofing baseline",
        &[
            "resolver",
            "attempts",
            "poisoned",
            "p/attempt (analytic)",
            "txid rejects",
        ],
    );
    for r in rows {
        t.push_row(vec![
            r.resolver_profile.clone(),
            r.attempts.to_string(),
            if r.poisoned { "yes" } else { "no" }.to_string(),
            fmt_prob(r.analytic_per_attempt),
            r.rejected_txid.to_string(),
        ]);
    }
    t
}

/// Renders the E9 rows.
pub fn e9_table(rows: &[E9Row]) -> Table {
    let mut t = Table::new(
        "E9 — defragmentation poisoning vs IP-ID policy and cross-traffic",
        &[
            "ip-id policy",
            "noise",
            "captured @",
            "attacker %",
            "wins",
            "plants",
        ],
    );
    for r in rows {
        t.push_row(vec![
            format!("{:?}", r.ip_id_policy),
            r.noise_interval_secs
                .map(|s| format!("1/{s}s"))
                .unwrap_or_else(|| "none".to_string()),
            r.captured_at_round
                .map(|x| format!("round {x}"))
                .unwrap_or_else(|| "never".to_string()),
            format!("{:.1}", 100.0 * r.final_fraction),
            if r.attack_succeeds { "yes" } else { "no" }.to_string(),
            r.frag_stats.plants.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2_reproduces_round_12_deadline() {
        let r = run_e2(PoolModelParams::default());
        assert_eq!(r.latest_winning_round, Some(12));
        assert_eq!(r.rows.len(), 24);
        let round12 = &r.rows[11];
        assert_eq!((round12.benign, round12.malicious), (44, 89));
        assert!(r.table().to_string().contains("44"));
    }

    #[test]
    fn e3_reproduces_89() {
        let rows = run_e3();
        let ethernet = rows
            .iter()
            .find(|r| r.mtu == 1500 && r.edns)
            .expect("row present");
        assert_eq!(ethernet.max_records, 89);
        assert!(ethernet.wire_bytes <= ethernet.budget);
        assert!(e3_table(&rows).to_string().contains("89"));
    }

    #[test]
    fn e4_closed_form_and_mc_agree() {
        let rows = run_e4(1, &[0.05, 0.2], 4000, 4);
        for r in &rows {
            assert!((r.analytic.p_chronos - r.mc_chronos).abs() < 0.03);
            assert!(r.analytic.p_chronos > r.analytic.p_plain);
        }
        assert_eq!(e4_table(&rows).len(), 2);
    }

    #[test]
    fn e5_shows_collapse_at_two_thirds() {
        let rows = run_e5(133, 15, 5, &[0.1, 0.25, 0.5, 0.67, 0.7], 2);
        let low = &rows[0];
        let at_threshold = &rows[3];
        assert!(low.bound.expected_years > 1.0);
        assert!(at_threshold.bound.panic_is_controlled);
        assert!(at_threshold.bound.expected_years < 1e-3);
        let table = e5_table(133, &rows).to_string();
        assert!(table.contains("yes"));
    }

    #[test]
    fn e1_oracle_timeline_matches_paper() {
        let r = run_e1(7, E1Strategy::Oracle { round: 12 }, 24);
        assert_eq!(r.rows.len(), 24);
        assert_eq!(r.first_malicious_round, Some(12));
        assert!(r.attack_succeeds);
        let last = r.rows.last().unwrap();
        assert_eq!((last.pool_benign, last.pool_malicious), (44, 89));
        // Rounds 13.. added nothing: the poisoned entry is cached.
        for row in &r.rows[12..] {
            assert_eq!(row.added_benign + row.added_malicious, 0);
        }
    }

    #[test]
    fn figure_drivers_project_single_sweeps() {
        let e4 = e4_figure(1, &[0.05, 0.2], 500, 2);
        assert_eq!(e4.len(), 3);
        for s in &e4 {
            assert_eq!(s.points.len(), 2);
            assert_eq!(s.points[0].0, 0.05);
        }
        let chronos_series = &e4[1];
        let plain_series = &e4[0];
        assert!(
            chronos_series.points[0].1 > plain_series.points[0].1,
            "amplification"
        );

        let e5 = e5_figure(133, 15, 5, &[0.1, 0.67], 2);
        assert_eq!(e5.len(), 2);
        let years = &e5[0];
        assert!(
            years.points[0].1 > years.points[1].1,
            "log-years collapse toward 2/3: {:?}",
            years.points
        );
    }

    #[test]
    fn e14_population_attack_separates_variants() {
        let r = run_e14(11, 256, 2);
        assert_eq!(r.rows.len(), 4);
        assert_eq!(r.series.len(), 4);
        assert_eq!(r.stats.trials, 4);
        let by_label = |needle: &str| {
            r.rows
                .iter()
                .find(|row| row.label.contains(needle))
                .expect("variant present")
        };
        let none = by_label("no attack");
        let early = by_label("early");
        let late = by_label("late");
        let mitigated = by_label("mitigations");
        assert_eq!(none.report.final_shifted_fraction, 0.0);
        assert_eq!(none.report.poisoned_clients, 0);
        assert!(
            early.report.final_shifted_fraction > 0.9,
            "in-window poisoning shifts the whole population: {}",
            early.report.final_shifted_fraction
        );
        assert_eq!(early.report.poisoned_clients, 256);
        // The late poison lands after most clients froze their pools: only
        // stragglers still inside generation pick it up, and clients with
        // untouched pools cannot shift at all.
        assert!(
            late.report.poisoned_clients > 0 && late.report.poisoned_clients < 256,
            "only in-window stragglers are poisoned: {}",
            late.report.poisoned_clients
        );
        assert!(
            late.report.final_shifted_fraction
                <= late.report.poisoned_clients as f64 / 256.0 + 1e-9,
            "unpoisoned pools never shift: {} shifted vs {} poisoned",
            late.report.final_shifted_fraction,
            late.report.poisoned_clients
        );
        assert!(
            late.report.final_shifted_fraction < early.report.final_shifted_fraction,
            "late capture is strictly smaller: {} vs {}",
            late.report.final_shifted_fraction,
            early.report.final_shifted_fraction
        );
        assert_eq!(
            mitigated.report.poisoned_clients, 0,
            "TTL mitigation rejects the day-long poison at fleet scale"
        );
        assert_eq!(mitigated.report.final_shifted_fraction, 0.0);
        assert_eq!(e14_table(&r).len(), 4);
    }

    #[test]
    fn e16_capture_tracks_the_poisoned_resolver_fraction() {
        let resolvers = 4;
        let r = run_e16(11, 128, resolvers, 2);
        assert_eq!(r.rows.len(), resolvers + 1);
        // One curve per tier plus the fleet-wide one.
        assert_eq!(r.series.len(), 4);
        let labels: Vec<&str> = r.series.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(
            labels,
            ["chronos", "chronos §V", "plain ntp", "all clients"]
        );
        let by_label = |needle: &str| {
            r.series
                .iter()
                .find(|s| s.label == needle)
                .expect("series present")
        };
        // k = 0: nobody is poisoned, nobody shifts.
        assert_eq!(r.rows[0].report.poisoned_clients, 0);
        assert_eq!(r.rows[0].report.final_shifted_fraction, 0.0);
        // The fleet-wide curve is monotone in the poisoned fraction and
        // strictly grows over the sweep.
        let all = by_label("all clients");
        assert!(all.points.windows(2).all(|w| w[1].1 >= w[0].1 - 1e-9));
        assert!(all.points.last().unwrap().1 > 0.4);
        // Stock Chronos tracks the poisoned-resolver fraction: every
        // client behind a poisoned cache has >= 23 rounds to absorb it.
        let chronos = by_label("chronos");
        let full_capture = chronos.points.last().unwrap().1;
        assert!(
            full_capture > 0.9,
            "all resolvers poisoned captures the stock tier: {full_capture}"
        );
        for &(x, y) in &chronos.points {
            assert!(
                (y - x).abs() < 0.25,
                "chronos capture {y} tracks poisoned fraction {x}"
            );
        }
        // The §V tier resists at every k (record cap bounds the farm).
        let mitigated = by_label("chronos §V");
        assert!(mitigated.points.iter().all(|&(_, y)| y < 0.05));
        // Plain NTP: one opportunity per client — the t=100 s poison only
        // catches clients resolving after it, so the slope is strictly
        // shallower than stock Chronos but nonzero.
        let plain = by_label("plain ntp");
        let plain_full = plain.points.last().unwrap().1;
        assert!(
            plain_full > 0.1 && plain_full < full_capture,
            "plain capture {plain_full} sits between zero and chronos {full_capture}"
        );
        // Table renders one line per k.
        assert_eq!(e16_table(&r).len(), resolvers + 1);
        // And the homogeneous-R=1 anchor: the same seed and population
        // through run_e14's early variant reproduce E14 exactly (the
        // cohort layer does not perturb the legacy experiment).
        let e14 = run_e14(11, 128, 2);
        assert!(e14.rows[1].report.final_shifted_fraction > 0.9);
    }

    #[test]
    fn e17_faults_degrade_and_widen_the_attack() {
        let resolvers = 2;
        let r = run_e17(11, 96, resolvers, 2);
        assert_eq!(r.rows.len(), 2 * E17_LOSSES.len());
        let at = |loss: f64, cov: usize| {
            r.rows
                .iter()
                .find(|row| row.loss == loss && row.outage_coverage == cov)
                .expect("grid point present")
        };
        // The zero-loss/no-outage corner is the fault-free run: an inert
        // plan takes no draws, so every fault counter is zero and the
        // report is byte-identical to the plain E16 config's.
        let base = at(0.0, 0);
        assert_eq!(base.report.faults, fleet::FaultCounters::default());
        let mut e16_fleet = fleet::Fleet::new(fleet::FleetConfig {
            threads: 1,
            ..e16_config(11, 96, resolvers, resolvers)
        });
        assert_eq!(base.report, e16_fleet.run(), "inert corner equals E16");
        // Loss drives real decision-core escalation: more losses, more
        // rejects than the fault-free corner.
        let heavy = at(0.15, 0);
        assert!(heavy.report.faults.ntp_losses > 0);
        assert!(heavy.report.totals.rejects > base.report.totals.rejects);
        assert!(heavy.report.faults.dns_servfails > 0);
        // SERVFAIL + serve-stale launders the poisoned entry's day-long
        // TTL down to the short stale TTL — capturing §V-mitigated
        // clients the fault-free attack cannot touch.
        assert!(heavy.report.faults.stale_served > 0);
        assert_eq!(base.report.tiers[1].label, "chronos §V");
        assert_eq!(base.report.tiers[1].poisoned_clients, 0);
        assert!(
            heavy.report.tiers[1].poisoned_clients > 0,
            "serve-stale slips the poison past the TTL mitigation"
        );
        // A boot outage alone (zero loss) forces failed queries and
        // plain-NTP boot retries — which land inside the poison window.
        let outage = at(0.0, resolvers);
        assert!(outage.report.faults.outage_hits > 0);
        let plain = &outage.report.tiers[2];
        assert_eq!(plain.label, "plain ntp");
        assert!(plain.faults.boot_retries > 0, "boots retried the outage");
        assert!(
            plain.final_shifted_fraction > base.report.tiers[2].final_shifted_fraction,
            "retries into the poison window widen plain-NTP capture: {} vs {}",
            plain.final_shifted_fraction,
            base.report.tiers[2].final_shifted_fraction
        );
        // Table: one line per (loss, coverage, tier); series: three
        // curves per tier per coverage level.
        assert_eq!(e17_table(&r).len(), r.rows.len() * 3);
        assert_eq!(r.series.len(), 2 * 3 * 3);
    }

    #[test]
    fn e18_secure_deployment_reshapes_the_capture() {
        let resolvers = 4;
        let r = run_e18(11, 128, resolvers, 2);
        assert_eq!(r.rows.len(), 2 * E18_DEPLOYMENTS.len());
        let at = |d: f64, k: usize| {
            r.rows
                .iter()
                .find(|row| row.deployment == d && row.poisoned_resolvers == k)
                .expect("grid point present")
        };
        let tier = |row: &E18Row, label: &str| {
            row.report
                .tiers
                .iter()
                .find(|t| t.label == label)
                .cloned()
                .unwrap_or_else(|| panic!("tier {label} present"))
        };
        // The zero-deployment corner is the E16 fleet byte for byte:
        // e18_tiers(0) gcd-reduces to e16_tiers exactly.
        assert_eq!(e18_tiers(0.0), e16_tiers());
        let base = at(0.0, resolvers);
        let mut e16_fleet = fleet::Fleet::new(fleet::FleetConfig {
            threads: 1,
            ..e16_config(11, 128, resolvers, resolvers)
        });
        assert_eq!(base.report, e16_fleet.run(), "0% deployment equals E16");
        // Full deployment, full poisoning: NTS capture is bounded by the
        // boot-time association window (roughly the half of the tier
        // booting after the t = 100 s poison) — far below the stock
        // Chronos tier's near-total capture at 0% deployment.
        let full = at(1.0, resolvers);
        let nts = tier(full, "nts");
        assert!(nts.secure.captured_associations > 0);
        assert_eq!(
            nts.poisoned_clients, nts.secure.captured_associations,
            "capture is one poisoned boot association per client"
        );
        let chronos_base = tier(base, "chronos").final_shifted_fraction;
        assert!(chronos_base > 0.9);
        assert!(
            nts.final_shifted_fraction > 0.2 && nts.final_shifted_fraction < 0.8,
            "NTS capture tracks the boot-exposure window, not the pool \
             window: {}",
            nts.final_shifted_fraction
        );
        // Roughtime under single-resolver poisoning: captured sources
        // exist, but the M = 3 majority out-votes every one of them —
        // the curve stays flat at zero (no Medalla with M > 1).
        let k1 = at(1.0, 1);
        let rt = tier(k1, "roughtime");
        assert!(rt.secure.captured_associations > 0, "sources were captured");
        assert_eq!(
            rt.final_shifted_fraction, 0.0,
            "majority-of-midpoints rides out one poisoned resolver"
        );
        // Full poisoning captures whole source sets at boot instead.
        let rt_full = tier(full, "roughtime");
        assert!(rt_full.final_shifted_fraction > 0.2);
        // Secure deployment strictly shrinks the fleet-wide capture at
        // full poisoning.
        assert!(
            full.report.final_shifted_fraction < base.report.final_shifted_fraction,
            "secure tiers dilute the capture: {} vs {}",
            full.report.final_shifted_fraction,
            base.report.final_shifted_fraction
        );
        // Table: one line per (row, tier); series: per-k tier curves +
        // fleet-wide + the two secure diagnostics.
        let table_rows: usize = r.rows.iter().map(|row| row.report.tiers.len()).sum();
        assert_eq!(e18_table(&r).len(), table_rows);
        for k in [1, resolvers] {
            for needle in [
                format!("nts shifted (k={k}/{resolvers})"),
                format!("roughtime shifted (k={k}/{resolvers})"),
                format!("all clients shifted (k={k}/{resolvers})"),
                format!("nts captured assoc/client (k={k}/{resolvers})"),
                format!("roughtime inconsistencies/client (k={k}/{resolvers})"),
            ] {
                assert!(
                    r.series.iter().any(|s| s.label == needle),
                    "series {needle} present"
                );
            }
        }
    }

    #[test]
    fn e7_recovers_study_numbers() {
        let r = run_e7(3, 400);
        assert_eq!(r.measured.nameservers_frag_vulnerable, 16);
        assert!((r.measured.resolvers_accept_any_pct - 90.0).abs() < 2.0);
        assert!((r.measured.resolvers_accept_tiny_pct - 64.0).abs() < 2.0);
        assert!((r.measured.resolvers_triggerable_pct - 14.0).abs() < 2.0);
        assert_eq!(r.table().len(), 4);
    }
}
