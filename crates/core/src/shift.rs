//! Time-shift traces: plain NTP vs Chronos, attacked and unattacked (the
//! headline comparison, experiment E6).
//!
//! Each scenario runs for a configurable horizon; the victims' clock error
//! against simulated true time is recorded every poll. The paper's story in
//! one picture: unattacked, both clients stay near zero; attacked through
//! DNS, the plain client is captured from its *single* bootstrap resolution
//! and Chronos from its 24-query pool generation — the "provably secure"
//! client ends up exactly as wrong as the naive one.

use crate::report::Series;
use crate::scenario::{Scenario, ScenarioConfig};
use attacklab::plan::{AttackPlan, PoisonStrategy};
use chronos::config::{ChronosConfig, PoolGenConfig};
use netsim::time::SimDuration;
use ntplab::plain::PlainNtpConfig;
use serde::{Deserialize, Serialize};

/// Parameters of a time-shift trace run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeShiftConfig {
    /// RNG seed.
    pub seed: u64,
    /// Total simulated time.
    pub horizon: SimDuration,
    /// Pool-generation rounds (paper: 24) and their interval.
    pub pool_rounds: usize,
    /// Interval between pool queries.
    pub pool_interval: SimDuration,
    /// Chronos/plain poll interval.
    pub poll_interval: SimDuration,
    /// The attacker's clock shift.
    pub shift: SimDuration,
    /// Benign universe size.
    pub benign_universe: usize,
}

impl Default for TimeShiftConfig {
    fn default() -> Self {
        TimeShiftConfig {
            seed: 42,
            horizon: SimDuration::from_hours(36),
            pool_rounds: 24,
            pool_interval: SimDuration::from_hours(1),
            poll_interval: SimDuration::from_secs(64),
            shift: SimDuration::from_millis(500),
            benign_universe: 150,
        }
    }
}

impl TimeShiftConfig {
    /// A compressed variant for tests and quick benches: minutes instead of
    /// hours, same round structure.
    pub fn compressed(seed: u64) -> Self {
        TimeShiftConfig {
            seed,
            horizon: SimDuration::from_secs(24 * 200 + 2400),
            pool_rounds: 24,
            pool_interval: SimDuration::from_secs(200),
            poll_interval: SimDuration::from_secs(32),
            shift: SimDuration::from_millis(500),
            benign_universe: 96,
        }
    }

    fn chronos_config(&self) -> ChronosConfig {
        ChronosConfig {
            poll_interval: self.poll_interval,
            pool: PoolGenConfig {
                queries: self.pool_rounds,
                query_interval: self.pool_interval,
                ..PoolGenConfig::default()
            },
            ..ChronosConfig::default()
        }
    }

    fn plain_config(&self) -> PlainNtpConfig {
        PlainNtpConfig {
            poll_interval: self.poll_interval,
            ..PlainNtpConfig::default()
        }
    }
}

/// The four traces of the headline comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeShiftResult {
    /// Clock-error series (hours, ms): plain NTP without attack.
    pub plain_benign: Series,
    /// Plain NTP with its one bootstrap resolution poisoned.
    pub plain_attacked: Series,
    /// Chronos without attack.
    pub chronos_benign: Series,
    /// Chronos with pool generation poisoned at round 12.
    pub chronos_attacked: Series,
    /// Final pool composition of the attacked Chronos: (benign, malicious).
    pub attacked_pool: (usize, usize),
    /// Final absolute clock error of the attacked Chronos (ms).
    pub chronos_final_error_ms: f64,
    /// Final absolute clock error of the attacked plain client (ms).
    pub plain_final_error_ms: f64,
}

fn trace_to_series(label: &str, trace: &[(netsim::time::SimTime, i64)]) -> Series {
    Series {
        label: label.to_string(),
        points: trace
            .iter()
            .map(|&(t, off)| (t.as_secs_f64() / 3600.0, off as f64 / 1e6))
            .collect(),
    }
}

/// Runs the four scenarios and collects their traces.
pub fn run_time_shift(config: &TimeShiftConfig) -> TimeShiftResult {
    // --- benign run: both clients, no attacker ---
    let mut benign = Scenario::build(ScenarioConfig {
        seed: config.seed,
        benign_universe: config.benign_universe,
        chronos: config.chronos_config(),
        plain: Some(config.plain_config()),
        ..ScenarioConfig::default()
    });
    benign.run_pool_generation(config.horizon);
    let elapsed = benign
        .world
        .now()
        .duration_since(netsim::time::SimTime::ZERO);
    benign.run_for(config.horizon.saturating_sub(elapsed));
    let plain_benign = trace_to_series("plain/benign", benign.plain().offset_trace());
    let chronos_benign = trace_to_series("chronos/benign", benign.chronos().offset_trace());

    // --- attacked run A: poison lands at round 12 of pool generation.
    //     The plain client resolved at t = 0 and is safe; Chronos, with its
    //     24 DNS queries, hands the attacker 11 more chances and falls. ---
    let mut plan = AttackPlan::paper_default(config.shift);
    plan.strategy = PoisonStrategy::Oracle {
        round: (config.pool_rounds / 2).max(1),
    };
    let mut run_a = Scenario::build(ScenarioConfig {
        seed: config.seed ^ 0x5eed,
        benign_universe: config.benign_universe,
        chronos: config.chronos_config(),
        plain: Some(config.plain_config()),
        attack: Some(plan.clone()),
        ..ScenarioConfig::default()
    });
    run_a.run_pool_generation(config.horizon);
    let elapsed = run_a
        .world
        .now()
        .duration_since(netsim::time::SimTime::ZERO);
    run_a.run_for(config.horizon.saturating_sub(elapsed));
    let chronos_attacked = trace_to_series("chronos/attacked", run_a.chronos().offset_trace());
    let attacked_pool = run_a.chronos_pool_composition();
    let now_a = run_a.world.now();
    let chronos_final_error_ms = run_a.chronos().offset_from_true(now_a).abs() as f64 / 1e6;

    // --- attacked run B: poison active at t = 0, hitting the plain
    //     client's one-and-only resolution. ---
    plan.strategy = PoisonStrategy::Oracle { round: 1 };
    let mut run_b = Scenario::build(ScenarioConfig {
        seed: config.seed ^ 0xb0b0,
        benign_universe: config.benign_universe,
        chronos: config.chronos_config(),
        plain: Some(config.plain_config()),
        attack: Some(plan),
        ..ScenarioConfig::default()
    });
    run_b.inject_oracle_poison();
    run_b.run_for(config.horizon.min(SimDuration::from_hours(2)));
    let plain_attacked = trace_to_series("plain/attacked", run_b.plain().offset_trace());
    let now_b = run_b.world.now();
    let plain_final_error_ms = run_b.plain().offset_from_true(now_b).abs() as f64 / 1e6;

    TimeShiftResult {
        plain_benign,
        plain_attacked,
        chronos_benign,
        chronos_attacked,
        attacked_pool,
        chronos_final_error_ms,
        plain_final_error_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compressed_run_shows_the_headline_shape() {
        let result = run_time_shift(&TimeShiftConfig::compressed(4));
        // Unattacked clients stay ms-scale. The worst single point is a
        // tail draw of the latency-jitter asymmetry and moves with the
        // concrete RNG stream (seeds 1–8 range 7.6–10.3 ms under the
        // vendored rand stub), so bound it loosely — the headline contrast
        // is against the ~500 ms attacked traces below.
        let max_benign = result
            .plain_benign
            .points
            .iter()
            .chain(&result.chronos_benign.points)
            .map(|&(_, ms)| ms.abs())
            .fold(0.0, f64::max);
        assert!(max_benign < 25.0, "benign error {max_benign}ms");
        // The attacked plain client is captured from the start.
        assert!(
            result.plain_final_error_ms > 400.0,
            "plain dragged by {}ms",
            result.plain_final_error_ms
        );
        // The attacked Chronos pool matches the paper: 44 benign + 89
        // malicious, and the clock follows.
        assert_eq!(result.attacked_pool, (44, 89));
        assert!(
            result.chronos_final_error_ms > 400.0,
            "chronos dragged by {}ms",
            result.chronos_final_error_ms
        );
    }
}
