//! Plain-text table/series rendering shared by benches and examples.

use core::fmt;
use serde::{Deserialize, Serialize};

/// A renderable text table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "{}", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            write!(f, "+")?;
            for w in &widths {
                write!(f, "{}+", "-".repeat(w + 2))?;
            }
            writeln!(f)
        };
        line(f)?;
        write!(f, "|")?;
        for (h, w) in self.headers.iter().zip(&widths) {
            write!(f, " {h:<w$} |")?;
        }
        writeln!(f)?;
        line(f)?;
        for row in &self.rows {
            write!(f, "|")?;
            for (cell, w) in row.iter().zip(&widths) {
                write!(f, " {cell:>w$} |")?;
            }
            writeln!(f)?;
        }
        line(f)
    }
}

/// Formats a probability compactly (scientific below 1e-3).
pub fn fmt_prob(p: f64) -> String {
    if p == 0.0 {
        "0".to_string()
    } else if p < 1e-3 {
        format!("{p:.2e}")
    } else {
        format!("{p:.4}")
    }
}

/// Formats a year count compactly.
pub fn fmt_years(y: f64) -> String {
    if y.is_infinite() {
        "inf".to_string()
    } else if y >= 100.0 {
        format!("{y:.0}")
    } else if y >= 1.0 {
        format!("{y:.1}")
    } else {
        format!("{y:.2e}")
    }
}

/// A labelled (x, y) series, for figure-shaped outputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Data points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Renders several series as aligned text columns, sampling at the
    /// x-values of the first series.
    pub fn render_columns(series: &[Series], x_label: &str, max_rows: usize) -> String {
        use core::fmt::Write;
        let mut out = String::new();
        let _ = write!(out, "{x_label:>10}");
        for s in series {
            let _ = write!(out, " {:>16}", s.label);
        }
        out.push('\n');
        let Some(first) = series.first() else {
            return out;
        };
        let step = (first.points.len() / max_rows.max(1)).max(1);
        for (i, &(x, _)) in first.points.iter().enumerate() {
            if i % step != 0 {
                continue;
            }
            let _ = write!(out, "{x:>10.2}");
            for s in series {
                let y = sample_at(s, x);
                match y {
                    Some(v) => {
                        let _ = write!(out, " {v:>16.3}");
                    }
                    None => {
                        let _ = write!(out, " {:>16}", "-");
                    }
                }
            }
            out.push('\n');
        }
        out
    }
}

fn sample_at(s: &Series, x: f64) -> Option<f64> {
    // Latest point at or before x.
    s.points
        .iter()
        .take_while(|&&(px, _)| px <= x)
        .last()
        .map(|&(_, y)| y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Demo", &["round", "benign", "malicious"]);
        t.push_row(vec!["12".into(), "44".into(), "89".into()]);
        t.push_row(vec!["13".into(), "48".into(), "89".into()]);
        let s = t.to_string();
        assert!(s.contains("Demo"));
        assert!(s.contains("| round | benign | malicious |"));
        assert!(s.contains("|    12 |     44 |        89 |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn prob_and_year_formatting() {
        assert_eq!(fmt_prob(0.0), "0");
        assert_eq!(fmt_prob(0.25), "0.2500");
        assert!(fmt_prob(1e-6).contains('e'));
        assert_eq!(fmt_years(f64::INFINITY), "inf");
        assert_eq!(fmt_years(250.4), "250");
        assert_eq!(fmt_years(20.45), "20.4");
        assert!(fmt_years(0.001).contains('e'));
    }

    #[test]
    fn series_columns_sample_latest_value() {
        let a = Series {
            label: "a".into(),
            points: vec![(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)],
        };
        let b = Series {
            label: "b".into(),
            points: vec![(0.0, 5.0), (1.5, 6.0)],
        };
        let text = Series::render_columns(&[a, b], "hours", 10);
        assert!(text.contains("hours"));
        assert!(text.lines().count() >= 4);
    }
}
