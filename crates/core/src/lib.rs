//! # chronos-pitfalls — the paper's contribution as a library
//!
//! Reproduction of *"Pitfalls of Provably Secure Systems in the Internet:
//! The Case of Chronos-NTP"* (Jeitner, Shulman, Waidner; DSN-S 2020):
//! off-path DNS cache poisoning turns Chronos' pool-generation mechanism —
//! 24 hourly `pool.ntp.org` lookups — into an amplifier, letting one
//! successful poisoning among the first 12 queries pack the pool with a
//! 2/3 attacker majority (44 benign vs 89 malicious servers) and defeat
//! the provably secure selection by assumption violation.
//!
//! * [`scenario`] — fully wired attack/defence worlds over the substrates;
//! * [`poolmodel`] — the analytic pool-capture model (round-12 deadline);
//! * [`successmodel`] — the 1-vs-12-opportunities amplification;
//! * [`study`] — the §II fragmentation measurement study, re-created;
//! * [`shift`] — plain-vs-Chronos clock-error traces under attack;
//! * [`experiments`] — runners E1–E16, one per reproduced table/figure
//!   (E14 is the population-scale fleet experiment, E16 the heterogeneous
//!   fleet under partial resolver poisoning);
//! * [`report`] — table/series rendering shared by benches and examples.
//!
//! *(Workspace map: see `ARCHITECTURE.md` at the repo root — crate-by-crate
//! architecture, the data-flow diagram, and the determinism contract.)*

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiments;
pub mod montecarlo;
pub mod poolmodel;
pub mod report;
pub mod scenario;
pub mod shift;
pub mod study;
pub mod successmodel;

/// Convenient glob-import of the commonly used types.
pub mod prelude {
    pub use crate::experiments::{
        e14_table, e16_table, e16_tiers, e4_figure, e4_series_from_rows, e5_figure,
        e5_series_from_rows, rows_to_series, run_e1, run_e10, run_e11, run_e14, run_e16, run_e2,
        run_e3, run_e4, run_e5, run_e7, run_e8, run_e9, run_e9_mtu, E14Result, E16Result,
        E1Strategy,
    };
    pub use crate::montecarlo::{
        run_fleets, run_grid, run_scenarios, run_scenarios_detailed, run_trials, success_rate,
        success_rates, trial_seed, SuccessRate, SweepStats,
    };
    pub use crate::poolmodel::{composition_after_poison, latest_winning_round, PoolModelParams};
    pub use crate::report::{Series, Table};
    pub use crate::scenario::{Scenario, ScenarioConfig};
    pub use crate::shift::{run_time_shift, TimeShiftConfig, TimeShiftResult};
    pub use crate::study::{scan, synthesize_population, StudyFindings};
    pub use crate::successmodel::p_any_success;
    pub use fleet::prelude::{Fleet, FleetAttack, FleetConfig, FleetReport};
}
