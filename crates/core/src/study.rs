//! The fragmentation measurement study, re-created (paper §II, C7–C9).
//!
//! The paper's numbers come from scanning the real Internet: 16 of 30
//! `pool.ntp.org` nameservers fragment responses down to MTU 548 without
//! DNSSEC; 90 % of resolvers accept some fragmented responses, 64 % even
//! 68-byte-MTU fragments; 14 % of web-client resolvers can be made to query
//! via SMTP helpers or open-resolver interfaces.
//!
//! Offline we cannot re-measure the Internet, so this module does the next
//! best thing: it synthesises a population whose *feature distribution* is
//! calibrated to the published marginals, and then runs the actual
//! measurement apparatus against it — every probe exercises a real
//! [`IpStack`] (ICMP PMTU forcing, fragment delivery), not a lookup of the
//! profile fields.

use bytes::Bytes;
use netsim::icmp::{IcmpMessage, QuotedPacket};
use netsim::ip::{IpProto, Ipv4Packet};
use netsim::node::NodeHarness;
use netsim::rng::SimRng;
use netsim::stack::{FragFilter, IpStack, StackConfig, StackEvent};
use netsim::udp::UdpDatagram;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// A nameserver's relevant behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NameserverProfile {
    /// Whether the host honours ICMP "fragmentation needed" at all.
    pub accepts_pmtu_updates: bool,
    /// The smallest PMTU it will accept from ICMP.
    pub min_accepted_pmtu: u16,
    /// Whether its zones are DNSSEC-signed (spoofed data would be detected
    /// by a validating resolver).
    pub dnssec: bool,
}

/// A resolver's relevant behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResolverProfile {
    /// Fragment filtering applied by the host or its middleboxes.
    pub frag_filter: FragFilter,
    /// Answers queries from anyone (open resolver).
    pub open: bool,
    /// Shares its cache with an SMTP server an attacker can mail.
    pub smtp_shared: bool,
}

impl ResolverProfile {
    /// Whether an attacker can trigger queries through a third party.
    pub fn triggerable(&self) -> bool {
        self.open || self.smtp_shared
    }
}

/// The synthetic population under study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Population {
    /// Nameserver behaviours.
    pub nameservers: Vec<NameserverProfile>,
    /// Resolver behaviours.
    pub resolvers: Vec<ResolverProfile>,
}

/// Aggregate findings, in the same shape the paper reports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StudyFindings {
    /// Nameservers probed.
    pub nameservers_total: usize,
    /// Nameservers that fragment at ≤ 548 without DNSSEC (paper: 16/30).
    pub nameservers_frag_vulnerable: usize,
    /// Resolvers probed.
    pub resolvers_total: usize,
    /// Resolvers accepting fragmented responses of some size (paper: 90 %).
    pub resolvers_accept_any_pct: f64,
    /// Resolvers accepting 68-byte-MTU fragments (paper: 64 %).
    pub resolvers_accept_tiny_pct: f64,
    /// Resolvers whose queries third parties can trigger (paper: 14 %).
    pub resolvers_triggerable_pct: f64,
}

/// The published values (paper §II), for side-by-side comparison.
pub fn paper_reference() -> StudyFindings {
    StudyFindings {
        nameservers_total: 30,
        nameservers_frag_vulnerable: 16,
        resolvers_total: 0, // ad-network population size not disclosed
        resolvers_accept_any_pct: 90.0,
        resolvers_accept_tiny_pct: 64.0,
        resolvers_triggerable_pct: 14.0,
    }
}

/// Synthesises a population calibrated to the paper's marginals.
///
/// Counts are allocated exactly (then shuffled), so the *population* always
/// matches the published fractions; what the scan measures is whether the
/// probing apparatus recovers them from behaviour alone.
pub fn synthesize_population(seed: u64, resolver_count: usize) -> Population {
    let mut rng = SimRng::seed_from(seed);

    // 30 nameservers: 16 fragment to ≤548 and are unsigned; of the rest,
    // 6 are DNSSEC-signed (fragmenting or not, they're not exploitable)
    // and 8 never lower their PMTU below Ethernet.
    let mut nameservers = Vec::with_capacity(30);
    for _ in 0..16 {
        nameservers.push(NameserverProfile {
            accepts_pmtu_updates: true,
            min_accepted_pmtu: 296,
            dnssec: false,
        });
    }
    for i in 0..14 {
        if i < 6 {
            nameservers.push(NameserverProfile {
                accepts_pmtu_updates: true,
                min_accepted_pmtu: 548,
                dnssec: true,
            });
        } else {
            nameservers.push(NameserverProfile {
                accepts_pmtu_updates: false,
                min_accepted_pmtu: 1500,
                dnssec: false,
            });
        }
    }
    shuffle(&mut nameservers, &mut rng);

    // Resolvers: 64 % accept everything, 26 % accept only not-tiny first
    // fragments, 10 % drop all fragments. Triggerability: 9 % SMTP-shared
    // + 5 % open = 14 %, spread independently of fragment behaviour.
    let n = resolver_count;
    let tiny_ok = n * 64 / 100;
    let some_ok = n * 26 / 100;
    let mut resolvers = Vec::with_capacity(n);
    for i in 0..n {
        let frag_filter = if i < tiny_ok {
            FragFilter::AcceptAll
        } else if i < tiny_ok + some_ok {
            FragFilter::MinFirstFragment(256)
        } else {
            FragFilter::RejectFragments
        };
        resolvers.push(ResolverProfile {
            frag_filter,
            open: false,
            smtp_shared: false,
        });
    }
    shuffle(&mut resolvers, &mut rng);
    let smtp = n * 9 / 100;
    let open = n * 5 / 100;
    for r in resolvers.iter_mut().take(smtp) {
        r.smtp_shared = true;
    }
    for r in resolvers.iter_mut().skip(smtp).take(open) {
        r.open = true;
    }
    shuffle(&mut resolvers, &mut rng);

    Population {
        nameservers,
        resolvers,
    }
}

fn shuffle<T>(items: &mut [T], rng: &mut SimRng) {
    for i in (1..items.len()).rev() {
        let j = rng.sample_indices(i + 1, 1)[0];
        items.swap(i, j);
    }
}

/// Probes whether a nameserver with `profile` emits fragments at MTU 548:
/// spoof ICMP "frag needed", then watch a large response leave its stack.
pub fn probe_nameserver_fragments(profile: NameserverProfile, seed: u64) -> bool {
    let server_addr = Ipv4Addr::new(203, 0, 113, 77);
    let victim_addr = Ipv4Addr::new(198, 51, 100, 77);
    let mut stack = IpStack::with_config(
        vec![server_addr],
        StackConfig {
            accept_pmtu_updates: profile.accepts_pmtu_updates,
            min_accepted_pmtu: profile.min_accepted_pmtu,
            ..StackConfig::default()
        },
    );
    let mut h = NodeHarness::new(seed);
    let icmp = IcmpMessage::FragmentationNeeded {
        mtu: 548,
        original: QuotedPacket {
            src: server_addr,
            dst: victim_addr,
            proto: IpProto::Udp,
            head: [0; 8],
        },
    }
    .into_packet(netsim::world::ROUTER_ADDR, server_addr);
    h.with_ctx(|ctx| {
        stack.handle(ctx, icmp);
        stack.send_udp(
            ctx,
            server_addr,
            53,
            victim_addr,
            5300,
            Bytes::from(vec![0u8; 700]),
        );
    });
    let sent = h.take_sent();
    sent.len() > 1 && sent.iter().any(|p| p.is_fragment())
}

/// Probes whether a resolver with `filter` delivers a response arriving as
/// fragments of the given `mtu`.
pub fn probe_resolver_accepts_fragments(filter: FragFilter, mtu: u16, seed: u64) -> bool {
    let resolver_addr = Ipv4Addr::new(198, 51, 100, 78);
    let server_addr = Ipv4Addr::new(203, 0, 113, 78);
    let mut stack = IpStack::with_config(
        vec![resolver_addr],
        StackConfig {
            frag_filter: filter,
            ..StackConfig::default()
        },
    );
    let dgram = UdpDatagram::new(53, 5300, Bytes::from(vec![0xAB; 700]));
    let mut pkt = Ipv4Packet::new(
        server_addr,
        resolver_addr,
        IpProto::Udp,
        dgram.encode(server_addr, resolver_addr),
    );
    pkt.id = 0x7777;
    let Ok(frags) = pkt.fragment(mtu) else {
        return false;
    };
    let mut h = NodeHarness::new(seed);
    let mut delivered = false;
    h.with_ctx(|ctx| {
        for f in frags {
            if let Some(StackEvent::Udp { .. }) = stack.handle(ctx, f) {
                delivered = true;
            }
        }
    });
    delivered
}

/// Runs the full measurement apparatus over a population.
pub fn scan(population: &Population, seed: u64) -> StudyFindings {
    let vulnerable = population
        .nameservers
        .iter()
        .enumerate()
        .filter(|(i, p)| probe_nameserver_fragments(**p, seed ^ *i as u64) && !p.dnssec)
        .count();
    let mut any = 0usize;
    let mut tiny = 0usize;
    let mut triggerable = 0usize;
    for (i, r) in population.resolvers.iter().enumerate() {
        let s = seed ^ (i as u64) << 8;
        if probe_resolver_accepts_fragments(r.frag_filter, 548, s) {
            any += 1;
        }
        if probe_resolver_accepts_fragments(r.frag_filter, 68, s ^ 1) {
            tiny += 1;
        }
        if r.triggerable() {
            triggerable += 1;
        }
    }
    let n = population.resolvers.len().max(1) as f64;
    StudyFindings {
        nameservers_total: population.nameservers.len(),
        nameservers_frag_vulnerable: vulnerable,
        resolvers_total: population.resolvers.len(),
        resolvers_accept_any_pct: 100.0 * any as f64 / n,
        resolvers_accept_tiny_pct: 100.0 * tiny as f64 / n,
        resolvers_triggerable_pct: 100.0 * triggerable as f64 / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_recovers_paper_nameserver_count() {
        let pop = synthesize_population(1, 200);
        let findings = scan(&pop, 99);
        assert_eq!(findings.nameservers_total, 30);
        assert_eq!(
            findings.nameservers_frag_vulnerable, 16,
            "paper: 16 of 30 nameservers"
        );
    }

    #[test]
    fn scan_recovers_paper_resolver_fractions() {
        let pop = synthesize_population(2, 1000);
        let findings = scan(&pop, 7);
        assert!(
            (findings.resolvers_accept_any_pct - 90.0).abs() < 1.0,
            "any: {}",
            findings.resolvers_accept_any_pct
        );
        assert!(
            (findings.resolvers_accept_tiny_pct - 64.0).abs() < 1.0,
            "tiny: {}",
            findings.resolvers_accept_tiny_pct
        );
        assert!(
            (findings.resolvers_triggerable_pct - 14.0).abs() < 1.0,
            "trigger: {}",
            findings.resolvers_triggerable_pct
        );
    }

    #[test]
    fn probes_measure_behaviour_not_labels() {
        // A nameserver that ignores ICMP never fragments, whatever we call it.
        let stubborn = NameserverProfile {
            accepts_pmtu_updates: false,
            min_accepted_pmtu: 1500,
            dnssec: false,
        };
        assert!(!probe_nameserver_fragments(stubborn, 1));
        let compliant = NameserverProfile {
            accepts_pmtu_updates: true,
            min_accepted_pmtu: 296,
            dnssec: false,
        };
        assert!(probe_nameserver_fragments(compliant, 1));
        // A 548-min host still fragments at 548.
        let at_bound = NameserverProfile {
            accepts_pmtu_updates: true,
            min_accepted_pmtu: 548,
            dnssec: true,
        };
        assert!(probe_nameserver_fragments(at_bound, 1));
    }

    #[test]
    fn resolver_probe_distinguishes_filters() {
        assert!(probe_resolver_accepts_fragments(
            FragFilter::AcceptAll,
            548,
            1
        ));
        assert!(probe_resolver_accepts_fragments(
            FragFilter::AcceptAll,
            68,
            1
        ));
        assert!(probe_resolver_accepts_fragments(
            FragFilter::MinFirstFragment(256),
            548,
            1
        ));
        assert!(!probe_resolver_accepts_fragments(
            FragFilter::MinFirstFragment(256),
            68,
            1
        ));
        assert!(!probe_resolver_accepts_fragments(
            FragFilter::RejectFragments,
            548,
            1
        ));
    }

    #[test]
    fn population_is_deterministic_under_seed() {
        let a = synthesize_population(5, 100);
        let b = synthesize_population(5, 100);
        assert_eq!(a.resolvers, b.resolvers);
        assert_eq!(a.nameservers, b.nameservers);
    }

    #[test]
    fn paper_reference_values() {
        let r = paper_reference();
        assert_eq!(r.nameservers_frag_vulnerable, 16);
        assert_eq!(r.nameservers_total, 30);
        assert_eq!(r.resolvers_accept_any_pct, 90.0);
        assert_eq!(r.resolvers_accept_tiny_pct, 64.0);
        assert_eq!(r.resolvers_triggerable_pct, 14.0);
    }
}
