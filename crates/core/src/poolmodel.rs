//! The analytic pool-capture model (paper §IV, claims C1/C3/C5).
//!
//! If the cache poisoning lands at (or before) round `p` of the 24 hourly
//! queries, the pool freezes at `benign_per_response · (p − 1)` benign
//! servers plus the attacker's `records`: the poisoned entry's TTL > 24 h
//! turns every later round into a cache hit. The attacker controls panic
//! mode iff its fraction reaches 2/3 — which pins the paper's "round 12"
//! deadline.

use chronos::analysis::panic_controlled;
use serde::{Deserialize, Serialize};

/// Model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolModelParams {
    /// Total DNS rounds in pool generation (paper: 24).
    pub rounds: usize,
    /// Benign addresses contributed per un-poisoned round (paper: 4).
    pub benign_per_response: usize,
    /// Attacker addresses in the poisoned response (paper: 89).
    pub attacker_records: usize,
}

impl Default for PoolModelParams {
    fn default() -> Self {
        PoolModelParams {
            rounds: 24,
            benign_per_response: 4,
            attacker_records: 89,
        }
    }
}

/// Pool composition when poisoning lands at a given round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoolCompositionRow {
    /// The 1-based round the poisoned response arrives.
    pub poison_round: usize,
    /// Benign servers gathered before it.
    pub benign: usize,
    /// Attacker servers injected.
    pub malicious: usize,
    /// Final pool size.
    pub total: usize,
    /// The attacker's fraction.
    pub fraction: f64,
    /// Whether the attacker deterministically controls panic mode (≥ 2/3).
    pub controls_panic: bool,
}

/// Composition after poisoning at `poison_round` (1-based).
///
/// Rounds `1..poison_round` contribute benign addresses; the poisoned round
/// and everything after contribute only the attacker's records (cache hits).
///
/// # Panics
///
/// Panics if `poison_round` is zero or beyond the configured rounds.
pub fn composition_after_poison(
    params: PoolModelParams,
    poison_round: usize,
) -> PoolCompositionRow {
    assert!(
        (1..=params.rounds).contains(&poison_round),
        "poison round {poison_round} outside 1..={}",
        params.rounds
    );
    let benign = params.benign_per_response * (poison_round - 1);
    let malicious = params.attacker_records;
    let total = benign + malicious;
    PoolCompositionRow {
        poison_round,
        benign,
        malicious,
        total,
        fraction: malicious as f64 / total as f64,
        controls_panic: panic_controlled(total, malicious),
    }
}

/// Composition of an attack-free generation.
pub fn benign_composition(params: PoolModelParams) -> PoolCompositionRow {
    let benign = params.benign_per_response * params.rounds;
    PoolCompositionRow {
        poison_round: 0,
        benign,
        malicious: 0,
        total: benign,
        fraction: 0.0,
        controls_panic: false,
    }
}

/// One row per possible poisoning round.
pub fn sweep(params: PoolModelParams) -> Vec<PoolCompositionRow> {
    (1..=params.rounds)
        .map(|p| composition_after_poison(params, p))
        .collect()
}

/// The latest round at which poisoning still wins (paper: 12).
pub fn latest_winning_round(params: PoolModelParams) -> Option<usize> {
    sweep(params)
        .into_iter()
        .filter(|r| r.controls_panic)
        .map(|r| r.poison_round)
        .max()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers_at_round_12() {
        let row = composition_after_poison(PoolModelParams::default(), 12);
        assert_eq!(row.benign, 44);
        assert_eq!(row.malicious, 89);
        assert_eq!(row.total, 133);
        assert!(row.fraction >= 2.0 / 3.0);
        assert!(row.controls_panic);
    }

    #[test]
    fn round_13_fails() {
        let row = composition_after_poison(PoolModelParams::default(), 13);
        assert_eq!(row.benign, 48);
        assert!(row.fraction < 2.0 / 3.0);
        assert!(!row.controls_panic);
    }

    /// The paper's headline: success iff poisoning lands by round 12.
    #[test]
    fn latest_winning_round_is_twelve() {
        assert_eq!(latest_winning_round(PoolModelParams::default()), Some(12));
    }

    #[test]
    fn every_round_up_to_twelve_wins() {
        for row in sweep(PoolModelParams::default()) {
            assert_eq!(row.controls_panic, row.poison_round <= 12, "{row:?}");
        }
    }

    #[test]
    fn benign_generation_reaches_96() {
        let row = benign_composition(PoolModelParams::default());
        assert_eq!(row.total, 96);
        assert_eq!(row.fraction, 0.0);
    }

    #[test]
    fn fraction_monotonically_decreases_with_later_poisoning() {
        let rows = sweep(PoolModelParams::default());
        for w in rows.windows(2) {
            assert!(w[0].fraction > w[1].fraction);
        }
    }

    /// §V mitigation (a) in model form: capped at 4 records the attacker
    /// never reaches 2/3 no matter the round.
    #[test]
    fn capped_attacker_never_wins() {
        let capped = PoolModelParams {
            attacker_records: 4,
            ..PoolModelParams::default()
        };
        assert_eq!(latest_winning_round(capped), Some(1));
        // Round 1 with 4-vs-0 is degenerate "control" of an all-attacker
        // pool; from round 2 on the attacker can never win.
        for row in sweep(capped).iter().skip(1) {
            assert!(!row.controls_panic);
        }
    }

    #[test]
    fn bigger_responses_extend_the_deadline() {
        // A hypothetical 120-record response wins later than 89.
        let big = PoolModelParams {
            attacker_records: 120,
            ..PoolModelParams::default()
        };
        assert!(latest_winning_round(big).unwrap() > 12);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn zero_round_rejected() {
        composition_after_poison(PoolModelParams::default(), 0);
    }
}
