//! Attack-opportunity model (paper §IV, claim C4).
//!
//! A traditional NTP client resolves `pool.ntp.org` once: the off-path
//! attacker gets **one** shot at poisoning. Chronos queries 24 times and is
//! captured if any of the first 12 attempts lands — so for a per-attempt
//! success probability `q`, Chronos falls with probability `1 − (1 − q)^12`.
//! Chronos' pool generation *amplifies* the attacker's odds.

use netsim::rng::SimRng;
use serde::{Deserialize, Serialize};

/// Poisoning opportunities the paper attributes to each client.
pub mod opportunities {
    /// Plain NTP: the single bootstrap resolution.
    pub const PLAIN_NTP: u32 = 1;
    /// Chronos: attempts that still capture ≥ 2/3 of the pool.
    pub const CHRONOS_WINNING: u32 = 12;
    /// Chronos: all pool-generation queries (poisoning after round 12
    /// still pollutes, but no longer reaches 2/3).
    pub const CHRONOS_TOTAL: u32 = 24;
}

/// P[at least one success in `tries` attempts] for per-attempt
/// probability `q`.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
pub fn p_any_success(q: f64, tries: u32) -> f64 {
    assert!((0.0..=1.0).contains(&q), "probability out of range: {q}");
    1.0 - (1.0 - q).powi(tries as i32)
}

/// One row of the success-probability comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SuccessRow {
    /// Per-attempt poisoning success probability.
    pub q: f64,
    /// Plain NTP capture probability (1 try).
    pub p_plain: f64,
    /// Chronos capture probability (12 winning tries).
    pub p_chronos: f64,
    /// Ratio `p_chronos / p_plain` — the amplification Chronos hands the
    /// attacker.
    pub amplification: f64,
}

/// Builds the comparison for each `q`.
pub fn sweep(qs: &[f64]) -> Vec<SuccessRow> {
    qs.iter()
        .map(|&q| {
            let p_plain = p_any_success(q, opportunities::PLAIN_NTP);
            let p_chronos = p_any_success(q, opportunities::CHRONOS_WINNING);
            SuccessRow {
                q,
                p_plain,
                p_chronos,
                amplification: if p_plain > 0.0 {
                    p_chronos / p_plain
                } else {
                    f64::NAN
                },
            }
        })
        .collect()
}

/// One Monte-Carlo trial of the opportunity model: does any of `tries`
/// attempts land? The unit the parallel sweeps fan out over.
pub fn single_trial(q: f64, tries: u32, rng: &mut SimRng) -> bool {
    (0..tries).any(|_| rng.chance(q))
}

/// Monte-Carlo estimate of [`p_any_success`] (cross-check).
pub fn monte_carlo(q: f64, tries: u32, trials: u32, rng: &mut SimRng) -> f64 {
    if trials == 0 {
        return 0.0;
    }
    let hits = (0..trials).filter(|_| single_trial(q, tries, rng)).count();
    hits as f64 / f64::from(trials)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_probabilities() {
        assert_eq!(p_any_success(0.0, 12), 0.0);
        assert_eq!(p_any_success(1.0, 1), 1.0);
        assert_eq!(p_any_success(0.5, 0), 0.0);
    }

    #[test]
    fn twelve_tries_beat_one() {
        for q in [0.01, 0.05, 0.1, 0.3, 0.7] {
            let p1 = p_any_success(q, 1);
            let p12 = p_any_success(q, 12);
            assert!(p12 > p1, "q={q}");
            assert!(p12 <= 1.0);
        }
    }

    /// For small q the amplification approaches the opportunity count: 12.
    #[test]
    fn small_q_amplification_is_about_twelve() {
        let rows = sweep(&[1e-4]);
        assert!((rows[0].amplification - 12.0).abs() < 0.1);
    }

    #[test]
    fn large_q_amplification_saturates() {
        let rows = sweep(&[0.9]);
        assert!(rows[0].amplification < 1.2);
        assert!(rows[0].p_chronos > 0.999);
    }

    #[test]
    fn hand_computed_case() {
        // q = 0.1: 1 - 0.9^12 = 0.71757...
        let p = p_any_success(0.1, 12);
        assert!((p - 0.717570).abs() < 1e-5);
    }

    #[test]
    fn monte_carlo_matches_closed_form() {
        let mut rng = SimRng::seed_from(4);
        let q = 0.15;
        let exact = p_any_success(q, 12);
        let mc = monte_carlo(q, 12, 20_000, &mut rng);
        assert!((exact - mc).abs() < 0.02, "exact {exact} mc {mc}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_q_rejected() {
        p_any_success(1.5, 1);
    }
}
