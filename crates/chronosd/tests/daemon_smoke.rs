//! End-to-end smoke over a real Unix-domain socket, mirroring the CI
//! job: boot a daemon, submit a small E16 fleet, observe it live
//! mid-run, pause, checkpoint to a file, shut the daemon down, boot a
//! **fresh** daemon, resume from the file, and assert the final report
//! is byte-identical to the batch `run_e16` output for the same
//! parameters.

use std::path::PathBuf;
use std::time::Duration;

use chronosd::json::Json;
use chronosd::render::report_json;
use chronosd::{Client, Daemon};

const SEED: u64 = 7;
const CLIENTS: usize = 24;
const RESOLVERS: usize = 2;
const POISONED: usize = 1;

fn scratch(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("chronosd-smoke-{}-{name}", std::process::id()));
    path
}

/// Boot a daemon on `socket` on a background thread and wait for it to
/// accept connections.
fn boot(socket: &PathBuf) -> std::thread::JoinHandle<()> {
    let daemon = Daemon::bind(socket).expect("bind scratch socket");
    let handle = std::thread::spawn(move || daemon.serve().expect("serve"));
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while Client::connect(socket).is_err() {
        assert!(std::time::Instant::now() < deadline, "daemon never came up");
        std::thread::sleep(Duration::from_millis(10));
    }
    handle
}

#[test]
fn checkpoint_resume_across_daemon_processes_matches_batch() {
    let socket = scratch("ctl.sock");
    let ckpt = scratch("job.ckpt");

    // First daemon: submit, observe mid-run, pause, checkpoint, shut down.
    let first = boot(&socket);
    let mut client = Client::connect(&socket).expect("connect");
    let pong = client.request("ping", Vec::new()).expect("ping");
    assert_eq!(pong.get("service").and_then(Json::as_str), Some("chronosd"));

    let spec = Json::parse(&format!(
        r#"{{"kind":"e16-fleet","seed":{SEED},"clients":{CLIENTS},"resolvers":{RESOLVERS},"poisoned_resolvers":{POISONED},"slice_s":500,"pause_at_s":1500}}"#
    ))
    .expect("spec literal");
    client
        .request(
            "submit",
            vec![("name".into(), Json::str("smoke")), ("spec".into(), spec)],
        )
        .expect("submit");

    // Live observability: stream a couple of snapshots while it steps.
    let mut watcher = Client::connect(&socket).expect("watch connection");
    let mut event = watcher
        .request(
            "watch",
            vec![
                ("name".into(), Json::str("smoke")),
                ("count".into(), Json::u64(2)),
            ],
        )
        .expect("watch");
    let mut saw_progress = false;
    loop {
        if let Some(progress) = event.get("progress") {
            if let Some(now_s) = progress.get("now_s").and_then(Json::as_f64) {
                assert!(now_s <= 1_500.0, "paused at 1500 s, watched {now_s}");
                saw_progress = true;
            }
        }
        if event.get("event").and_then(Json::as_str) == Some("end") {
            break;
        }
        event = watcher.read_response().expect("watch stream");
    }
    assert!(saw_progress, "watch never surfaced a progress snapshot");

    let paused = client
        .wait_for_state("smoke", "paused", Duration::from_secs(120))
        .expect("job pauses at 1500 s");
    let now_s = paused
        .get("progress")
        .and_then(|p| p.get("now_s"))
        .and_then(Json::as_f64)
        .expect("paused progress");
    assert_eq!(now_s, 1_500.0, "pause boundary");

    // Scrape the metric registry over the socket while the job is
    // parked: the exposition must satisfy our own parser and carry the
    // per-job gauges plus the daemon-wide counters.
    let scraped = client.request("metrics", Vec::new()).expect("metrics");
    let text = scraped
        .get("metrics")
        .and_then(Json::as_str)
        .expect("metrics payload is a string");
    let samples = obs::expo::parse(text).expect("exposition parses");
    assert!(!samples.is_empty(), "exposition carries samples");
    for needle in [
        "chronosd_job_events_per_sec{job=\"smoke\"}",
        "chronosd_job_slice_wall_seconds{job=\"smoke\"}",
        "chronosd_job_sim_seconds_per_wall_second{job=\"smoke\"}",
        // The watch stream above ended, so the subscriber gauge is back
        // to zero but stays registered.
        "chronosd_job_watch_subscribers{job=\"smoke\"} 0",
        "chronosd_commands_total{cmd=\"submit\"} 1",
        "chronosd_connections_total",
        "# TYPE fleet_stage_seconds histogram",
    ] {
        assert!(text.contains(needle), "exposition misses {needle}:\n{text}");
    }
    // The engine side-channel observed real work by now.
    let events = samples
        .iter()
        .find(|s| s.name == "fleet_events_total")
        .expect("fleet_events_total sample");
    assert!(events.value > 0.0, "stepped slices counted no events");

    // A mid-run report is readable over the socket while the job is parked.
    let mid = client
        .request("report", vec![("name".into(), Json::str("smoke"))])
        .expect("mid-run report");
    let mid_end = mid
        .get("report")
        .and_then(|r| r.get("end_s"))
        .and_then(Json::as_f64)
        .expect("report end");
    assert_eq!(mid_end, 1_500.0, "mid-run aggregate at the pause point");

    client
        .request(
            "checkpoint",
            vec![
                ("name".into(), Json::str("smoke")),
                ("path".into(), Json::str(ckpt.display().to_string())),
            ],
        )
        .expect("checkpoint to file");
    client.request("shutdown", Vec::new()).expect("shutdown");
    first.join().expect("first daemon exits");

    // Fresh daemon process (new Daemon, new JobTable): resume and finish.
    let second = boot(&socket);
    let mut client = Client::connect(&socket).expect("reconnect");
    client
        .request(
            "resume",
            vec![
                ("name".into(), Json::str("smoke-resumed")),
                ("path".into(), Json::str(ckpt.display().to_string())),
                ("threads".into(), Json::u64(2)),
                ("slice_s".into(), Json::u64(500)),
            ],
        )
        .expect("resume from checkpoint file");
    client
        .wait_for_state("smoke-resumed", "done", Duration::from_secs(300))
        .expect("resumed job finishes");
    let done = client
        .request("report", vec![("name".into(), Json::str("smoke-resumed"))])
        .expect("final report");
    let daemon_line = done.get("report").expect("report payload").render();

    client.request("shutdown", Vec::new()).expect("shutdown");
    second.join().expect("second daemon exits");
    let _ = std::fs::remove_file(&ckpt);

    // Batch side: the same row out of the full E16 sweep, rendered
    // through the same canonical writer — byte-identical.
    let sweep = chronos_pitfalls::experiments::run_e16(SEED, CLIENTS, RESOLVERS, 2);
    let row = sweep
        .rows
        .iter()
        .find(|row| row.poisoned_resolvers == POISONED)
        .expect("sweep row for k");
    assert_eq!(daemon_line, report_json(&row.report).render());
}

#[test]
fn protocol_errors_are_reported_not_fatal() {
    let socket = scratch("err.sock");
    let handle = boot(&socket);
    let mut client = Client::connect(&socket).expect("connect");

    // Unknown command, unknown job, malformed spec — each answers
    // ok:false and the connection stays usable.
    for bad in [
        r#"{"cmd":"frobnicate"}"#,
        r#"{"cmd":"status","name":"ghost"}"#,
        r#"{"cmd":"submit","name":"x","spec":{"kind":"nope"}}"#,
        r#"{"cmd":"resume","name":"x","path":"/nonexistent/ckpt"}"#,
    ] {
        let request = Json::parse(bad).expect("request literal");
        let response = client.request_raw(&request);
        assert!(response.is_err(), "{bad} should fail");
    }
    let pong = client.request("ping", Vec::new()).expect("still alive");
    assert_eq!(pong.get("protocol").and_then(Json::as_u64), Some(1));
    // The enriched ping: identity, uptime, and job counts by state.
    assert!(pong.get("version").and_then(Json::as_str).is_some());
    assert!(pong.get("uptime_s").and_then(Json::as_u64).is_some());
    let states = pong.get("job_states").expect("job_states object");
    assert_eq!(states.get("running").and_then(Json::as_u64), Some(0));
    assert_eq!(states.get("failed").and_then(Json::as_u64), Some(0));

    // The unknown command was counted as a protocol error.
    let scraped = client.request("metrics", Vec::new()).expect("metrics");
    let text = scraped
        .get("metrics")
        .and_then(Json::as_str)
        .expect("metrics payload");
    let errors = obs::expo::parse(text)
        .expect("exposition parses")
        .into_iter()
        .find(|s| s.name == "chronosd_protocol_errors_total")
        .expect("protocol-error counter");
    assert!(errors.value >= 1.0, "unknown cmd not counted");

    client.request("shutdown", Vec::new()).expect("shutdown");
    handle.join().expect("daemon exits");
}
