//! The durability acceptance tests: a daemon that dies with no chance to
//! clean up — simulated by copying the state dir as of the last snapshot
//! and rebooting from the copy, exactly the bytes a `kill -9` would have
//! left — finishes its jobs **byte-identically** to the uninterrupted
//! batch run, for both fleet jobs (`CHR1` state) and sweep jobs (`SWP1`
//! cursors), across *different* thread counts on the two legs. A third
//! test covers the clean-shutdown path: jobs still running when the
//! daemon exits are recorded as running and auto-resume on the next
//! boot with no operator involvement.

use std::path::{Path, PathBuf};
use std::time::Duration;

use chronosd::json::Json;
use chronosd::render::{report_json, sweep_json};
use chronosd::{Client, Daemon, DaemonConfig, DaemonObs};

const SEED: u64 = 7;
const CLIENTS: usize = 24;
const RESOLVERS: usize = 2;
const POISONED: usize = 1;

fn scratch(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("chronosd-crash-{}-{name}", std::process::id()));
    path
}

/// Boot a daemon over `state_dir` and hand back a handshaken client.
fn boot(
    socket: &PathBuf,
    state_dir: &Path,
    resume_threads: Option<usize>,
) -> (std::thread::JoinHandle<()>, Client) {
    let config = DaemonConfig {
        state_dir: Some(state_dir.to_path_buf()),
        workers: Some(2),
        resume_threads,
        ..DaemonConfig::default()
    };
    let daemon =
        Daemon::bind_with_config(socket, DaemonObs::from_env(), config).expect("bind state daemon");
    let handle = std::thread::spawn(move || daemon.serve().expect("serve"));
    let mut client = Client::connect_with_retry(socket, Duration::from_secs(10)).expect("connect");
    client.handshake().expect("handshake");
    (handle, client)
}

/// Copy a state dir recursively: the frozen image of what a `kill -9`
/// at this instant would leave on disk.
fn freeze(src: &Path, dst: &Path) {
    let _ = std::fs::remove_dir_all(dst);
    std::fs::create_dir_all(dst).expect("create freeze root");
    for entry in std::fs::read_dir(src).expect("read state dir") {
        let entry = entry.expect("dir entry");
        let to = dst.join(entry.file_name());
        if entry.file_type().expect("file type").is_dir() {
            freeze(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).expect("copy state file");
        }
    }
}

fn submit(client: &mut Client, name: &str, spec: &str) {
    let spec = Json::parse(spec).expect("spec literal");
    client
        .request(
            "submit",
            vec![
                ("name".into(), Json::str(name)),
                ("spec".into(), spec.clone()),
            ],
        )
        .expect("submit");
}

fn job_panics_total(client: &mut Client) -> f64 {
    let scraped = client.request("metrics", Vec::new()).expect("metrics");
    let text = scraped
        .get("metrics")
        .and_then(Json::as_str)
        .expect("metrics payload");
    obs::expo::parse(text)
        .expect("exposition parses")
        .into_iter()
        .find(|s| s.name == "chronosd_job_panics_total")
        .map(|s| s.value)
        .unwrap_or(0.0)
}

#[test]
fn fleet_job_survives_a_simulated_crash_byte_identically() {
    let socket_a = scratch("fleet-a.sock");
    let socket_b = scratch("fleet-b.sock");
    let dir = scratch("fleet-state");
    let frozen = scratch("fleet-frozen");
    let _ = std::fs::remove_dir_all(&dir);

    // Leg one: single-threaded, pause at a deterministic anchor, force a
    // snapshot, then freeze the directory — the crash image.
    let (first, mut client) = boot(&socket_a, &dir, None);
    submit(
        &mut client,
        "crashy",
        &format!(
            r#"{{"kind":"e16-fleet","seed":{SEED},"clients":{CLIENTS},"resolvers":{RESOLVERS},"poisoned_resolvers":{POISONED},"threads":1,"slice_s":500,"pause_at_s":1500}}"#
        ),
    );
    client
        .wait_for_state("crashy", "paused", Duration::from_secs(120))
        .expect("job pauses at its anchor");
    let synced = client.request("sync", Vec::new()).expect("sync");
    assert!(synced.get("jobs").and_then(Json::as_u64).unwrap_or(0) >= 1);
    freeze(&dir, &frozen);
    assert_eq!(job_panics_total(&mut client), 0.0, "happy path panicked");
    client.request("shutdown", Vec::new()).expect("shutdown");
    first.join().expect("first daemon exits");

    // Leg two: reboot from the crash image with a *different* thread
    // count; the job comes back paused at the same anchor.
    let (second, mut client) = boot(&socket_b, &frozen, Some(2));
    let status = client
        .request("status", vec![("name".into(), Json::str("crashy"))])
        .expect("adopted job answers status");
    assert_eq!(
        status.get("state").and_then(Json::as_str),
        Some("paused"),
        "rebooted job state: {}",
        status.render()
    );
    client
        .request("unpause", vec![("name".into(), Json::str("crashy"))])
        .expect("unpause");
    client
        .wait_for_state("crashy", "done", Duration::from_secs(300))
        .expect("rebooted job finishes");
    let done = client
        .request("report", vec![("name".into(), Json::str("crashy"))])
        .expect("final report");
    let daemon_line = done.get("report").expect("report payload").render();
    assert_eq!(job_panics_total(&mut client), 0.0, "recovery path panicked");
    client.request("shutdown", Vec::new()).expect("shutdown");
    second.join().expect("second daemon exits");

    // The batch truth, rendered through the same canonical writer.
    let sweep = chronos_pitfalls::experiments::run_e16(SEED, CLIENTS, RESOLVERS, 2);
    let row = sweep
        .rows
        .iter()
        .find(|row| row.poisoned_resolvers == POISONED)
        .expect("sweep row for k");
    assert_eq!(daemon_line, report_json(&row.report).render());

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&frozen);
}

#[test]
fn sweep_job_survives_a_simulated_crash_byte_identically() {
    let socket_a = scratch("sweep-a.sock");
    let socket_b = scratch("sweep-b.sock");
    let dir = scratch("sweep-state");
    let frozen = scratch("sweep-frozen");
    let _ = std::fs::remove_dir_all(&dir);

    // Pause mid-grid (after row 1 of 3), snapshot the SWP1 cursor,
    // freeze, crash.
    let (first, mut client) = boot(&socket_a, &dir, None);
    submit(
        &mut client,
        "grid",
        &format!(
            r#"{{"kind":"e16-sweep","seed":{SEED},"clients":16,"resolvers":{RESOLVERS},"threads":1,"slice_s":900,"pause_at_row":1}}"#
        ),
    );
    client
        .wait_for_state("grid", "paused", Duration::from_secs(120))
        .expect("sweep pauses at its row anchor");
    client.request("sync", Vec::new()).expect("sync");
    freeze(&dir, &frozen);
    client.request("shutdown", Vec::new()).expect("shutdown");
    first.join().expect("first daemon exits");

    // Reboot from the frozen cursor on more threads; a completed row's
    // report is already servable before the grid finishes.
    let (second, mut client) = boot(&socket_b, &frozen, Some(2));
    let early = client
        .request(
            "report",
            vec![
                ("name".into(), Json::str("grid")),
                ("row".into(), Json::u64(0)),
            ],
        )
        .expect("completed row is servable after reboot");
    assert!(early.get("report").is_some(), "row report payload");
    client
        .request("unpause", vec![("name".into(), Json::str("grid"))])
        .expect("unpause");
    client
        .wait_for_state("grid", "done", Duration::from_secs(600))
        .expect("rebooted sweep finishes");
    let done = client
        .request("report", vec![("name".into(), Json::str("grid"))])
        .expect("final sweep report");
    let daemon_line = done.get("sweep").expect("sweep payload").render();
    client.request("shutdown", Vec::new()).expect("shutdown");
    second.join().expect("second daemon exits");

    // The uninterrupted batch sweep renders byte-identically (the wire
    // format deliberately omits derived series/stats).
    let batch = chronos_pitfalls::experiments::run_e16(SEED, 16, RESOLVERS, 1);
    assert_eq!(daemon_line, sweep_json(&batch).render());

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&frozen);
}

#[test]
fn running_jobs_auto_resume_after_a_clean_shutdown() {
    let socket_a = scratch("auto-a.sock");
    let socket_b = scratch("auto-b.sock");
    let dir = scratch("auto-state");
    let _ = std::fs::remove_dir_all(&dir);

    // Shut the daemon down while the job is still mid-run: the final
    // snapshot records it as `running`, so the next boot picks it up
    // with no operator involvement. The fleet is sized so the run spans
    // many slices of real wall time; if it somehow finishes before the
    // shutdown lands, the test degrades to "done jobs survive reboots"
    // rather than failing spuriously.
    let clients = 400;
    let (first, mut client) = boot(&socket_a, &dir, None);
    submit(
        &mut client,
        "longhaul",
        &format!(
            r#"{{"kind":"e16-fleet","seed":{SEED},"clients":{clients},"resolvers":{RESOLVERS},"poisoned_resolvers":{POISONED},"threads":1,"slice_s":60}}"#
        ),
    );
    // Let it make some progress first (at least one slice).
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    loop {
        let status = client
            .request("status", vec![("name".into(), Json::str("longhaul"))])
            .expect("status");
        let slices = status.get("slices").and_then(Json::as_u64).unwrap_or(0);
        let state = status.get("state").and_then(Json::as_str).unwrap_or("");
        if slices >= 1 || state == "done" {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "job never progressed");
        std::thread::sleep(Duration::from_millis(10));
    }
    client.request("shutdown", Vec::new()).expect("shutdown");
    first.join().expect("first daemon exits");

    let (second, mut client) = boot(&socket_b, &dir, Some(2));
    // No unpause, no resubmit: the job is already back in the pool.
    client
        .wait_for_state("longhaul", "done", Duration::from_secs(300))
        .expect("auto-resumed job finishes");
    let done = client
        .request("report", vec![("name".into(), Json::str("longhaul"))])
        .expect("final report");
    let daemon_line = done.get("report").expect("report payload").render();
    client.request("shutdown", Vec::new()).expect("shutdown");
    second.join().expect("second daemon exits");

    let sweep = chronos_pitfalls::experiments::run_e16(SEED, clients, RESOLVERS, 2);
    let row = sweep
        .rows
        .iter()
        .find(|row| row.poisoned_resolvers == POISONED)
        .expect("sweep row for k");
    assert_eq!(daemon_line, report_json(&row.report).render());

    let _ = std::fs::remove_dir_all(&dir);
}
