//! Property tests pinning the durability formats and the
//! corruption-containment contract of the `--state-dir` layer:
//!
//! * `CHRM1` manifests and `SWP1` sweep cursors round-trip losslessly
//!   (decode ∘ encode = identity) for arbitrary job tables and cursors;
//! * any truncation or bit flip is *rejected with the right taxonomy*
//!   ([`CheckpointError::Truncated`] / [`BadChecksum`] / [`BadMagic`] /
//!   [`Corrupt`]) — never accepted, never a panic;
//! * a daemon booted over a corrupt state dir quarantines the damage and
//!   keeps serving: a corrupt manifest boots an empty daemon, a corrupt
//!   job file becomes a `failed` job whose status names the quarantine —
//!   corruption is contained, never fatal.
//!
//! [`BadChecksum`]: CheckpointError::BadChecksum
//! [`BadMagic`]: CheckpointError::BadMagic
//! [`Corrupt`]: CheckpointError::Corrupt

use std::path::{Path, PathBuf};
use std::time::Duration;

use chronosd::json::Json;
use chronosd::state::{decode_manifest, encode_manifest, ManifestEntry};
use chronosd::sweep::{decode, encode};
use chronosd::{Client, Daemon, DaemonConfig, DaemonObs, StateDir, SweepCursor, SweepFlavor};
use fleet::checkpoint::CheckpointError;
use proptest::collection::vec;
use proptest::prelude::*;

fn entry_strategy() -> impl Strategy<Value = ManifestEntry> {
    (
        proptest::string::string_regex("[a-z0-9_-]{1,16}").unwrap(),
        prop_oneof![
            Just("e16-fleet"),
            Just("e17-fleet"),
            Just("e16-sweep"),
            Just("resume"),
        ],
        prop_oneof![
            Just(chronosd::jobs::JobState::Queued),
            Just(chronosd::jobs::JobState::Running),
            Just(chronosd::jobs::JobState::Paused),
            Just(chronosd::jobs::JobState::Stopped),
            Just(chronosd::jobs::JobState::Done),
            Just(chronosd::jobs::JobState::Failed),
        ],
        prop_oneof![
            Just(None),
            proptest::string::string_regex("[ -~]{0,40}")
                .unwrap()
                .prop_map(Some),
        ],
        (1usize..=16, 1u64..=3_600),
        prop_oneof![Just(None), (0u64..10_000).prop_map(Some)],
        prop_oneof![Just(None), (0usize..10).prop_map(Some)],
        0u64..1_000,
        prop_oneof![
            Just(None),
            proptest::string::string_regex("[a-z0-9_-]{1,20}\\.ckpt")
                .unwrap()
                .prop_map(Some),
        ],
        (0u64..1_000, 1u64..5_000),
    )
        .prop_map(
            |(
                name,
                kind,
                state,
                error,
                (threads, slice_s),
                pause_at_s,
                pause_at_row,
                slices,
                file,
                (seed, clients),
            )| {
                ManifestEntry {
                    name,
                    kind: kind.to_string(),
                    state,
                    error,
                    params: chronosd::jobs::Params {
                        threads,
                        slice_s,
                        pause_at_s,
                        pause_at_row,
                    },
                    slices,
                    file,
                    spec: Json::Obj(vec![
                        ("kind".to_string(), Json::str(kind)),
                        ("seed".to_string(), Json::u64(seed)),
                        ("clients".to_string(), Json::u64(clients)),
                    ]),
                }
            },
        )
}

fn cursor_strategy() -> impl Strategy<Value = SweepCursor> {
    (
        any::<bool>(),
        0u64..1_000,
        1usize..5_000,
        1usize..=6,
        0usize..=12,
        vec(vec(any::<u8>(), 0..40), 0..13),
        vec(any::<u8>(), 0..40),
    )
        .prop_map(|(e18, seed, clients, resolvers, row, blobs, live)| {
            // Make the cursor structurally valid: row within the grid,
            // exactly `row` done blobs, a current blob iff incomplete.
            let flavor = if e18 {
                SweepFlavor::E18
            } else {
                SweepFlavor::E16
            };
            let total = flavor.total_rows(resolvers);
            let row = row.min(total);
            let mut done = blobs;
            done.resize(row, vec![0xAB; 7]);
            let current = (row < total).then_some(live);
            SweepCursor {
                flavor,
                seed,
                clients,
                resolvers,
                row,
                done,
                current,
            }
        })
}

proptest! {
    /// Manifest encode → decode is the identity for arbitrary job tables.
    #[test]
    fn manifest_round_trips(entries in vec(entry_strategy(), 0..6)) {
        let decoded = decode_manifest(&encode_manifest(&entries));
        prop_assert_eq!(decoded, Ok(entries));
    }

    /// Any prefix truncation of a manifest is rejected (and classified as
    /// header damage, truncation, or a checksum failure) — never accepted,
    /// never a panic.
    #[test]
    fn truncated_manifests_are_rejected(
        entries in vec(entry_strategy(), 1..4),
        frac in 0u32..1_000,
    ) {
        let bytes = encode_manifest(&entries);
        let cut = (bytes.len() - 1) * frac as usize / 1_000;
        let decoded = decode_manifest(&bytes[..cut]);
        prop_assert!(
            matches!(
                decoded,
                Err(CheckpointError::Truncated)
                    | Err(CheckpointError::BadMagic)
                    | Err(CheckpointError::Corrupt(_))
            ),
            "truncation to {} bytes produced {:?}", cut, decoded
        );
    }

    /// A single bit flip anywhere in the manifest payload is rejected;
    /// flips in the header may also surface as header-shape errors, but
    /// nothing decodes successfully.
    #[test]
    fn flipped_manifests_are_rejected(
        entries in vec(entry_strategy(), 1..4),
        at_frac in 0u32..1_000,
        bit in 0u8..8,
    ) {
        let mut bytes = encode_manifest(&entries);
        let at = (bytes.len() - 1) * at_frac as usize / 1_000;
        bytes[at] ^= 1 << bit;
        // One flip can be semantically invisible (hex parsing in the
        // header is case-insensitive, so `a` → `A` decodes identically);
        // the property is: rejected, or provably lossless — never a
        // silently different job table.
        match decode_manifest(&bytes) {
            Err(_) => {}
            Ok(decoded) => prop_assert_eq!(
                decoded, entries,
                "bit flip at {} decoded to different entries", at
            ),
        }
    }

    /// Sweep-cursor encode → decode is the identity for arbitrary valid
    /// cursors (including complete ones with no current row).
    #[test]
    fn sweep_cursor_round_trips(cursor in cursor_strategy()) {
        prop_assert_eq!(decode(&encode(&cursor)), Ok(cursor));
    }

    /// Truncating or flipping a cursor is rejected with the taxonomy —
    /// truncation before the trailer reads as Truncated/BadChecksum, a
    /// flip as BadChecksum (or BadMagic when it hits the magic itself).
    #[test]
    fn damaged_sweep_cursors_are_rejected(
        cursor in cursor_strategy(),
        frac in 0u32..1_000,
        bit in 0u8..8,
        truncate in any::<bool>(),
    ) {
        let bytes = encode(&cursor);
        if truncate {
            let cut = (bytes.len() - 1) * frac as usize / 1_000;
            let decoded = decode(&bytes[..cut]);
            prop_assert!(
                matches!(
                    decoded,
                    Err(CheckpointError::Truncated) | Err(CheckpointError::BadChecksum)
                ),
                "truncation to {} bytes produced {:?}", cut, decoded
            );
        } else {
            let mut bytes = bytes;
            let at = (bytes.len() - 1) * frac as usize / 1_000;
            bytes[at] ^= 1 << bit;
            let decoded = decode(&bytes);
            prop_assert!(
                matches!(
                    decoded,
                    Err(CheckpointError::BadChecksum) | Err(CheckpointError::BadMagic)
                ),
                "bit flip at {} produced {:?}", at, decoded
            );
        }
    }
}

fn scratch(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("chronosd-propstate-{}-{name}", std::process::id()));
    path
}

/// Boot a state-dir daemon on a background thread and connect.
fn boot(socket: &PathBuf, state_dir: &Path) -> (std::thread::JoinHandle<()>, Client) {
    let config = DaemonConfig {
        state_dir: Some(state_dir.to_path_buf()),
        workers: Some(2),
        ..DaemonConfig::default()
    };
    let daemon =
        Daemon::bind_with_config(socket, DaemonObs::from_env(), config).expect("bind state daemon");
    let handle = std::thread::spawn(move || daemon.serve().expect("serve"));
    let mut client = Client::connect_with_retry(socket, Duration::from_secs(10)).expect("connect");
    client.handshake().expect("handshake");
    (handle, client)
}

#[test]
fn corrupt_manifest_quarantines_and_boots_empty() {
    let socket = scratch("badman.sock");
    let dir = scratch("badman-state");
    let _ = std::fs::remove_dir_all(&dir);
    let state = StateDir::open(&dir).expect("open state dir");
    // A manifest with a valid header shape but flipped payload bytes.
    let mut bytes = encode_manifest(&[]);
    let at = bytes.len() - 1;
    bytes[at] ^= 0x01;
    std::fs::write(dir.join("manifest.chrm"), &bytes).expect("plant corrupt manifest");
    drop(state);

    let (handle, mut client) = boot(&socket, &dir);
    // The daemon is up and empty — corruption was contained, not fatal.
    let jobs = client.request("jobs", Vec::new()).expect("jobs");
    match jobs.get("jobs") {
        Some(Json::Arr(list)) => assert!(list.is_empty(), "booted with ghost jobs: {list:?}"),
        other => panic!("jobs payload missing: {other:?}"),
    }
    // The damaged bytes moved to quarantine/ for inspection.
    assert!(
        dir.join("quarantine").join("manifest.chrm").exists(),
        "corrupt manifest was not quarantined"
    );
    assert!(
        !dir.join("manifest.chrm").exists() || {
            // A snapshot may have rewritten a fresh manifest already;
            // it must decode cleanly if so.
            let rewritten = std::fs::read(dir.join("manifest.chrm")).unwrap();
            decode_manifest(&rewritten).is_ok()
        },
        "corrupt manifest left in place"
    );
    client.request("shutdown", Vec::new()).expect("shutdown");
    handle.join().expect("daemon exits");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_job_file_quarantines_into_failed_job_not_a_dead_daemon() {
    let socket = scratch("badjob.sock");
    let dir = scratch("badjob-state");
    let _ = std::fs::remove_dir_all(&dir);
    let state = StateDir::open(&dir).expect("open state dir");

    // A well-formed manifest whose job file is garbage: the daemon must
    // adopt the job as failed (quarantining the bytes), not die.
    let file = StateDir::job_file_name("wounded");
    state
        .write_job_file(&file, b"CHR1 but not really - flipped to bits")
        .expect("plant corrupt job file");
    let entry = ManifestEntry {
        name: "wounded".to_string(),
        kind: "e16-fleet".to_string(),
        state: chronosd::jobs::JobState::Running,
        error: None,
        params: chronosd::jobs::Params {
            threads: 1,
            slice_s: 500,
            pause_at_s: None,
            pause_at_row: None,
        },
        slices: 1,
        file: Some(file.clone()),
        spec: Json::parse(r#"{"kind":"e16-fleet","seed":7,"clients":8,"resolvers":2}"#).unwrap(),
    };
    state.write_manifest(&[entry]).expect("write manifest");
    drop(state);

    let (handle, mut client) = boot(&socket, &dir);
    let status = client
        .request("status", vec![("name".into(), Json::str("wounded"))])
        .expect("adopted job answers status");
    assert_eq!(
        status.get("state").and_then(Json::as_str),
        Some("failed"),
        "corrupt state must adopt as failed: {}",
        status.render()
    );
    let error = status
        .get("error")
        .and_then(Json::as_str)
        .expect("failed job records why");
    assert!(
        error.contains("quarantined"),
        "error does not name the quarantine: {error}"
    );
    assert!(
        dir.join("quarantine").join(&file).exists(),
        "corrupt job file was not quarantined"
    );

    // The daemon still takes and finishes new work.
    let spec =
        Json::parse(r#"{"kind":"e16-fleet","seed":7,"clients":8,"resolvers":2,"slice_s":3600}"#)
            .unwrap();
    client
        .request(
            "submit",
            vec![("name".into(), Json::str("alive")), ("spec".into(), spec)],
        )
        .expect("submit after quarantine");
    client
        .wait_for_state("alive", "done", Duration::from_secs(120))
        .expect("new job finishes");

    // The quarantine counter observed the containment.
    let scraped = client.request("metrics", Vec::new()).expect("metrics");
    let text = scraped
        .get("metrics")
        .and_then(Json::as_str)
        .expect("metrics payload");
    let quarantines = obs::expo::parse(text)
        .expect("exposition parses")
        .into_iter()
        .find(|s| s.name == "chronosd_quarantines_total")
        .expect("quarantine counter");
    assert!(quarantines.value >= 1.0, "quarantine not counted");

    client.request("shutdown", Vec::new()).expect("shutdown");
    handle.join().expect("daemon exits");
    let _ = std::fs::remove_dir_all(&dir);
}
