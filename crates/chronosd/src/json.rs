//! A small self-contained JSON value type with a writer and a parser.
//!
//! The vendored `serde` stub is a no-op (see `crates/compat/serde`), so the
//! daemon's wire protocol is hand-rolled: requests and responses are
//! [`Json`] trees rendered to **compact single-line** text (the protocol is
//! newline-delimited) and parsed back with a recursive-descent reader.
//!
//! Two properties matter here:
//!
//! * **Canonical output.** Rendering preserves object-key insertion order
//!   and formats numbers deterministically (integers verbatim, floats via
//!   Rust's shortest round-trip `Display`), so two processes rendering the
//!   same report produce byte-identical lines — the CI smoke job diffs a
//!   daemon-produced report against a batch-produced one.
//! * **Exact integers.** Numbers keep their source literal
//!   ([`Json::Num`] stores the text), so a `u64` seed survives a
//!   parse→render round trip without an `f64` detour.

use std::fmt;

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, stored as its literal text (e.g. `"42"`, `"0.125"`).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved and significant for rendering.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A number from a `u64`.
    pub fn u64(v: u64) -> Json {
        Json::Num(v.to_string())
    }

    /// A number from an `i64`.
    pub fn i64(v: i64) -> Json {
        Json::Num(v.to_string())
    }

    /// A number from a `usize`.
    pub fn usize(v: usize) -> Json {
        Json::Num(v.to_string())
    }

    /// A number from an `f64`, rendered with Rust's shortest round-trip
    /// formatting. Non-finite values (which JSON cannot represent) become
    /// `null`.
    pub fn f64(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(format!("{v}"))
        } else {
            Json::Null
        }
    }

    /// A string value.
    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// Look up a key in an object (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number parsed as `u64` (exact; rejects floats and negatives).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(lit) => lit.parse().ok(),
            _ => None,
        }
    }

    /// The number parsed as `usize` (exact).
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(lit) => lit.parse().ok(),
            _ => None,
        }
    }

    /// The number parsed as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(lit) => lit.parse().ok(),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render to a compact single-line JSON string.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(64);
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(lit) => out.push_str(lit),
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::at("trailing characters", p.pos));
        }
        Ok(value)
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl JsonError {
    fn at(message: impl Into<String>, offset: usize) -> JsonError {
        JsonError {
            message: message.into(),
            offset,
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::at(format!("expected '{}'", b as char), self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(JsonError::at(format!("expected '{word}'"), self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(JsonError::at("nesting too deep", self.pos));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(b) => Err(JsonError::at(
                format!("unexpected byte 0x{b:02x}"),
                self.pos,
            )),
            None => Err(JsonError::at("unexpected end of input", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(JsonError::at("expected digits", self.pos));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(JsonError::at("expected fraction digits", self.pos));
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(JsonError::at("expected exponent digits", self.pos));
            }
        }
        // The scanned range is digits/sign/dot/exponent by construction,
        // but a request-path parser never panics on its input: report
        // the impossible case as a parse error instead.
        let lit = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::at("non-ASCII bytes in number", start))?
            .to_string();
        Ok(Json::Num(lit))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err(JsonError::at("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xd800..0xdc00).contains(&code) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&low) {
                                        return Err(JsonError::at(
                                            "invalid low surrogate",
                                            self.pos,
                                        ));
                                    }
                                    let combined =
                                        0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => {
                                    return Err(JsonError::at("invalid \\u escape", start));
                                }
                            }
                            continue; // hex4 advanced past the escape
                        }
                        _ => return Err(JsonError::at("invalid escape", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(JsonError::at("raw control character in string", self.pos));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| JsonError::at("invalid utf-8", self.pos))?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| JsonError::at("unterminated string", self.pos))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(JsonError::at("truncated \\u escape", self.pos));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| JsonError::at("invalid \\u escape", self.pos))?;
        let code = u32::from_str_radix(hex, 16)
            .map_err(|_| JsonError::at("invalid \\u escape", self.pos))?;
        self.pos = end;
        Ok(code)
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(JsonError::at("expected ',' or ']'", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(JsonError::at("expected ',' or '}'", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_request() {
        let text = r#"{"cmd":"submit","name":"night run","spec":{"kind":"e16-fleet","seed":18446744073709551615,"clients":100,"loss":0.125,"flags":[true,false,null]}}"#;
        let parsed = Json::parse(text).unwrap();
        assert_eq!(parsed.render(), text);
        let spec = parsed.get("spec").unwrap();
        assert_eq!(spec.get("seed").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(spec.get("loss").unwrap().as_f64(), Some(0.125));
        assert_eq!(parsed.get("name").unwrap().as_str(), Some("night run"));
    }

    #[test]
    fn escapes_and_unescapes() {
        let original = Json::Obj(vec![(
            "msg".into(),
            Json::str("line1\nline2\t\"quoted\" \\ \u{0001} ünïcode 🦀"),
        )]);
        let line = original.render();
        assert!(!line.contains('\n'), "rendered line must be newline-free");
        assert_eq!(Json::parse(&line).unwrap(), original);
        // Escaped-unicode input (incl. a surrogate pair) parses too.
        let parsed = Json::parse(r#""\u00fc\ud83e\udd80\u0041""#).unwrap();
        assert_eq!(parsed.as_str(), Some("ü🦀A"));
    }

    #[test]
    fn numbers_keep_their_literals() {
        for lit in ["0", "-7", "3.5", "1e-3", "2.5E+10", "18446744073709551615"] {
            let parsed = Json::parse(lit).unwrap();
            assert_eq!(parsed.render(), lit);
        }
        assert_eq!(Json::f64(0.1).render(), "0.1");
        assert_eq!(Json::f64(f64::NAN), Json::Null);
        assert_eq!(Json::f64(f64::INFINITY), Json::Null);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1.",
            "1e",
            "\"unterminated",
            "{\"a\":1} trailing",
            "\"\\q\"",
            "\"\x01\"",
            "[1 2]",
            "01x",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
        // Depth bomb.
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
    }
}
