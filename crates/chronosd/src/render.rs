//! Canonical JSON renderings of the simulation result types.
//!
//! Both sides of the CI smoke comparison go through these functions: the
//! daemon renders the report of a checkpointed-and-resumed job, the
//! `chronosctl batch-e16` fallback renders the same row computed by
//! [`chronos_pitfalls::experiments::run_e16`] in-process — and the two
//! lines are diffed **byte for byte**. That works because a
//! [`FleetReport`] is a pure function of its [`fleet::FleetConfig`]
//! (byte-identical across thread counts and checkpoint/resume cuts) and
//! because [`crate::json::Json`] rendering is canonical.

use crate::json::Json;
use chronos::core::ChronosStats;
use chronos_pitfalls::experiments::{E16Result, E18Result};
use fleet::engine::{FleetProgress, FleetReport, TierBreakdown};
use fleet::stats::{FaultCounters, OffsetHistogram, SecureCounters};

/// Render a [`FleetReport`] — the full aggregate: shifted series,
/// histogram, quantiles, totals, fault counters and per-tier breakdowns.
pub fn report_json(report: &FleetReport) -> Json {
    Json::Obj(vec![
        ("clients".into(), Json::usize(report.clients)),
        ("end_s".into(), Json::f64(report.end.as_secs_f64())),
        ("shifted".into(), series_json(&report.shifted)),
        (
            "final_shifted_fraction".into(),
            Json::f64(report.final_shifted_fraction),
        ),
        (
            "poisoned_clients".into(),
            Json::u64(report.poisoned_clients),
        ),
        ("synced_clients".into(), Json::u64(report.synced_clients)),
        ("totals".into(), stats_json(&report.totals)),
        (
            "quantiles".into(),
            Json::Arr(
                report
                    .quantiles
                    .iter()
                    .map(|&(p, ns)| Json::Arr(vec![Json::f64(p), Json::f64(ns)]))
                    .collect(),
            ),
        ),
        ("histogram".into(), histogram_json(&report.histogram)),
        ("events".into(), Json::u64(report.events)),
        ("faults".into(), faults_json(&report.faults)),
        ("secure".into(), secure_json(&report.secure)),
        (
            "tiers".into(),
            Json::Arr(report.tiers.iter().map(tier_json).collect()),
        ),
    ])
}

/// Render a [`FleetProgress`] — the cheap mid-run snapshot jobs publish
/// between stepping slices.
pub fn progress_json(progress: &FleetProgress) -> Json {
    Json::Obj(vec![
        ("now_s".into(), Json::f64(progress.now.as_secs_f64())),
        (
            "horizon_s".into(),
            Json::f64(progress.horizon.as_secs_f64()),
        ),
        ("fraction_done".into(), Json::f64(progress.fraction_done())),
        ("clients".into(), Json::usize(progress.clients)),
        ("events".into(), Json::u64(progress.events)),
        ("synced_clients".into(), Json::u64(progress.synced_clients)),
        (
            "shifted_fraction".into(),
            Json::f64(progress.shifted_fraction),
        ),
        (
            // Wall-clock throughput of the most recent stepping slice;
            // null before the first slice. Operator-facing only — the
            // deterministic report JSON carries no wall-clock data.
            "throughput".into(),
            progress
                .throughput
                .map(|t| {
                    Json::Obj(vec![
                        ("wall_secs".into(), Json::f64(t.wall_secs)),
                        ("events_per_sec".into(), Json::f64(t.events_per_sec)),
                        ("sim_per_wall".into(), Json::f64(t.sim_per_wall)),
                    ])
                })
                .unwrap_or(Json::Null),
        ),
    ])
}

/// Render an [`E16Result`]: the resolver count plus one row (poisoned
/// count, poisoned fraction, full [`FleetReport`]) per sweep point. The
/// figure-ready series and pooling counters are recomputable from the
/// rows and are omitted from the wire format.
pub fn sweep_json(result: &E16Result) -> Json {
    Json::Obj(vec![
        ("resolvers".into(), Json::usize(result.resolvers)),
        (
            "rows".into(),
            Json::Arr(
                result
                    .rows
                    .iter()
                    .map(|row| {
                        Json::Obj(vec![
                            (
                                "poisoned_resolvers".into(),
                                Json::usize(row.poisoned_resolvers),
                            ),
                            ("poisoned_fraction".into(), Json::f64(row.poisoned_fraction)),
                            ("report".into(), report_json(&row.report)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Render an [`E18Result`]: the resolver count plus one row (deployment
/// fraction, poisoned count/fraction, full [`FleetReport`]) per grid
/// point. Like [`sweep_json`], the figure-ready series are recomputable
/// from the rows ([`chronos_pitfalls::experiments::e18_result_from_rows`])
/// and are omitted from the wire format.
pub fn e18_sweep_json(result: &E18Result) -> Json {
    Json::Obj(vec![
        ("resolvers".into(), Json::usize(result.resolvers)),
        (
            "rows".into(),
            Json::Arr(
                result
                    .rows
                    .iter()
                    .map(|row| {
                        Json::Obj(vec![
                            ("deployment".into(), Json::f64(row.deployment)),
                            (
                                "poisoned_resolvers".into(),
                                Json::usize(row.poisoned_resolvers),
                            ),
                            ("poisoned_fraction".into(), Json::f64(row.poisoned_fraction)),
                            ("report".into(), report_json(&row.report)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn series_json(series: &[(f64, f64)]) -> Json {
    Json::Arr(
        series
            .iter()
            .map(|&(t, f)| Json::Arr(vec![Json::f64(t), Json::f64(f)]))
            .collect(),
    )
}

fn stats_json(stats: &ChronosStats) -> Json {
    Json::Obj(vec![
        ("pool_queries".into(), Json::u64(stats.pool_queries)),
        ("pool_failures".into(), Json::u64(stats.pool_failures)),
        ("polls".into(), Json::u64(stats.polls)),
        ("accepts".into(), Json::u64(stats.accepts)),
        ("rejects".into(), Json::u64(stats.rejects)),
        ("panics".into(), Json::u64(stats.panics)),
    ])
}

fn faults_json(faults: &FaultCounters) -> Json {
    Json::Obj(vec![
        ("ntp_losses".into(), Json::u64(faults.ntp_losses)),
        ("dns_servfails".into(), Json::u64(faults.dns_servfails)),
        ("outage_hits".into(), Json::u64(faults.outage_hits)),
        ("stale_served".into(), Json::u64(faults.stale_served)),
        ("boot_retries".into(), Json::u64(faults.boot_retries)),
    ])
}

fn secure_json(secure: &SecureCounters) -> Json {
    Json::Obj(vec![
        (
            "captured_associations".into(),
            Json::u64(secure.captured_associations),
        ),
        (
            "detected_inconsistencies".into(),
            Json::u64(secure.detected_inconsistencies),
        ),
        ("rekeys".into(), Json::u64(secure.rekeys)),
    ])
}

fn histogram_json(histogram: &OffsetHistogram) -> Json {
    Json::Obj(vec![
        ("total".into(), Json::u64(histogram.total())),
        (
            "nonzero_bins".into(),
            Json::Arr(
                histogram
                    .nonzero_bins()
                    .map(|(edge_ns, count)| Json::Arr(vec![Json::u64(edge_ns), Json::u64(count)]))
                    .collect(),
            ),
        ),
    ])
}

fn tier_json(tier: &TierBreakdown) -> Json {
    Json::Obj(vec![
        ("label".into(), Json::str(tier.label.clone())),
        ("kind".into(), Json::str(format!("{:?}", tier.kind))),
        ("clients".into(), Json::usize(tier.clients)),
        ("shifted".into(), series_json(&tier.shifted)),
        (
            "final_shifted_fraction".into(),
            Json::f64(tier.final_shifted_fraction),
        ),
        ("poisoned_clients".into(), Json::u64(tier.poisoned_clients)),
        ("synced_clients".into(), Json::u64(tier.synced_clients)),
        ("totals".into(), stats_json(&tier.totals)),
        ("faults".into(), faults_json(&tier.faults)),
        ("secure".into(), secure_json(&tier.secure)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use chronos_pitfalls::experiments::e16_config;
    use fleet::Fleet;

    #[test]
    fn report_rendering_is_canonical_and_parseable() {
        let mut fleet = Fleet::new(e16_config(7, 24, 2, 1));
        let report = fleet.run();
        let line = report_json(&report).render();
        // Parse→render is the identity: nothing in a report needs
        // formatting that the writer cannot reproduce.
        assert_eq!(Json::parse(&line).unwrap().render(), line);
        // And a recomputation renders to the very same bytes.
        let again = Fleet::new(e16_config(7, 24, 2, 1)).run();
        assert_eq!(report_json(&again).render(), line);
    }

    #[test]
    fn progress_rendering_tracks_the_run() {
        let mut fleet = Fleet::new(e16_config(7, 16, 2, 1));
        fleet.run_until(netsim::time::SimTime::from_secs(500));
        let progress = fleet.progress();
        let json = progress_json(&progress);
        assert_eq!(json.get("now_s").unwrap().as_f64(), Some(500.0));
        assert_eq!(json.get("clients").unwrap().as_usize(), Some(16));
        let done = json.get("fraction_done").unwrap().as_f64().unwrap();
        assert!(done > 0.0 && done < 1.0, "mid-run fraction, got {done}");
        // run_until completed a slice, so wall-clock throughput is live.
        let throughput = json.get("throughput").unwrap();
        let eps = throughput.get("events_per_sec").unwrap().as_f64().unwrap();
        assert!(eps > 0.0, "events/s should be positive, got {eps}");
    }
}
