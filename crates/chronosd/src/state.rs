//! The `--state-dir` durability layer: atomic, checksummed persistence
//! of the daemon's job table, and resume-on-boot.
//!
//! ## Layout
//!
//! ```text
//! <state-dir>/
//!   manifest.chrm      CHRM1 header line + JSON job table (atomic rewrite)
//!   jobs/<file>.ckpt   per-job simulation state: CHR1 (fleets) or SWP1
//!                      (sweep cursors), also atomically rewritten
//!   quarantine/        corrupt files moved here at boot, never deleted
//! ```
//!
//! The manifest is the root of trust: a text header
//! `CHRM1 <payload-len> <checksum-hex>\n` followed by a JSON payload,
//! integrity-checked with the same XOR-fold checksum as `CHR1`/`SWP1`
//! ([`fleet::checkpoint::checksum`]) and classified with the same error
//! taxonomy ([`CheckpointError`]). Every write is tmp+rename, so a crash
//! (or `kill -9`) mid-write leaves the previous snapshot intact — the
//! daemon may lose at most the slices since the last snapshot, never the
//! snapshot itself.
//!
//! Corruption is *contained*, not fatal: a job file that fails its
//! checksum (or the engine's structural revalidation) is moved to
//! `quarantine/` and the job is adopted as `failed` with the decode error
//! in its status; a corrupt manifest quarantines itself and boots an
//! empty daemon. An operator can inspect quarantined bytes at leisure —
//! the daemon never deletes them.
//!
//! [`snapshot`] is the single producer: it captures every job's
//! scheduling params, lifecycle state, and simulation bytes (fleet `CHR1`
//! or sweep `SWP1` cursor) at `run_until` boundaries, which the engine's
//! property tests prove are invisible cut points — hence the determinism
//! contract: a SIGKILL'd daemon rebooted from its state dir finishes with
//! byte-identical reports to an uninterrupted run.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

use fleet::checkpoint::{checksum, CheckpointError};

use crate::jobs::{Job, JobState, JobTable, Params};
use crate::json::Json;

/// Magic prefix of the manifest header line.
pub const MANIFEST_MAGIC: &str = "CHRM1";

/// Current manifest format version (inside the JSON payload).
pub const MANIFEST_VERSION: u64 = 1;

/// How long [`snapshot`] waits for each job to park before skipping its
/// simulation bytes in this round (the manifest entry is still written).
const PARK_TIMEOUT: Duration = Duration::from_secs(30);

/// One job's row in the manifest: everything needed to re-create the job
/// on boot except the simulation bytes themselves (those live in the
/// referenced `jobs/` file).
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestEntry {
    /// Job name (the table key).
    pub name: String,
    /// Kind label (`"e16-fleet"`, `"e16-sweep"`, ...).
    pub kind: String,
    /// Lifecycle state at snapshot time.
    pub state: JobState,
    /// Failure message, for `failed` jobs.
    pub error: Option<String>,
    /// Scheduling parameters at snapshot time (pause anchors included,
    /// so an un-hit pause still fires after a reboot).
    pub params: Params,
    /// Slices completed (restores watch cursors).
    pub slices: u64,
    /// Filename under `jobs/` holding the simulation bytes, if any.
    pub file: Option<String>,
    /// The original submit spec (round-trips through
    /// [`crate::jobs::JobSpec::from_json`]); jobs with no simulation
    /// bytes yet are resubmitted from it.
    pub spec: Json,
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Serialize manifest entries to the full `CHRM1` file bytes.
pub fn encode_manifest(entries: &[ManifestEntry]) -> Vec<u8> {
    let jobs: Vec<Json> = entries
        .iter()
        .map(|e| {
            let mut fields = vec![
                ("name", Json::str(e.name.clone())),
                ("kind", Json::str(e.kind.clone())),
                ("state", Json::str(e.state.as_str())),
            ];
            if let Some(error) = &e.error {
                fields.push(("error", Json::str(error.clone())));
            }
            fields.push(("threads", Json::u64(e.params.threads as u64)));
            fields.push(("slice_s", Json::u64(e.params.slice_s)));
            if let Some(p) = e.params.pause_at_s {
                fields.push(("pause_at_s", Json::u64(p)));
            }
            if let Some(p) = e.params.pause_at_row {
                fields.push(("pause_at_row", Json::u64(p as u64)));
            }
            fields.push(("slices", Json::u64(e.slices)));
            if let Some(file) = &e.file {
                fields.push(("file", Json::str(file.clone())));
            }
            fields.push(("spec", e.spec.clone()));
            obj(fields)
        })
        .collect();
    let payload = obj(vec![
        ("version", Json::u64(MANIFEST_VERSION)),
        ("jobs", Json::Arr(jobs)),
    ])
    .render();
    let payload = payload.as_bytes();
    let mut out = format!(
        "{MANIFEST_MAGIC} {} {:016x}\n",
        payload.len(),
        checksum(payload)
    )
    .into_bytes();
    out.extend_from_slice(payload);
    out
}

/// Decode `CHRM1` file bytes back into manifest entries, classifying
/// damage with the `CHR1` taxonomy: a short or header-less file is
/// [`CheckpointError::Truncated`], a wrong magic is
/// [`CheckpointError::BadMagic`], any payload bit flip is
/// [`CheckpointError::BadChecksum`], and structurally impossible JSON is
/// [`CheckpointError::Corrupt`].
pub fn decode_manifest(bytes: &[u8]) -> Result<Vec<ManifestEntry>, CheckpointError> {
    let newline = match bytes.iter().position(|&b| b == b'\n') {
        Some(i) => i,
        None => {
            // No header line at all: distinguish "not ours" from "cut off".
            return if bytes.starts_with(MANIFEST_MAGIC.as_bytes()) {
                Err(CheckpointError::Truncated)
            } else {
                Err(CheckpointError::BadMagic)
            };
        }
    };
    let header = std::str::from_utf8(&bytes[..newline]).map_err(|_| CheckpointError::BadMagic)?;
    let mut parts = header.split(' ');
    if parts.next() != Some(MANIFEST_MAGIC) {
        return Err(CheckpointError::BadMagic);
    }
    let len: usize = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or(CheckpointError::Corrupt("manifest header length"))?;
    let sum = parts
        .next()
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or(CheckpointError::Corrupt("manifest header checksum"))?;
    if parts.next().is_some() {
        return Err(CheckpointError::Corrupt("manifest header shape"));
    }
    let payload = &bytes[newline + 1..];
    if payload.len() < len {
        return Err(CheckpointError::Truncated);
    }
    if payload.len() > len {
        return Err(CheckpointError::Corrupt("trailing bytes after manifest"));
    }
    if checksum(payload) != sum {
        return Err(CheckpointError::BadChecksum);
    }
    let text =
        std::str::from_utf8(payload).map_err(|_| CheckpointError::Corrupt("manifest not UTF-8"))?;
    let json = Json::parse(text).map_err(|_| CheckpointError::Corrupt("manifest not JSON"))?;
    if json.get("version").and_then(Json::as_u64) != Some(MANIFEST_VERSION) {
        return Err(CheckpointError::Corrupt("manifest version"));
    }
    let jobs = match json.get("jobs") {
        Some(Json::Arr(jobs)) => jobs,
        _ => return Err(CheckpointError::Corrupt("manifest jobs array")),
    };
    let mut entries = Vec::with_capacity(jobs.len());
    for job in jobs {
        let name = job
            .get("name")
            .and_then(Json::as_str)
            .ok_or(CheckpointError::Corrupt("manifest entry name"))?
            .to_string();
        let kind = job
            .get("kind")
            .and_then(Json::as_str)
            .ok_or(CheckpointError::Corrupt("manifest entry kind"))?
            .to_string();
        let state = job
            .get("state")
            .and_then(Json::as_str)
            .and_then(JobState::parse)
            .ok_or(CheckpointError::Corrupt("manifest entry state"))?;
        let error = job.get("error").and_then(Json::as_str).map(str::to_string);
        let threads = job
            .get("threads")
            .and_then(Json::as_usize)
            .ok_or(CheckpointError::Corrupt("manifest entry threads"))?;
        let slice_s = job
            .get("slice_s")
            .and_then(Json::as_u64)
            .ok_or(CheckpointError::Corrupt("manifest entry slice_s"))?;
        let pause_at_s = job.get("pause_at_s").and_then(Json::as_u64);
        let pause_at_row = job.get("pause_at_row").and_then(Json::as_usize);
        let slices = job
            .get("slices")
            .and_then(Json::as_u64)
            .ok_or(CheckpointError::Corrupt("manifest entry slices"))?;
        let file = job.get("file").and_then(Json::as_str).map(str::to_string);
        let spec = job
            .get("spec")
            .cloned()
            .ok_or(CheckpointError::Corrupt("manifest entry spec"))?;
        entries.push(ManifestEntry {
            name,
            kind,
            state,
            error,
            params: Params {
                threads: threads.max(1),
                slice_s: slice_s.max(1),
                pause_at_s,
                pause_at_row,
            },
            slices,
            file,
            spec,
        });
    }
    Ok(entries)
}

/// A handle on the daemon's durability directory.
#[derive(Debug, Clone)]
pub struct StateDir {
    root: PathBuf,
}

impl StateDir {
    /// Open (creating if needed) a state dir rooted at `root`, with its
    /// `jobs/` and `quarantine/` subdirectories.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<StateDir> {
        let root = root.into();
        std::fs::create_dir_all(root.join("jobs"))?;
        std::fs::create_dir_all(root.join("quarantine"))?;
        Ok(StateDir { root })
    }

    /// The directory root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn manifest_path(&self) -> PathBuf {
        self.root.join("manifest.chrm")
    }

    fn job_path(&self, file: &str) -> PathBuf {
        self.root.join("jobs").join(file)
    }

    /// The stable `jobs/` filename for a job: a sanitized copy of the
    /// name plus a hash tag so distinct names never collide after
    /// sanitization.
    pub fn job_file_name(name: &str) -> String {
        let safe: String = name
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .take(48)
            .collect();
        let tag = checksum(name.as_bytes()) as u32;
        format!("{safe}-{tag:08x}.ckpt")
    }

    /// Atomically write `bytes` to `path` (tmp + rename; the previous
    /// file survives any crash mid-write).
    fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, bytes)?;
        std::fs::rename(&tmp, path)
    }

    /// Atomically (re)write the manifest.
    pub fn write_manifest(&self, entries: &[ManifestEntry]) -> io::Result<()> {
        Self::write_atomic(&self.manifest_path(), &encode_manifest(entries))
    }

    /// Read and decode the manifest. `Ok(None)` when none exists yet
    /// (first boot); decode failures carry the taxonomy error.
    pub fn read_manifest(&self) -> io::Result<Option<Result<Vec<ManifestEntry>, CheckpointError>>> {
        match std::fs::read(self.manifest_path()) {
            Ok(bytes) => Ok(Some(decode_manifest(&bytes))),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Atomically write one job's simulation bytes under `jobs/`.
    pub fn write_job_file(&self, file: &str, bytes: &[u8]) -> io::Result<()> {
        Self::write_atomic(&self.job_path(file), bytes)
    }

    /// Read one job's simulation bytes.
    pub fn read_job_file(&self, file: &str) -> io::Result<Vec<u8>> {
        std::fs::read(self.job_path(file))
    }

    /// Move a corrupt file (manifest or job state) into `quarantine/`,
    /// never deleting bytes an operator may want to inspect.
    pub fn quarantine(&self, file: &str) -> io::Result<PathBuf> {
        let src = if file == "manifest.chrm" {
            self.manifest_path()
        } else {
            self.job_path(file)
        };
        let dst = self.root.join("quarantine").join(file);
        std::fs::rename(&src, &dst)?;
        Ok(dst)
    }

    /// Delete a stale `jobs/` file (its job left the table or no longer
    /// has simulation bytes). Missing files are fine.
    pub fn remove_job_file(&self, file: &str) -> io::Result<()> {
        match std::fs::remove_file(self.job_path(file)) {
            Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }

    /// List the filenames currently under `jobs/`.
    pub fn list_job_files(&self) -> io::Result<Vec<String>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(self.root.join("jobs"))? {
            let entry = entry?;
            if let Some(name) = entry.file_name().to_str() {
                out.push(name.to_string());
            }
        }
        out.sort();
        Ok(out)
    }
}

/// Capture one job's durable bytes: `SWP1` cursor for sweeps, `CHR1`
/// checkpoint for fleets, `None` for jobs holding no simulation state
/// (still queued, failed, or a probe). All captures land on `run_until`
/// boundaries via the parked-slot protocol.
fn job_bytes(job: &Job) -> Option<Vec<u8>> {
    if job.is_sweep() {
        job.sweep_cursor(PARK_TIMEOUT).ok()
    } else {
        job.checkpoint(PARK_TIMEOUT).ok()
    }
}

/// Write a full snapshot of the job table: every job's state bytes plus
/// the manifest, all atomically. `state_overrides` substitutes lifecycle
/// states in the manifest only — the shutdown path records jobs the
/// daemon itself stopped as still `running`/`paused` so the next boot
/// resumes them, while operator-stopped jobs stay stopped.
pub fn snapshot(
    table: &JobTable,
    dir: &StateDir,
    state_overrides: &BTreeMap<String, JobState>,
) -> io::Result<usize> {
    let mut entries = Vec::new();
    for job in table.list() {
        let snap = job.snapshot();
        let state = state_overrides
            .get(&job.name)
            .copied()
            .unwrap_or(snap.state);
        let bytes = job_bytes(&job);
        let file = match &bytes {
            Some(bytes) => {
                let file = StateDir::job_file_name(&job.name);
                dir.write_job_file(&file, bytes)?;
                Some(file)
            }
            None => None,
        };
        entries.push(ManifestEntry {
            name: job.name.clone(),
            kind: job.kind.to_string(),
            state,
            error: snap.error.clone(),
            params: job.params(),
            slices: snap.slices,
            file,
            spec: job.spec_json(),
        });
    }
    // Job files first, manifest last: the manifest only ever references
    // files that are already durably in place.
    dir.write_manifest(&entries)?;
    Ok(entries.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entries() -> Vec<ManifestEntry> {
        vec![
            ManifestEntry {
                name: "fleet-a".to_string(),
                kind: "e16-fleet".to_string(),
                state: JobState::Running,
                error: None,
                params: Params {
                    threads: 2,
                    slice_s: 500,
                    pause_at_s: Some(1_500),
                    pause_at_row: None,
                },
                slices: 3,
                file: Some("fleet-a-12345678.ckpt".to_string()),
                spec: Json::parse(r#"{"kind":"e16-fleet","seed":7}"#).unwrap(),
            },
            ManifestEntry {
                name: "broken".to_string(),
                kind: "e16-sweep".to_string(),
                state: JobState::Failed,
                error: Some("sweep cursor rejected: checksum mismatch".to_string()),
                params: Params {
                    threads: 1,
                    slice_s: 60,
                    pause_at_s: None,
                    pause_at_row: Some(2),
                },
                slices: 0,
                file: None,
                spec: Json::parse(r#"{"kind":"e16-sweep"}"#).unwrap(),
            },
        ]
    }

    #[test]
    fn manifest_round_trips() {
        let entries = sample_entries();
        let decoded = decode_manifest(&encode_manifest(&entries)).unwrap();
        assert_eq!(decoded, entries);
        assert_eq!(decode_manifest(&encode_manifest(&[])).unwrap(), vec![]);
    }

    #[test]
    fn manifest_corruption_is_classified() {
        let bytes = encode_manifest(&sample_entries());
        assert_eq!(decode_manifest(b"nonsense"), Err(CheckpointError::BadMagic));
        assert_eq!(
            decode_manifest(&bytes[..8]),
            Err(CheckpointError::Truncated)
        );
        assert_eq!(
            decode_manifest(&bytes[..bytes.len() - 3]),
            Err(CheckpointError::Truncated)
        );
        let mut flipped = bytes.clone();
        let at = flipped.len() - 10;
        flipped[at] ^= 0x20;
        assert_eq!(decode_manifest(&flipped), Err(CheckpointError::BadChecksum));
    }

    #[test]
    fn job_file_names_are_sanitized_and_distinct() {
        let a = StateDir::job_file_name("job one/../../etc");
        assert!(a.ends_with(".ckpt"));
        assert!(!a.contains('/') && !a.contains("..a"));
        assert_ne!(
            StateDir::job_file_name("job/x"),
            StateDir::job_file_name("job x")
        );
    }
}
