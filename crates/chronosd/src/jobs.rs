//! Named jobs: persistent fleet runs and checkpointable sweeps hosted by
//! the daemon, scheduled on a bounded worker pool.
//!
//! A *job* owns one simulation and is stepped in `run_until` **slices**
//! (default 60 simulated seconds) by a shared pool of N workers (default
//! `cores - 1`). Scheduling is cooperative round-robin: a worker pops the
//! next runnable job from the queue, steps exactly one slice, re-enqueues
//! the job at the back, and takes the next one — so a 10⁶-client fleet
//! cannot starve small jobs, and no job ever owns a thread. Every step is
//! wrapped in `catch_unwind`: a panicking job transitions to
//! [`JobState::Failed`] with the panic message in its status while the
//! pool keeps serving every other job.
//!
//! Between slices the [`fleet::Fleet`] is *parked* in a shared slot,
//! which is the whole concurrency story:
//!
//! * the worker takes the fleet out, steps one slice without holding any
//!   lock, publishes a fresh [`FleetProgress`] snapshot, and puts the
//!   fleet back;
//! * server threads that need the live state (`status`, `report`,
//!   `checkpoint`) wait on the slot condvar until the fleet is parked —
//!   so every observation and every checkpoint lands exactly on a
//!   `run_until` boundary, which the engine's property tests prove is
//!   invisible to the simulation (`piecewise_runs_equal_one_continuous_run`,
//!   `resume_equals_uninterrupted_run`).
//!
//! Sweep jobs (`e16-sweep`, `e18-sweep`) are no longer monolithic batch
//! units: the worker steps the current row's fleet in slices like any
//! fleet job and, when a row reaches its horizon, records the row's
//! final checkpoint and report and immediately builds (and parks) the
//! next row's fleet. The
//! slot therefore always holds the *current row*, so a sweep is
//! observable, pausable at row boundaries (`pause_at_row`), and
//! checkpointable — the per-row cursor persists as a `SWP1` sidecar (see
//! [`crate::sweep`]).
//!
//! Determinism follows: a job's final report depends only on its
//! [`fleet::FleetConfig`] — not on slice length, worker count, how often
//! an operator polled, or whether the run was checkpointed into a
//! different process halfway through.

use std::collections::{BTreeMap, VecDeque};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Weak};
use std::time::Duration;

use chronos_pitfalls::experiments::{
    e16_config, e16_result_from_rows, e17_config, e18_config, e18_grid, e18_result_from_rows,
    E16Result, E16Row, E18Result, E18Row,
};
use chronos_pitfalls::montecarlo::SweepStats;
use fleet::engine::{Fleet, FleetProgress, FleetReport};
use fleet::metrics::FleetMetrics;
use netsim::time::{SimDuration, SimTime};

use crate::json::Json;
use crate::metrics::{DaemonObs, JobMetrics};
use crate::sweep::SweepFlavor;

/// Default slice length in simulated seconds between observation points.
pub const DEFAULT_SLICE_S: u64 = 60;

/// Lock a mutex, recovering the guard if a previous holder panicked.
/// Panic isolation is the pool's job (`catch_unwind` per slice); a
/// poisoned lock must degrade to "last write wins", never to a daemon
/// panic on an observer thread.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// What a job runs. Parsed from the `spec` object of a `submit` request
/// (see `docs/OPERATIONS.md` for the wire format); the `Resume*` variants
/// are also built by the daemon from checkpoint files and the state-dir
/// manifest.
#[derive(Debug, Clone)]
pub enum JobSpec {
    /// One E16 fleet: the mixed 2:1:1 population across `resolvers`
    /// caches with `poisoned_resolvers` of them poisoned at t = 100 s.
    E16Fleet {
        /// Deterministic seed.
        seed: u64,
        /// Fleet size.
        clients: usize,
        /// Independent resolver caches.
        resolvers: usize,
        /// Caches the attacker poisons (`0..=resolvers`).
        poisoned_resolvers: usize,
        /// Worker threads for intra-fleet sharded stepping.
        threads: usize,
        /// Slice length (simulated seconds) between observation points.
        slice_s: u64,
        /// Optionally park the job in `paused` state once simulated time
        /// reaches this point (checkpoint anchor for operators and CI).
        pause_at_s: Option<u64>,
    },
    /// One E17 fleet: the E16 scenario on a degraded network.
    E17Fleet {
        /// Deterministic seed.
        seed: u64,
        /// Fleet size.
        clients: usize,
        /// Independent resolver caches.
        resolvers: usize,
        /// Per-sample NTP loss / DNS SERVFAIL probability.
        loss: f64,
        /// Resolvers covered by the mid-run outage window.
        outage_coverage: usize,
        /// Worker threads for intra-fleet sharded stepping.
        threads: usize,
        /// Slice length (simulated seconds) between observation points.
        slice_s: u64,
        /// Optional pause point (simulated seconds).
        pause_at_s: Option<u64>,
    },
    /// One E18 fleet: the partially-secure population — the E16 mix
    /// diluted with NTS and Roughtime tiers at `deployment` ∈ [0, 1] —
    /// with `poisoned_resolvers` caches poisoned at t = 100 s.
    E18Fleet {
        /// Deterministic seed.
        seed: u64,
        /// Fleet size.
        clients: usize,
        /// Independent resolver caches.
        resolvers: usize,
        /// Fraction of the population on secure-time tiers (rounded to
        /// sixteenths by `e18_tiers`; 0 is exactly the E16 mix).
        deployment: f64,
        /// Caches the attacker poisons (`0..=resolvers`).
        poisoned_resolvers: usize,
        /// Worker threads for intra-fleet sharded stepping.
        threads: usize,
        /// Slice length (simulated seconds) between observation points.
        slice_s: u64,
        /// Optional pause point (simulated seconds).
        pause_at_s: Option<u64>,
    },
    /// The full E16 partial-poisoning sweep (`k = 0..=resolvers`), run
    /// row by row so it can be observed, paused at row boundaries, and
    /// checkpointed (`SWP1` cursor) like any other job.
    E16Sweep {
        /// Deterministic seed.
        seed: u64,
        /// Fleet size per sweep point.
        clients: usize,
        /// Independent resolver caches.
        resolvers: usize,
        /// Worker threads for each row's fleet.
        threads: usize,
        /// Slice length (simulated seconds) between observation points.
        slice_s: u64,
        /// Optionally park in `paused` state when about to *start* this
        /// row (0-based; row k poisons k resolvers). A row-boundary
        /// checkpoint anchor.
        pause_at_row: Option<usize>,
    },
    /// The full E18 deployment × poisoning sweep
    /// ([`chronos_pitfalls::experiments::e18_grid`]), run row by row
    /// with the same observe/pause/checkpoint affordances as
    /// [`JobSpec::E16Sweep`].
    E18Sweep {
        /// Deterministic seed.
        seed: u64,
        /// Fleet size per sweep point.
        clients: usize,
        /// Independent resolver caches.
        resolvers: usize,
        /// Worker threads for each row's fleet.
        threads: usize,
        /// Slice length (simulated seconds) between observation points.
        slice_s: u64,
        /// Optional row-boundary pause anchor (0-based grid index).
        pause_at_row: Option<usize>,
    },
    /// Resume a fleet from `CHR1` checkpoint bytes (any fleet kind).
    Resume {
        /// Serialized checkpoint (see `fleet::checkpoint`).
        bytes: Vec<u8>,
        /// Worker threads for the resumed run.
        threads: usize,
        /// Slice length (simulated seconds) between observation points.
        slice_s: u64,
        /// Optional pause point (simulated seconds).
        pause_at_s: Option<u64>,
    },
    /// Resume a sweep from `SWP1` cursor bytes (see [`crate::sweep`]).
    ResumeSweep {
        /// Serialized sweep cursor.
        bytes: Vec<u8>,
        /// Worker threads for each remaining row's fleet.
        threads: usize,
        /// Slice length (simulated seconds) between observation points.
        slice_s: u64,
        /// Optional row-boundary pause point (0-based).
        pause_at_row: Option<usize>,
    },
    /// A supervision probe: the job panics on its first slice. Operators
    /// (and CI) use it to verify the pool's panic isolation — the probe
    /// must land in `failed` with this message while every other job
    /// keeps stepping, and `chronosd_job_panics_total` must tick.
    PanicProbe {
        /// The panic payload, echoed into `status.error`.
        message: String,
    },
}

fn field_u64(spec: &Json, key: &str, default: u64) -> Result<u64, String> {
    match spec.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| format!("{key}: expected a non-negative integer")),
    }
}

fn field_usize(spec: &Json, key: &str, default: usize) -> Result<usize, String> {
    match spec.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_usize()
            .ok_or_else(|| format!("{key}: expected a non-negative integer")),
    }
}

fn field_f64(spec: &Json, key: &str, default: f64) -> Result<f64, String> {
    match spec.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| format!("{key}: expected a number")),
    }
}

fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

fn hex_decode(text: &str) -> Result<Vec<u8>, String> {
    if !text.len().is_multiple_of(2) {
        return Err("bytes_hex: odd length".to_string());
    }
    (0..text.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(&text[i..i + 2], 16).map_err(|_| "bytes_hex: not hex".to_string())
        })
        .collect()
}

impl JobSpec {
    /// Parse a `submit` spec object. Unknown kinds and malformed fields
    /// are rejected with a message naming the offending field.
    pub fn from_json(spec: &Json) -> Result<JobSpec, String> {
        let kind = spec
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| "spec.kind: expected a string".to_string())?;
        let threads = field_usize(spec, "threads", 1)?.max(1);
        let slice_s = field_u64(spec, "slice_s", DEFAULT_SLICE_S)?.max(1);
        let pause_at_s = match spec.get("pause_at_s") {
            None | Some(Json::Null) => None,
            Some(v) => Some(
                v.as_u64()
                    .ok_or_else(|| "pause_at_s: expected a non-negative integer".to_string())?,
            ),
        };
        let pause_at_row = match spec.get("pause_at_row") {
            None | Some(Json::Null) => None,
            Some(v) => Some(
                v.as_usize()
                    .ok_or_else(|| "pause_at_row: expected a non-negative integer".to_string())?,
            ),
        };
        match kind {
            "e16-fleet" => {
                let resolvers = field_usize(spec, "resolvers", 4)?.max(1);
                let poisoned_resolvers = field_usize(spec, "poisoned_resolvers", resolvers)?;
                if poisoned_resolvers > resolvers {
                    return Err(format!(
                        "poisoned_resolvers: {poisoned_resolvers} exceeds resolvers ({resolvers})"
                    ));
                }
                Ok(JobSpec::E16Fleet {
                    seed: field_u64(spec, "seed", 7)?,
                    clients: field_usize(spec, "clients", 1_000)?.max(1),
                    resolvers,
                    poisoned_resolvers,
                    threads,
                    slice_s,
                    pause_at_s,
                })
            }
            "e17-fleet" => {
                let resolvers = field_usize(spec, "resolvers", 8)?.max(1);
                let outage_coverage = field_usize(spec, "outage_coverage", 0)?;
                if outage_coverage > resolvers {
                    return Err(format!(
                        "outage_coverage: {outage_coverage} exceeds resolvers ({resolvers})"
                    ));
                }
                Ok(JobSpec::E17Fleet {
                    seed: field_u64(spec, "seed", 7)?,
                    clients: field_usize(spec, "clients", 1_000)?.max(1),
                    resolvers,
                    loss: field_f64(spec, "loss", 0.05)?,
                    outage_coverage,
                    threads,
                    slice_s,
                    pause_at_s,
                })
            }
            "e18-fleet" => {
                let resolvers = field_usize(spec, "resolvers", 4)?.max(1);
                let poisoned_resolvers = field_usize(spec, "poisoned_resolvers", resolvers)?;
                if poisoned_resolvers > resolvers {
                    return Err(format!(
                        "poisoned_resolvers: {poisoned_resolvers} exceeds resolvers ({resolvers})"
                    ));
                }
                let deployment = field_f64(spec, "deployment", 0.5)?;
                if !(0.0..=1.0).contains(&deployment) {
                    return Err(format!("deployment: {deployment} outside [0, 1]"));
                }
                Ok(JobSpec::E18Fleet {
                    seed: field_u64(spec, "seed", 7)?,
                    clients: field_usize(spec, "clients", 1_000)?.max(1),
                    resolvers,
                    deployment,
                    poisoned_resolvers,
                    threads,
                    slice_s,
                    pause_at_s,
                })
            }
            "e16-sweep" => Ok(JobSpec::E16Sweep {
                seed: field_u64(spec, "seed", 7)?,
                clients: field_usize(spec, "clients", 1_000)?.max(1),
                resolvers: field_usize(spec, "resolvers", 4)?.max(1),
                threads,
                slice_s,
                pause_at_row,
            }),
            "e18-sweep" => Ok(JobSpec::E18Sweep {
                seed: field_u64(spec, "seed", 7)?,
                clients: field_usize(spec, "clients", 1_000)?.max(1),
                resolvers: field_usize(spec, "resolvers", 4)?.max(1),
                threads,
                slice_s,
                pause_at_row,
            }),
            "resume" => Ok(JobSpec::Resume {
                bytes: Self::bytes_hex_field(spec)?,
                threads,
                slice_s,
                pause_at_s,
            }),
            "resume-sweep" => Ok(JobSpec::ResumeSweep {
                bytes: Self::bytes_hex_field(spec)?,
                threads,
                slice_s,
                pause_at_row,
            }),
            "panic-probe" => Ok(JobSpec::PanicProbe {
                message: spec
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("panic probe")
                    .to_string(),
            }),
            other => Err(format!(
                "spec.kind: unknown kind {other:?} (expected e16-fleet, e17-fleet, \
                 e18-fleet, e16-sweep, e18-sweep or panic-probe)"
            )),
        }
    }

    fn bytes_hex_field(spec: &Json) -> Result<Vec<u8>, String> {
        let hex = spec
            .get("bytes_hex")
            .and_then(Json::as_str)
            .ok_or_else(|| "bytes_hex: expected a hex string".to_string())?;
        hex_decode(hex)
    }

    /// Render the spec back to the wire/manifest object [`JobSpec::from_json`]
    /// accepts (round-trips exactly; checkpoint bytes travel as hex).
    /// This is what the state-dir manifest stores for jobs that have not
    /// built their simulation yet, so a rebooted daemon can resubmit them.
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(String, Json)> = vec![("kind".into(), Json::str(self.kind()))];
        fn num(fields: &mut Vec<(String, Json)>, key: &str, value: u64) {
            fields.push((key.into(), Json::u64(value)));
        }
        match self {
            JobSpec::E16Fleet {
                seed,
                clients,
                resolvers,
                poisoned_resolvers,
                threads,
                slice_s,
                pause_at_s,
            } => {
                num(&mut fields, "seed", *seed);
                num(&mut fields, "clients", *clients as u64);
                num(&mut fields, "resolvers", *resolvers as u64);
                num(
                    &mut fields,
                    "poisoned_resolvers",
                    *poisoned_resolvers as u64,
                );
                num(&mut fields, "threads", *threads as u64);
                num(&mut fields, "slice_s", *slice_s);
                if let Some(p) = pause_at_s {
                    num(&mut fields, "pause_at_s", *p);
                }
            }
            JobSpec::E17Fleet {
                seed,
                clients,
                resolvers,
                loss,
                outage_coverage,
                threads,
                slice_s,
                pause_at_s,
            } => {
                num(&mut fields, "seed", *seed);
                num(&mut fields, "clients", *clients as u64);
                num(&mut fields, "resolvers", *resolvers as u64);
                fields.push(("loss".into(), Json::f64(*loss)));
                num(&mut fields, "outage_coverage", *outage_coverage as u64);
                num(&mut fields, "threads", *threads as u64);
                num(&mut fields, "slice_s", *slice_s);
                if let Some(p) = pause_at_s {
                    num(&mut fields, "pause_at_s", *p);
                }
            }
            JobSpec::E18Fleet {
                seed,
                clients,
                resolvers,
                deployment,
                poisoned_resolvers,
                threads,
                slice_s,
                pause_at_s,
            } => {
                num(&mut fields, "seed", *seed);
                num(&mut fields, "clients", *clients as u64);
                num(&mut fields, "resolvers", *resolvers as u64);
                fields.push(("deployment".into(), Json::f64(*deployment)));
                num(
                    &mut fields,
                    "poisoned_resolvers",
                    *poisoned_resolvers as u64,
                );
                num(&mut fields, "threads", *threads as u64);
                num(&mut fields, "slice_s", *slice_s);
                if let Some(p) = pause_at_s {
                    num(&mut fields, "pause_at_s", *p);
                }
            }
            JobSpec::E16Sweep {
                seed,
                clients,
                resolvers,
                threads,
                slice_s,
                pause_at_row,
            }
            | JobSpec::E18Sweep {
                seed,
                clients,
                resolvers,
                threads,
                slice_s,
                pause_at_row,
            } => {
                num(&mut fields, "seed", *seed);
                num(&mut fields, "clients", *clients as u64);
                num(&mut fields, "resolvers", *resolvers as u64);
                num(&mut fields, "threads", *threads as u64);
                num(&mut fields, "slice_s", *slice_s);
                if let Some(p) = pause_at_row {
                    num(&mut fields, "pause_at_row", *p as u64);
                }
            }
            JobSpec::Resume {
                bytes,
                threads,
                slice_s,
                pause_at_s,
            } => {
                fields.push(("bytes_hex".into(), Json::str(hex_encode(bytes))));
                num(&mut fields, "threads", *threads as u64);
                num(&mut fields, "slice_s", *slice_s);
                if let Some(p) = pause_at_s {
                    num(&mut fields, "pause_at_s", *p);
                }
            }
            JobSpec::ResumeSweep {
                bytes,
                threads,
                slice_s,
                pause_at_row,
            } => {
                fields.push(("bytes_hex".into(), Json::str(hex_encode(bytes))));
                num(&mut fields, "threads", *threads as u64);
                num(&mut fields, "slice_s", *slice_s);
                if let Some(p) = pause_at_row {
                    num(&mut fields, "pause_at_row", *p as u64);
                }
            }
            JobSpec::PanicProbe { message } => {
                fields.push(("message".into(), Json::str(message.clone())));
            }
        }
        Json::Obj(fields)
    }

    /// The job-kind label reported in `jobs` / `status` responses.
    /// A resumed sweep reports as `e16-sweep` — it *is* one, and the
    /// daemon's `report` dispatch keys off this label.
    pub fn kind(&self) -> &'static str {
        match self {
            JobSpec::E16Fleet { .. } => "e16-fleet",
            JobSpec::E17Fleet { .. } => "e17-fleet",
            JobSpec::E18Fleet { .. } => "e18-fleet",
            JobSpec::E16Sweep { .. } => "e16-sweep",
            JobSpec::E18Sweep { .. } => "e18-sweep",
            JobSpec::Resume { .. } => "resume",
            JobSpec::ResumeSweep { .. } => "resume-sweep",
            JobSpec::PanicProbe { .. } => "panic-probe",
        }
    }

    fn params(&self) -> Params {
        match self {
            JobSpec::E16Fleet {
                threads,
                slice_s,
                pause_at_s,
                ..
            }
            | JobSpec::E17Fleet {
                threads,
                slice_s,
                pause_at_s,
                ..
            }
            | JobSpec::E18Fleet {
                threads,
                slice_s,
                pause_at_s,
                ..
            }
            | JobSpec::Resume {
                threads,
                slice_s,
                pause_at_s,
                ..
            } => Params {
                threads: *threads,
                slice_s: *slice_s,
                pause_at_s: *pause_at_s,
                pause_at_row: None,
            },
            JobSpec::E16Sweep {
                threads,
                slice_s,
                pause_at_row,
                ..
            }
            | JobSpec::E18Sweep {
                threads,
                slice_s,
                pause_at_row,
                ..
            }
            | JobSpec::ResumeSweep {
                threads,
                slice_s,
                pause_at_row,
                ..
            } => Params {
                threads: *threads,
                slice_s: *slice_s,
                pause_at_s: None,
                pause_at_row: *pause_at_row,
            },
            JobSpec::PanicProbe { .. } => Params {
                threads: 1,
                slice_s: DEFAULT_SLICE_S,
                pause_at_s: None,
                pause_at_row: None,
            },
        }
    }
}

/// Job lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted; no worker has built the simulation yet.
    Queued,
    /// In the run queue (or on a worker) actively stepping slices.
    Running,
    /// Parked at the requested `pause_at_s` / `pause_at_row` boundary;
    /// not in the run queue until `unpause` (or `stop`). The simulation
    /// is observable and checkpointable.
    Paused,
    /// Reached the horizon; final state retained for `report`/`checkpoint`.
    Done,
    /// Stopped by an operator at a slice boundary; state retained.
    Stopped,
    /// The worker failed (corrupt checkpoint, panic, ...); see the error.
    Failed,
}

impl JobState {
    /// Wire label (`"running"`, `"paused"`, ...).
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Paused => "paused",
            JobState::Done => "done",
            JobState::Stopped => "stopped",
            JobState::Failed => "failed",
        }
    }

    /// Parse a wire label back into a state (manifest loading).
    pub fn parse(label: &str) -> Option<JobState> {
        Some(match label {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "paused" => JobState::Paused,
            "done" => JobState::Done,
            "stopped" => JobState::Stopped,
            "failed" => JobState::Failed,
            _ => return None,
        })
    }

    /// Whether the job will never be stepped again.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Stopped | JobState::Failed)
    }
}

/// A point-in-time view of a job, cheap to clone and render.
#[derive(Debug, Clone)]
pub struct JobSnapshot {
    /// Lifecycle state.
    pub state: JobState,
    /// Latest end-of-slice progress of the live fleet — for sweep jobs,
    /// the *current row's* fleet (`None` before the first slice).
    pub progress: Option<FleetProgress>,
    /// Slices completed so far (monotonic; watch cursors key off it).
    pub slices: u64,
    /// Sweep cursor: `(rows_done, rows_total)` for sweep jobs.
    pub sweep_rows: Option<(usize, usize)>,
    /// Failure message when `state == Failed`.
    pub error: Option<String>,
}

/// The persistable scheduling parameters of a job: what the state-dir
/// manifest records alongside the checkpoint file so a rebooted daemon
/// steps the job the same way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Worker threads for intra-fleet sharded stepping.
    pub threads: usize,
    /// Slice length in simulated seconds.
    pub slice_s: u64,
    /// Remaining pause anchor (simulated seconds), if any.
    pub pause_at_s: Option<u64>,
    /// Remaining row-boundary pause anchor (sweeps), if any.
    pub pause_at_row: Option<usize>,
}

/// Sweep bookkeeping: the per-row cursor that `SWP1` persists. The
/// worker mutates it only while the slot is empty (between `take_parked`
/// and `park`), so any observer holding the slot with a parked fleet sees
/// a cursor consistent with that fleet.
#[derive(Debug, Default)]
struct SweepBook {
    /// Which experiment grid the sweep walks (E16 k-grid or the E18
    /// deployment × poisoning grid).
    flavor: SweepFlavor,
    /// Deterministic seed (row configs derive from it).
    seed: u64,
    /// Fleet size per row.
    clients: usize,
    /// Resolver count (the grid derives from it per flavor).
    resolvers: usize,
    /// Rows in the grid ([`SweepFlavor::total_rows`]); 0 until the
    /// sweep builds.
    total: usize,
    /// Index of the current row (== completed row count).
    row: usize,
    /// Final `CHR1` checkpoint of each completed row, in row order.
    /// Restoring one and calling `report()` reproduces the row's report
    /// byte-identically — this is how a rebooted daemon serves sweep
    /// reports without recomputing rows.
    done_blobs: Vec<Vec<u8>>,
    /// The completed rows' reports (derived from `done_blobs`).
    done_reports: Vec<FleetReport>,
}

impl SweepBook {
    /// The fleet configuration of grid row `row` — a pure function of
    /// the book's identity, shared (via `e16_config` / `e18_config`)
    /// with the batch runners so a daemon sweep reproduces `run_e16` /
    /// `run_e18` byte for byte.
    fn row_config(&self, row: usize) -> fleet::FleetConfig {
        match self.flavor {
            SweepFlavor::E16 => e16_config(self.seed, self.clients, self.resolvers, row),
            SweepFlavor::E18 => {
                let (deployment, poisoned) = e18_grid(self.resolvers)[row];
                e18_config(
                    self.seed,
                    self.clients,
                    self.resolvers,
                    deployment,
                    poisoned,
                )
            }
        }
    }
}

/// A finished sweep's assembled result, matching the flavor of grid the
/// job walked. Holds exactly what the batch runner for that flavor
/// (`run_e16` / `run_e18`) would have produced, minus pooled `stats`.
#[derive(Debug, Clone)]
pub enum SweepOutcome {
    /// An `e16-sweep` (or a resumed one): the partial-poisoning sweep.
    E16(E16Result),
    /// An `e18-sweep` (or a resumed one): the deployment × poisoning
    /// sweep over the partially-secure population.
    E18(E18Result),
}

/// What the worker knows about a job between steps. Guarded by a mutex
/// that is only ever locked by the worker currently holding the job (the
/// queue hands a job to one worker at a time) or, for paused jobs, by
/// `request_unpause`/adoption — so it is never contended.
#[derive(Debug)]
enum WorkerState {
    /// Not yet built; the first step builds the simulation.
    Pending(JobSpec),
    /// A fleet job stepping toward this horizon.
    FleetRun {
        /// The configured end of simulated time.
        horizon: SimTime,
    },
    /// A sweep stepping its current row (cursor + identity in the
    /// [`SweepBook`]).
    SweepRun,
    /// Terminal: nothing left to step.
    Finished,
}

/// What one scheduling step did, and therefore what the worker does next.
enum StepOutcome {
    /// Made progress; re-enqueue at the back of the run queue.
    Again,
    /// Parked in `paused`; `unpause` re-enqueues it.
    Idle,
    /// Terminal; never enqueued again.
    Terminal,
}

/// One hosted job: identity, live status, and the parked simulation.
pub struct Job {
    /// Unique job name (operator-chosen at submit time).
    pub name: String,
    /// Job-kind label (`"e16-fleet"`, `"e16-sweep"`, `"resume"`, ...).
    pub kind: &'static str,
    me: Weak<Job>,
    sched: Weak<Scheduler>,
    status: Mutex<JobSnapshot>,
    status_cv: Condvar,
    slot: Mutex<Option<Fleet>>,
    slot_cv: Condvar,
    stop: AtomicBool,
    unpause: AtomicBool,
    worker: Mutex<WorkerState>,
    params: Mutex<Params>,
    book: Mutex<SweepBook>,
    spec_json: Json,
    sweep_result: Mutex<Option<SweepOutcome>>,
    /// Per-job gauges (`None` when the table runs without observability).
    metrics: Option<JobMetrics>,
    /// The daemon logger (`None` when embedding without observability).
    logger: Option<Arc<obs::Logger>>,
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("name", &self.name)
            .field("kind", &self.kind)
            .field("state", &self.snapshot().state)
            .finish()
    }
}

/// Map a wire/manifest kind label onto the static label the job carries
/// (unknown labels — a manifest from a future version — collapse to
/// `"unknown"` rather than being rejected).
fn static_kind(label: &str) -> &'static str {
    match label {
        "e16-fleet" => "e16-fleet",
        "e17-fleet" => "e17-fleet",
        "e18-fleet" => "e18-fleet",
        "e16-sweep" => "e16-sweep",
        "e18-sweep" => "e18-sweep",
        "resume" => "resume",
        "resume-sweep" => "resume-sweep",
        "panic-probe" => "panic-probe",
        _ => "unknown",
    }
}

impl Job {
    #[allow(clippy::too_many_arguments)]
    fn new(
        me: &Weak<Job>,
        sched: Weak<Scheduler>,
        name: String,
        kind: &'static str,
        spec_json: Json,
        params: Params,
        worker: WorkerState,
        metrics: Option<JobMetrics>,
        logger: Option<Arc<obs::Logger>>,
    ) -> Job {
        Job {
            name,
            kind,
            me: me.clone(),
            sched,
            status: Mutex::new(JobSnapshot {
                state: JobState::Queued,
                progress: None,
                slices: 0,
                sweep_rows: None,
                error: None,
            }),
            status_cv: Condvar::new(),
            slot: Mutex::new(None),
            slot_cv: Condvar::new(),
            stop: AtomicBool::new(false),
            unpause: AtomicBool::new(false),
            worker: Mutex::new(worker),
            params: Mutex::new(params),
            book: Mutex::new(SweepBook::default()),
            spec_json,
            sweep_result: Mutex::new(None),
            metrics,
            logger,
        }
    }

    /// The watch-subscriber gauge, when observability is attached (the
    /// daemon's `watch` handler holds it up/down around a stream).
    pub(crate) fn watchers_gauge(&self) -> Option<Arc<obs::Gauge>> {
        self.metrics.as_ref().map(|m| Arc::clone(&m.watchers))
    }

    /// The current status snapshot.
    pub fn snapshot(&self) -> JobSnapshot {
        lock(&self.status).clone()
    }

    /// The job's scheduling parameters (persisted in the manifest).
    pub fn params(&self) -> Params {
        *lock(&self.params)
    }

    /// The original submit spec, as manifest-round-trippable JSON.
    pub fn spec_json(&self) -> Json {
        self.spec_json.clone()
    }

    /// Ask the pool to stop the job at the next slice boundary
    /// (idempotent). A paused job has no worker, so it transitions to
    /// `stopped` right here.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let mut status = lock(&self.status);
        let was_paused = status.state == JobState::Paused;
        if was_paused {
            status.state = JobState::Stopped;
        }
        drop(status);
        if was_paused {
            // No worker owns a paused job (it is not in the queue), so
            // retiring its worker state here cannot race a step.
            *lock(&self.worker) = WorkerState::Finished;
            self.log_state(JobState::Stopped, None);
        }
        self.status_cv.notify_all();
        self.slot_cv.notify_all();
    }

    /// Release a [`JobState::Paused`] job back into the run queue. On a
    /// job that has not paused yet, cancels its upcoming pause anchor
    /// instead (the old fire-and-forget semantics).
    pub fn request_unpause(&self) {
        let mut status = lock(&self.status);
        if status.state != JobState::Paused {
            drop(status);
            self.unpause.store(true, Ordering::SeqCst);
            self.status_cv.notify_all();
            return;
        }
        status.state = JobState::Running;
        drop(status);
        // Safe for the same reason as in `request_stop`: between the
        // Paused→Running transition above and the enqueue below, no
        // worker can own this job.
        {
            let mut params = lock(&self.params);
            params.pause_at_s = None;
            params.pause_at_row = None;
        }
        self.unpause.store(false, Ordering::SeqCst);
        self.log_state(JobState::Running, None);
        self.status_cv.notify_all();
        if let (Some(sched), Some(me)) = (self.sched.upgrade(), self.me.upgrade()) {
            sched.enqueue(me);
        }
    }

    /// Block until the job moves past the `(seen_slices, seen_state)`
    /// cursor — another slice lands, the lifecycle state changes, or a
    /// terminal state is reached; returns the fresh snapshot. `None` on
    /// timeout.
    pub fn wait_change(
        &self,
        seen_slices: u64,
        seen_state: JobState,
        timeout: Duration,
    ) -> Option<JobSnapshot> {
        let deadline = std::time::Instant::now() + timeout;
        let mut status = lock(&self.status);
        loop {
            if status.slices != seen_slices
                || status.state != seen_state
                || status.state.is_terminal()
            {
                return Some(status.clone());
            }
            let left = deadline.checked_duration_since(std::time::Instant::now())?;
            let (guard, _) = self
                .status_cv
                .wait_timeout(status, left)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            status = guard;
        }
    }

    /// Run `f` against the parked fleet, waiting (bounded by `timeout`)
    /// for the worker to finish its current slice. Errors for jobs that
    /// hold no simulation state (failed jobs, finished sweeps).
    pub fn with_fleet<R>(
        &self,
        timeout: Duration,
        f: impl FnOnce(&Fleet) -> R,
    ) -> Result<R, String> {
        let deadline = std::time::Instant::now() + timeout;
        let mut slot = lock(&self.slot);
        loop {
            if let Some(fleet) = slot.as_ref() {
                return Ok(f(fleet));
            }
            if self.snapshot().state.is_terminal() {
                return Err(format!("job {:?} holds no fleet state", self.name));
            }
            let left = deadline
                .checked_duration_since(std::time::Instant::now())
                .ok_or_else(|| format!("timed out waiting for job {:?} to park", self.name))?;
            let (guard, _) = self
                .slot_cv
                .wait_timeout(slot, left)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            slot = guard;
        }
    }

    /// Serialize the parked fleet (always at a `run_until` boundary).
    /// For sweep jobs this is the *current row's* fleet; the full sweep
    /// cursor is [`Job::sweep_cursor`].
    pub fn checkpoint(&self, timeout: Duration) -> Result<Vec<u8>, String> {
        let start = std::time::Instant::now();
        let bytes = self.with_fleet(timeout, |fleet| fleet.checkpoint())?;
        if let Some(m) = &self.metrics {
            m.checkpoint_wall.set(start.elapsed().as_secs_f64());
            m.checkpoint_bytes.set(bytes.len() as f64);
        }
        if let Some(logger) = &self.logger {
            logger.debug(
                "chronosd::jobs",
                "checkpoint taken",
                &[("job", &self.name), ("bytes", &bytes.len())],
            );
        }
        Ok(bytes)
    }

    /// The live (or final) aggregate report of a fleet job (for sweeps:
    /// the current row's fleet).
    pub fn report(&self, timeout: Duration) -> Result<FleetReport, String> {
        self.with_fleet(timeout, |fleet| fleet.report())
    }

    /// The stored sweep result (`None` until a sweep job is done); the
    /// variant matches the grid flavor the job walked.
    pub fn sweep_result(&self) -> Option<SweepOutcome> {
        lock(&self.sweep_result).clone()
    }

    /// The report of completed sweep row `row` (rows complete in order,
    /// so this serves partial results while the sweep is still running).
    pub fn sweep_row_report(&self, row: usize) -> Option<FleetReport> {
        lock(&self.book).done_reports.get(row).cloned()
    }

    /// Serialize the sweep cursor as `SWP1` bytes: every completed row's
    /// final checkpoint plus the current row's live checkpoint. Errors
    /// for non-sweep jobs and sweeps that have not built yet.
    pub fn sweep_cursor(&self, timeout: Duration) -> Result<Vec<u8>, String> {
        // Complete sweeps hold no current fleet: encode the cursor from
        // the book alone. Otherwise hold the slot (fleet parked) so the
        // book cannot move while we pair it with the live checkpoint.
        {
            let book = lock(&self.book);
            if book.total == 0 {
                return Err(format!("job {:?} has no sweep cursor yet", self.name));
            }
            if book.row >= book.total {
                return Ok(crate::sweep::encode(&crate::sweep::SweepCursor {
                    flavor: book.flavor,
                    seed: book.seed,
                    clients: book.clients,
                    resolvers: book.resolvers,
                    row: book.row,
                    done: book.done_blobs.clone(),
                    current: None,
                }));
            }
        }
        self.with_fleet(timeout, |fleet| {
            let book = lock(&self.book);
            crate::sweep::encode(&crate::sweep::SweepCursor {
                flavor: book.flavor,
                seed: book.seed,
                clients: book.clients,
                resolvers: book.resolvers,
                row: book.row,
                done: book.done_blobs.clone(),
                current: Some(fleet.checkpoint()),
            })
        })
    }

    /// Whether this job is a sweep (current or resumed).
    pub fn is_sweep(&self) -> bool {
        matches!(self.kind, "e16-sweep" | "e18-sweep" | "resume-sweep")
    }

    fn log_state(&self, state: JobState, error: Option<&str>) {
        if let Some(logger) = &self.logger {
            match error {
                Some(message) => logger.error(
                    "chronosd::jobs",
                    "job failed",
                    &[("job", &self.name), ("error", &message)],
                ),
                None => logger.info(
                    "chronosd::jobs",
                    "job state change",
                    &[("job", &self.name), ("state", &state.as_str())],
                ),
            }
        }
    }

    fn set_state(&self, state: JobState, error: Option<String>) {
        self.log_state(state, error.as_deref());
        let mut status = lock(&self.status);
        status.state = state;
        if error.is_some() {
            status.error = error;
        }
        drop(status);
        self.status_cv.notify_all();
        // Terminal transitions also release `with_fleet` waiters.
        self.slot_cv.notify_all();
    }

    fn publish_slice(&self, progress: FleetProgress) {
        if let (Some(m), Some(t)) = (&self.metrics, progress.throughput) {
            m.slice_wall.set(t.wall_secs);
            m.sim_per_wall.set(t.sim_per_wall);
            m.events_per_sec.set(t.events_per_sec);
        }
        let sweep_rows = {
            let book = lock(&self.book);
            (book.total > 0).then_some((book.row.min(book.total), book.total))
        };
        let mut status = lock(&self.status);
        status.progress = Some(progress);
        status.slices += 1;
        if sweep_rows.is_some() {
            status.sweep_rows = sweep_rows;
        }
        drop(status);
        self.status_cv.notify_all();
    }

    fn park(&self, fleet: Fleet) {
        *lock(&self.slot) = Some(fleet);
        self.slot_cv.notify_all();
    }

    /// Take the parked fleet. `None` only if the state was lost to an
    /// earlier panic mid-slice — the caller fails the job instead of
    /// unwrapping.
    fn take_parked(&self) -> Option<Fleet> {
        lock(&self.slot).take()
    }

    fn parked_now(&self) -> Option<SimTime> {
        lock(&self.slot).as_ref().map(Fleet::now)
    }

    /// Retire the job as stopped (worker-side or shutdown drain).
    fn finish_stopped(&self) {
        *lock(&self.worker) = WorkerState::Finished;
        self.set_state(JobState::Stopped, None);
    }

    fn finish_failed(&self, message: String) {
        *lock(&self.worker) = WorkerState::Finished;
        self.set_state(JobState::Failed, Some(message));
    }

    /// One cooperative scheduling step: build the simulation or advance
    /// it by one slice. Called by pool workers with exclusive ownership
    /// of the job (it is out of the queue while stepping).
    fn step(&self, fleet_metrics: &Option<Arc<FleetMetrics>>) -> StepOutcome {
        if self.snapshot().state.is_terminal() {
            return StepOutcome::Terminal;
        }
        if self.stop.load(Ordering::SeqCst) {
            self.finish_stopped();
            return StepOutcome::Terminal;
        }
        let worker = lock(&self.worker);
        match &*worker {
            WorkerState::Pending(spec) => {
                let spec = spec.clone();
                // The job is out of the queue while stepping, so nobody
                // else touches the worker state: safe to release the
                // guard and let build() (and adopt_cursor) relock it.
                drop(worker);
                self.build(spec, fleet_metrics)
            }
            WorkerState::FleetRun { horizon } => {
                let horizon = *horizon;
                drop(worker);
                self.step_fleet(horizon)
            }
            WorkerState::SweepRun => {
                drop(worker);
                self.step_sweep(fleet_metrics)
            }
            WorkerState::Finished => StepOutcome::Terminal,
        }
    }

    /// First step: build the simulation from the spec.
    fn build(&self, spec: JobSpec, fleet_metrics: &Option<Arc<FleetMetrics>>) -> StepOutcome {
        let sweep_flavor = match &spec {
            JobSpec::E18Sweep { .. } => SweepFlavor::E18,
            _ => SweepFlavor::E16,
        };
        match spec {
            JobSpec::PanicProbe { message } => {
                // The probe exists to exercise the pool's catch_unwind
                // path end to end; the panic is caught one frame up.
                panic!("{message}");
            }
            JobSpec::E16Sweep {
                seed,
                clients,
                resolvers,
                threads,
                ..
            }
            | JobSpec::E18Sweep {
                seed,
                clients,
                resolvers,
                threads,
                ..
            } => {
                let mut config = {
                    let mut book = lock(&self.book);
                    book.flavor = sweep_flavor;
                    book.seed = seed;
                    book.clients = clients;
                    book.resolvers = resolvers;
                    book.total = sweep_flavor.total_rows(resolvers);
                    book.row = 0;
                    book.row_config(0)
                };
                config.threads = threads;
                let mut fleet = Fleet::new(config);
                fleet.set_metrics(fleet_metrics.clone());
                let progress = fleet.progress();
                self.park(fleet);
                *lock(&self.worker) = WorkerState::SweepRun;
                self.set_state(JobState::Running, None);
                self.publish_slice(progress);
                StepOutcome::Again
            }
            JobSpec::ResumeSweep {
                ref bytes, threads, ..
            } => {
                let adopted = crate::sweep::decode(bytes)
                    .map_err(|e| e.to_string())
                    .and_then(|cursor| self.adopt_cursor(cursor, threads, fleet_metrics));
                match adopted {
                    Ok(running) => {
                        if running {
                            StepOutcome::Again
                        } else {
                            StepOutcome::Terminal
                        }
                    }
                    Err(e) => {
                        *lock(&self.worker) = WorkerState::Finished;
                        self.set_state(
                            JobState::Failed,
                            Some(format!("sweep cursor rejected: {e}")),
                        );
                        StepOutcome::Terminal
                    }
                }
            }
            ref fleet_spec => match build_fleet(fleet_spec, fleet_metrics.clone()) {
                Ok(fleet) => {
                    let horizon = SimTime::ZERO + fleet.config().horizon;
                    let progress = fleet.progress();
                    self.park(fleet);
                    *lock(&self.worker) = WorkerState::FleetRun { horizon };
                    self.set_state(JobState::Running, None);
                    self.publish_slice(progress);
                    StepOutcome::Again
                }
                Err(message) => {
                    *lock(&self.worker) = WorkerState::Finished;
                    self.set_state(JobState::Failed, Some(message));
                    StepOutcome::Terminal
                }
            },
        }
    }

    /// Decide whether to pause at the current boundary. Returns `true`
    /// when the job was parked in `paused` (caller returns `Idle`).
    fn pause_here(&self) -> bool {
        if self.unpause.swap(false, Ordering::SeqCst) {
            let mut params = lock(&self.params);
            params.pause_at_s = None;
            params.pause_at_row = None;
            return false;
        }
        let mut status = lock(&self.status);
        if self.stop.load(Ordering::SeqCst) {
            // Raced with request_stop: prefer stopped over a pause that
            // nobody will ever release.
            drop(status);
            self.finish_stopped();
            return true;
        }
        status.state = JobState::Paused;
        drop(status);
        self.log_state(JobState::Paused, None);
        self.status_cv.notify_all();
        true
    }

    fn step_fleet(&self, horizon: SimTime) -> StepOutcome {
        let params = self.params();
        let Some(now) = self.parked_now() else {
            self.finish_failed("fleet state lost (earlier panic mid-slice)".to_string());
            return StepOutcome::Terminal;
        };
        let pause_at = params.pause_at_s.map(SimTime::from_secs);
        if let Some(p) = pause_at {
            if now >= p && self.pause_here() {
                return StepOutcome::Idle;
            }
        }
        if now >= horizon {
            *lock(&self.worker) = WorkerState::Finished;
            self.set_state(JobState::Done, None);
            return StepOutcome::Terminal;
        }
        let mut target = (now + SimDuration::from_secs(params.slice_s)).min(horizon);
        // Re-read: pause_here() may have just cleared the anchor.
        if let Some(p) = self.params().pause_at_s.map(SimTime::from_secs) {
            if p > now {
                target = target.min(p);
            }
        }
        let Some(mut fleet) = self.take_parked() else {
            self.finish_failed("fleet state lost (earlier panic mid-slice)".to_string());
            return StepOutcome::Terminal;
        };
        fleet.run_until(target);
        let progress = fleet.progress();
        self.park(fleet);
        self.publish_slice(progress);
        StepOutcome::Again
    }

    fn step_sweep(&self, fleet_metrics: &Option<Arc<FleetMetrics>>) -> StepOutcome {
        let params = self.params();
        let Some(now) = self.parked_now() else {
            self.finish_failed("sweep state lost (earlier panic mid-slice)".to_string());
            return StepOutcome::Terminal;
        };
        let row = lock(&self.book).row;
        // Row-boundary pause: about to start row `pause_at_row`, its
        // fleet freshly built and untouched.
        if params.pause_at_row == Some(row) && now == SimTime::ZERO && self.pause_here() {
            return StepOutcome::Idle;
        }
        let Some(mut fleet) = self.take_parked() else {
            self.finish_failed("sweep state lost (earlier panic mid-slice)".to_string());
            return StepOutcome::Terminal;
        };
        let horizon = SimTime::ZERO + fleet.config().horizon;
        if now < horizon {
            let target = (now + SimDuration::from_secs(params.slice_s)).min(horizon);
            fleet.run_until(target);
            let progress = fleet.progress();
            self.park(fleet);
            self.publish_slice(progress);
            return StepOutcome::Again;
        }
        // Row complete: record its final checkpoint + report, then build
        // the next row (the slot stays empty only inside this window,
        // which is what keeps cursor observations consistent).
        let blob = fleet.checkpoint();
        let report = fleet.report();
        drop(fleet);
        let (next_row, total, next_config) = {
            let mut book = lock(&self.book);
            book.done_blobs.push(blob);
            book.done_reports.push(report);
            book.row += 1;
            let config = (book.row < book.total).then(|| book.row_config(book.row));
            (book.row, book.total, config)
        };
        if next_row >= total {
            self.finish_sweep();
            return StepOutcome::Terminal;
        }
        let mut config = next_config.expect("next row is inside the grid");
        config.threads = params.threads;
        let mut next = Fleet::new(config);
        next.set_metrics(fleet_metrics.clone());
        let progress = next.progress();
        self.park(next);
        self.publish_slice(progress);
        StepOutcome::Again
    }

    /// Assemble the final sweep result ([`E16Result`] or [`E18Result`],
    /// per the book's flavor) from the completed rows and retire the
    /// sweep. Stats are zeroed: the daemon path builds rows directly
    /// instead of going through the pooled dispatcher, and the wire
    /// format omits stats either way.
    fn finish_sweep(&self) {
        let result = {
            let book = lock(&self.book);
            let resolvers = book.resolvers.max(1);
            match book.flavor {
                SweepFlavor::E16 => {
                    let rows: Vec<E16Row> = book
                        .done_reports
                        .iter()
                        .enumerate()
                        .map(|(k, report)| E16Row {
                            poisoned_resolvers: k,
                            poisoned_fraction: k as f64 / resolvers as f64,
                            report: report.clone(),
                        })
                        .collect();
                    SweepOutcome::E16(e16_result_from_rows(resolvers, rows, SweepStats::default()))
                }
                SweepFlavor::E18 => {
                    let rows: Vec<E18Row> = e18_grid(resolvers)
                        .iter()
                        .zip(book.done_reports.iter())
                        .map(|(&(deployment, poisoned), report)| E18Row {
                            deployment,
                            poisoned_resolvers: poisoned,
                            poisoned_fraction: poisoned as f64 / resolvers as f64,
                            report: report.clone(),
                        })
                        .collect();
                    SweepOutcome::E18(e18_result_from_rows(resolvers, rows, SweepStats::default()))
                }
            }
        };
        *lock(&self.sweep_result) = Some(result);
        *lock(&self.worker) = WorkerState::Finished;
        {
            let book = lock(&self.book);
            let mut status = lock(&self.status);
            status.sweep_rows = Some((book.row, book.total));
        }
        self.set_state(JobState::Done, None);
    }

    /// Install a decoded sweep cursor: restore completed-row reports and
    /// the current row's fleet. Returns whether the job keeps running
    /// (false when the cursor was already complete). Shared by the
    /// `resume-sweep` build path and boot-time adoption.
    fn adopt_cursor(
        &self,
        cursor: crate::sweep::SweepCursor,
        threads: usize,
        fleet_metrics: &Option<Arc<FleetMetrics>>,
    ) -> Result<bool, String> {
        let total = cursor.flavor.total_rows(cursor.resolvers);
        if cursor.row > total || (cursor.row < total) != cursor.current.is_some() {
            return Err("cursor row count inconsistent with payload".to_string());
        }
        let mut done_reports = Vec::with_capacity(cursor.done.len());
        for (k, blob) in cursor.done.iter().enumerate() {
            let restored = Fleet::restore(blob)
                .map_err(|e| format!("completed row {k} checkpoint rejected: {e}"))?;
            done_reports.push(restored.report());
        }
        {
            let mut params = lock(&self.params);
            params.threads = threads;
        }
        {
            let mut book = lock(&self.book);
            book.flavor = cursor.flavor;
            book.seed = cursor.seed;
            book.clients = cursor.clients;
            book.resolvers = cursor.resolvers;
            book.total = total;
            book.row = cursor.row;
            book.done_blobs = cursor.done.clone();
            book.done_reports = done_reports;
        }
        *lock(&self.worker) = WorkerState::SweepRun;
        match cursor.current {
            Some(blob) => {
                let mut fleet = Fleet::restore_with(&blob, fleet_metrics.clone())
                    .map_err(|e| format!("current row checkpoint rejected: {e}"))?;
                fleet.set_threads(threads);
                let progress = fleet.progress();
                self.park(fleet);
                self.set_state(JobState::Running, None);
                self.publish_slice(progress);
                Ok(true)
            }
            None => {
                self.finish_sweep();
                Ok(false)
            }
        }
    }
}

fn build_fleet(spec: &JobSpec, metrics: Option<Arc<FleetMetrics>>) -> Result<Fleet, String> {
    match spec {
        JobSpec::E16Fleet {
            seed,
            clients,
            resolvers,
            poisoned_resolvers,
            threads,
            ..
        } => {
            let mut config = e16_config(*seed, *clients, *resolvers, *poisoned_resolvers);
            config.threads = *threads;
            let mut fleet = Fleet::new(config);
            fleet.set_metrics(metrics);
            Ok(fleet)
        }
        JobSpec::E17Fleet {
            seed,
            clients,
            resolvers,
            loss,
            outage_coverage,
            threads,
            ..
        } => {
            let mut config = e17_config(*seed, *clients, *resolvers, *loss, *outage_coverage);
            config.threads = *threads;
            let mut fleet = Fleet::new(config);
            fleet.set_metrics(metrics);
            Ok(fleet)
        }
        JobSpec::E18Fleet {
            seed,
            clients,
            resolvers,
            deployment,
            poisoned_resolvers,
            threads,
            ..
        } => {
            let mut config = e18_config(
                *seed,
                *clients,
                *resolvers,
                *deployment,
                *poisoned_resolvers,
            );
            config.threads = *threads;
            let mut fleet = Fleet::new(config);
            fleet.set_metrics(metrics);
            Ok(fleet)
        }
        JobSpec::Resume { bytes, threads, .. } => {
            let mut fleet = Fleet::restore_with(bytes, metrics)
                .map_err(|e| format!("checkpoint rejected: {e}"))?;
            fleet.set_threads(*threads);
            Ok(fleet)
        }
        JobSpec::E16Sweep { .. }
        | JobSpec::E18Sweep { .. }
        | JobSpec::ResumeSweep { .. }
        | JobSpec::PanicProbe { .. } => Err("not a fleet spec".to_string()),
    }
}

/// The run queue shared by the pool workers. Jobs enter at submit (and
/// unpause) time and cycle `pop → step one slice → push` until they park
/// in `paused` or reach a terminal state.
#[derive(Debug)]
struct Scheduler {
    queue: Mutex<VecDeque<Arc<Job>>>,
    cv: Condvar,
    shutdown: AtomicBool,
}

impl Scheduler {
    fn new() -> Scheduler {
        Scheduler {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        }
    }

    fn enqueue(&self, job: Arc<Job>) {
        lock(&self.queue).push_back(job);
        self.cv.notify_one();
    }

    /// Pop the next runnable job; blocks until one arrives or shutdown.
    fn next(&self) -> Option<Arc<Job>> {
        let mut queue = lock(&self.queue);
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return None;
            }
            if let Some(job) = queue.pop_front() {
                return Some(job);
            }
            let (guard, _) = self
                .cv
                .wait_timeout(queue, Duration::from_millis(100))
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            queue = guard;
        }
    }
}

/// Extract a human-readable message from a `catch_unwind` payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic payload of unknown type".to_string()
    }
}

/// One pool worker: step jobs round-robin until shutdown.
fn worker_loop(sched: Arc<Scheduler>, obs: Option<Arc<DaemonObs>>) {
    let fleet_metrics = obs.as_ref().map(|o| Arc::clone(&o.fleet));
    while let Some(job) = sched.next() {
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| job.step(&fleet_metrics)));
        match outcome {
            Ok(StepOutcome::Again) => {
                if let Some(o) = &obs {
                    o.slices_scheduled.inc();
                }
                sched.enqueue(job);
            }
            Ok(StepOutcome::Idle) | Ok(StepOutcome::Terminal) => {}
            Err(payload) => {
                let message = format!("job panicked: {}", panic_message(payload));
                if let Some(o) = &obs {
                    o.job_panics.inc();
                }
                job.finish_failed(message);
            }
        }
    }
}

/// The default pool size: one worker per core, minus one core left for
/// the socket handlers (never below one).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1))
        .unwrap_or(1)
        .max(1)
}

/// The daemon's registry of named jobs, backed by the worker pool.
#[derive(Debug)]
pub struct JobTable {
    jobs: Mutex<BTreeMap<String, Arc<Job>>>,
    sched: Arc<Scheduler>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    obs: Option<Arc<DaemonObs>>,
}

impl Default for JobTable {
    fn default() -> JobTable {
        JobTable::new()
    }
}

impl JobTable {
    /// An empty table without observability (embedding and tests), with
    /// the default worker-pool size.
    pub fn new() -> JobTable {
        JobTable::with_config(default_workers(), None)
    }

    /// An empty table with an explicit pool size, no observability.
    pub fn with_workers(workers: usize) -> JobTable {
        JobTable::with_config(workers, None)
    }

    /// An empty table whose jobs register gauges in `obs`, attach the
    /// daemon-wide [`FleetMetrics`] to their fleets, and log lifecycle
    /// transitions through the daemon logger.
    pub fn with_observability(obs: Arc<DaemonObs>) -> JobTable {
        JobTable::with_config(default_workers(), Some(obs))
    }

    /// The fully explicit constructor: pool size and optional
    /// observability. Spawns the worker threads immediately.
    pub fn with_config(workers: usize, obs: Option<Arc<DaemonObs>>) -> JobTable {
        let sched = Arc::new(Scheduler::new());
        let workers = workers.max(1);
        let handles = (0..workers)
            .map(|i| {
                let sched = Arc::clone(&sched);
                let obs = obs.clone();
                std::thread::Builder::new()
                    .name(format!("chronosd-worker-{i}"))
                    .spawn(move || worker_loop(sched, obs))
                    .expect("spawning a pool worker thread")
            })
            .collect();
        JobTable {
            jobs: Mutex::new(BTreeMap::new()),
            sched,
            workers: Mutex::new(handles),
            obs,
        }
    }

    /// The pool size (worker threads stepping jobs).
    pub fn worker_count(&self) -> usize {
        lock(&self.workers).len()
    }

    /// Register a job under `name` and enqueue it on the worker pool.
    /// Fails if the name is empty or already taken (stale terminal jobs
    /// keep their name — pick a new one).
    pub fn submit(&self, name: &str, spec: JobSpec) -> Result<Arc<Job>, String> {
        let job = self.register(name, spec)?;
        self.sched.enqueue(Arc::clone(&job));
        Ok(job)
    }

    /// Create and register the job without enqueueing it (adoption paths
    /// place restored jobs in non-queued states first).
    fn register(&self, name: &str, spec: JobSpec) -> Result<Arc<Job>, String> {
        let kind = spec.kind();
        let spec_json = spec.to_json();
        let params = spec.params();
        self.register_raw(name, kind, spec_json, params, WorkerState::Pending(spec))
    }

    fn register_raw(
        &self,
        name: &str,
        kind: &'static str,
        spec_json: Json,
        params: Params,
        worker: WorkerState,
    ) -> Result<Arc<Job>, String> {
        if name.is_empty() {
            return Err("job name must not be empty".to_string());
        }
        let job_metrics = self.obs.as_ref().map(|o| o.job_metrics(name));
        let logger = self.obs.as_ref().map(|o| Arc::clone(&o.logger));
        let sched = Arc::downgrade(&self.sched);
        let job = {
            let mut jobs = lock(&self.jobs);
            if jobs.contains_key(name) {
                return Err(format!("job {name:?} already exists"));
            }
            let job = Arc::new_cyclic(|me| {
                Job::new(
                    me,
                    sched,
                    name.to_string(),
                    kind,
                    spec_json,
                    params,
                    worker,
                    job_metrics,
                    logger,
                )
            });
            jobs.insert(name.to_string(), Arc::clone(&job));
            job
        };
        if let Some(o) = &self.obs {
            o.logger.info(
                "chronosd::jobs",
                "job submitted",
                &[("job", &name), ("kind", &kind)],
            );
        }
        Ok(job)
    }

    /// Adopt a restored fleet job from the state dir: park the fleet,
    /// install the manifest's lifecycle state and scheduling params, and
    /// (for `running`) enqueue it. `spec_json` is the original submit
    /// spec (re-recorded in the next manifest); `slices` restores the
    /// watch cursor.
    #[allow(clippy::too_many_arguments)]
    pub fn adopt_fleet(
        &self,
        name: &str,
        kind_label: &str,
        spec_json: Json,
        params: Params,
        mut fleet: Fleet,
        state: JobState,
        slices: u64,
    ) -> Result<Arc<Job>, String> {
        fleet.set_threads(params.threads);
        if let Some(o) = &self.obs {
            fleet.set_metrics(Some(Arc::clone(&o.fleet)));
        }
        let horizon = SimTime::ZERO + fleet.config().horizon;
        let progress = fleet.progress();
        let worker = if state.is_terminal() {
            WorkerState::Finished
        } else {
            WorkerState::FleetRun { horizon }
        };
        let job = self.register_raw(name, static_kind(kind_label), spec_json, params, worker)?;
        job.park(fleet);
        let run = state == JobState::Running || state == JobState::Queued;
        {
            let mut status = lock(&job.status);
            status.state = if run { JobState::Running } else { state };
            status.progress = Some(progress);
            status.slices = slices;
        }
        job.status_cv.notify_all();
        if run {
            self.sched.enqueue(Arc::clone(&job));
        }
        Ok(job)
    }

    /// Adopt a restored sweep job from its decoded `SWP1` cursor.
    #[allow(clippy::too_many_arguments)]
    pub fn adopt_sweep(
        &self,
        name: &str,
        kind_label: &str,
        spec_json: Json,
        params: Params,
        cursor: crate::sweep::SweepCursor,
        state: JobState,
        slices: u64,
    ) -> Result<Arc<Job>, String> {
        let job = self.register_raw(
            name,
            static_kind(kind_label),
            spec_json,
            params,
            WorkerState::Finished, // adopt_cursor installs the real state
        )?;
        let fleet_metrics = self.obs.as_ref().map(|o| Arc::clone(&o.fleet));
        let still_running = job
            .adopt_cursor(cursor, params.threads, &fleet_metrics)
            .map_err(|e| format!("sweep cursor rejected: {e}"))?;
        {
            let mut status = lock(&job.status);
            status.slices = status.slices.max(slices);
            // adopt_cursor set Running (live cursor) or Done (complete);
            // override with the manifest state for paused/stopped.
            if still_running && state != JobState::Running && state != JobState::Queued {
                status.state = state;
            }
        }
        job.status_cv.notify_all();
        if still_running {
            if state.is_terminal() {
                *lock(&job.worker) = WorkerState::Finished;
            } else if state == JobState::Running || state == JobState::Queued {
                self.sched.enqueue(Arc::clone(&job));
            }
        }
        Ok(job)
    }

    /// Adopt a job as failed without any simulation state (corrupt or
    /// quarantined state files, unknown manifest kinds).
    pub fn adopt_failed(
        &self,
        name: &str,
        kind_label: &str,
        spec_json: Json,
        error: String,
    ) -> Result<Arc<Job>, String> {
        let params = Params {
            threads: 1,
            slice_s: DEFAULT_SLICE_S,
            pause_at_s: None,
            pause_at_row: None,
        };
        let job = self.register_raw(
            name,
            static_kind(kind_label),
            spec_json,
            params,
            WorkerState::Finished,
        )?;
        job.set_state(JobState::Failed, Some(error));
        Ok(job)
    }

    /// Look up a job by name.
    pub fn get(&self, name: &str) -> Option<Arc<Job>> {
        lock(&self.jobs).get(name).cloned()
    }

    /// All jobs, in name order.
    pub fn list(&self) -> Vec<Arc<Job>> {
        lock(&self.jobs).values().cloned().collect()
    }

    /// Drop a terminal job from the table, freeing its name for reuse.
    /// Fails for unknown names and for jobs still running/paused — stop
    /// a job first if you want it gone.
    pub fn forget(&self, name: &str) -> Result<(), String> {
        {
            let mut jobs = lock(&self.jobs);
            let job = jobs
                .get(name)
                .ok_or_else(|| format!("no such job: {name:?}"))?;
            let state = job.snapshot().state;
            if !state.is_terminal() {
                return Err(format!(
                    "job {name:?} is {}; stop it before forgetting",
                    state.as_str()
                ));
            }
            jobs.remove(name);
        }
        if let Some(o) = &self.obs {
            o.logger
                .info("chronosd::jobs", "job forgotten", &[("job", &name)]);
        }
        Ok(())
    }

    /// Stop every job and join the worker pool (daemon shutdown). Any
    /// job still non-terminal after the pool drains (it never got a
    /// final step) is retired as `stopped` directly.
    pub fn stop_all_and_join(&self) {
        for job in self.list() {
            job.request_stop();
        }
        self.sched.shutdown.store(true, Ordering::SeqCst);
        self.sched.cv.notify_all();
        let workers: Vec<_> = std::mem::take(&mut *lock(&self.workers));
        for handle in workers {
            let _ = handle.join();
        }
        lock(&self.sched.queue).clear();
        for job in self.list() {
            if !job.snapshot().state.is_terminal() {
                job.finish_stopped();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec(pause_at_s: Option<u64>) -> JobSpec {
        JobSpec::E16Fleet {
            seed: 7,
            clients: 24,
            resolvers: 2,
            poisoned_resolvers: 1,
            threads: 1,
            slice_s: 500,
            pause_at_s,
        }
    }

    fn wait_for(job: &Job, state: JobState) -> JobSnapshot {
        let deadline = std::time::Instant::now() + Duration::from_secs(60);
        let mut cursor: Option<(u64, JobState)> = None;
        loop {
            let snap = match cursor {
                None => job.snapshot(),
                Some((slices, seen_state)) => job
                    .wait_change(slices, seen_state, Duration::from_secs(5))
                    .unwrap_or_else(|| job.snapshot()),
            };
            if snap.state == state {
                return snap;
            }
            assert!(
                !snap.state.is_terminal(),
                "terminal {:?} (error {:?}) while waiting for {state:?}",
                snap.state,
                snap.error
            );
            assert!(std::time::Instant::now() < deadline, "timed out");
            cursor = Some((snap.slices, snap.state));
        }
    }

    #[test]
    fn fleet_job_runs_to_done_and_matches_batch() {
        let table = JobTable::with_workers(2);
        let job = table.submit("smoke", small_spec(None)).unwrap();
        let done = wait_for(&job, JobState::Done);
        assert!(
            done.slices > 1,
            "expected multiple slices, got {}",
            done.slices
        );
        let daemon_report = job.report(Duration::from_secs(5)).unwrap();
        let batch = Fleet::new(e16_config(7, 24, 2, 1)).run();
        assert_eq!(daemon_report, batch);
        table.stop_all_and_join();
    }

    #[test]
    fn pause_checkpoint_resume_is_byte_identical() {
        let table = JobTable::with_workers(2);
        let job = table.submit("first-leg", small_spec(Some(1_500))).unwrap();
        wait_for(&job, JobState::Paused);
        let bytes = job.checkpoint(Duration::from_secs(5)).unwrap();
        let mid = job.report(Duration::from_secs(5)).unwrap();
        assert!(mid.end < netsim::time::SimTime::from_secs(6_000), "mid-run");
        job.request_stop();

        let resumed = table
            .submit(
                "second-leg",
                JobSpec::Resume {
                    bytes,
                    threads: 2,
                    slice_s: 500,
                    pause_at_s: None,
                },
            )
            .unwrap();
        wait_for(&resumed, JobState::Done);
        let resumed_report = resumed.report(Duration::from_secs(5)).unwrap();
        let batch = Fleet::new(e16_config(7, 24, 2, 1)).run();
        assert_eq!(resumed_report, batch);
        table.stop_all_and_join();
    }

    #[test]
    fn stop_parks_state_and_names_stay_unique() {
        let table = JobTable::with_workers(1);
        let job = table.submit("victim", small_spec(Some(1_000))).unwrap();
        assert!(table.submit("victim", small_spec(None)).is_err());
        wait_for(&job, JobState::Paused);
        job.request_stop();
        let snap = wait_for(&job, JobState::Stopped);
        assert!(snap.progress.is_some());
        // Stopped jobs still expose their parked state.
        assert!(job.report(Duration::from_secs(5)).is_ok());
        table.stop_all_and_join();
    }

    #[test]
    fn bad_specs_and_bad_checkpoints_are_rejected() {
        assert!(JobSpec::from_json(&Json::parse(r#"{"kind":"nope"}"#).unwrap()).is_err());
        assert!(JobSpec::from_json(
            &Json::parse(r#"{"kind":"e16-fleet","resolvers":2,"poisoned_resolvers":3}"#).unwrap()
        )
        .is_err());
        let table = JobTable::with_workers(1);
        let job = table
            .submit(
                "corrupt",
                JobSpec::Resume {
                    bytes: b"junk".to_vec(),
                    threads: 1,
                    slice_s: 60,
                    pause_at_s: None,
                },
            )
            .unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        loop {
            let snap = job.snapshot();
            if snap.state == JobState::Failed {
                assert!(snap.error.unwrap().contains("checkpoint rejected"));
                break;
            }
            assert!(std::time::Instant::now() < deadline, "timed out");
            std::thread::sleep(Duration::from_millis(10));
        }
        table.stop_all_and_join();
    }

    #[test]
    fn panicking_job_fails_while_pool_keeps_serving() {
        // One worker: the probe and the fleet share it, so surviving the
        // panic *and* finishing the fleet proves the worker survived.
        let table = JobTable::with_workers(1);
        let probe = table
            .submit(
                "probe",
                JobSpec::PanicProbe {
                    message: "deliberate test panic".to_string(),
                },
            )
            .unwrap();
        let fleet = table.submit("survivor", small_spec(None)).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        loop {
            let snap = probe.snapshot();
            if snap.state == JobState::Failed {
                let error = snap.error.unwrap();
                assert!(
                    error.contains("deliberate test panic"),
                    "panic message missing: {error}"
                );
                break;
            }
            assert!(std::time::Instant::now() < deadline, "probe never failed");
            std::thread::sleep(Duration::from_millis(10));
        }
        let done = wait_for(&fleet, JobState::Done);
        assert!(done.slices > 1);
        let report = fleet.report(Duration::from_secs(5)).unwrap();
        assert_eq!(report, Fleet::new(e16_config(7, 24, 2, 1)).run());
        table.stop_all_and_join();
    }

    #[test]
    fn sweep_job_matches_run_e16_rows_and_series() {
        let table = JobTable::with_workers(2);
        let job = table
            .submit(
                "sweep",
                JobSpec::E16Sweep {
                    seed: 7,
                    clients: 16,
                    resolvers: 2,
                    threads: 1,
                    slice_s: 2_000,
                    pause_at_row: None,
                },
            )
            .unwrap();
        let snap = wait_for(&job, JobState::Done);
        assert_eq!(snap.sweep_rows, Some((3, 3)));
        let SweepOutcome::E16(result) = job.sweep_result().expect("sweep result") else {
            panic!("e16 sweep produced a non-e16 outcome");
        };
        let batch = chronos_pitfalls::experiments::run_e16(7, 16, 2, 1);
        assert_eq!(result.rows, batch.rows);
        assert_eq!(result.series, batch.series);
        table.stop_all_and_join();
    }

    #[test]
    fn sweep_pause_cursor_resume_is_byte_identical() {
        let table = JobTable::with_workers(2);
        let job = table
            .submit(
                "sweep-a",
                JobSpec::E16Sweep {
                    seed: 7,
                    clients: 16,
                    resolvers: 2,
                    threads: 1,
                    slice_s: 2_000,
                    pause_at_row: Some(1),
                },
            )
            .unwrap();
        wait_for(&job, JobState::Paused);
        let snap = job.snapshot();
        assert_eq!(snap.sweep_rows, Some((1, 3)));
        // Row 0 is already servable while the sweep is parked.
        assert!(job.sweep_row_report(0).is_some());
        let cursor = job.sweep_cursor(Duration::from_secs(5)).unwrap();
        job.request_stop();

        let resumed = table
            .submit(
                "sweep-b",
                JobSpec::ResumeSweep {
                    bytes: cursor,
                    threads: 2,
                    slice_s: 1_000,
                    pause_at_row: None,
                },
            )
            .unwrap();
        wait_for(&resumed, JobState::Done);
        let SweepOutcome::E16(result) = resumed.sweep_result().expect("sweep result") else {
            panic!("resumed e16 sweep produced a non-e16 outcome");
        };
        let batch = chronos_pitfalls::experiments::run_e16(7, 16, 2, 1);
        assert_eq!(result.rows, batch.rows);
        assert_eq!(result.series, batch.series);
        table.stop_all_and_join();
    }

    #[test]
    fn e18_sweep_job_matches_run_e18_rows_and_series() {
        let table = JobTable::with_workers(2);
        let job = table
            .submit(
                "e18-sweep",
                JobSpec::E18Sweep {
                    seed: 7,
                    clients: 16,
                    resolvers: 2,
                    threads: 1,
                    slice_s: 2_000,
                    pause_at_row: None,
                },
            )
            .unwrap();
        let snap = wait_for(&job, JobState::Done);
        let total = e18_grid(2).len();
        assert_eq!(snap.sweep_rows, Some((total, total)));
        let SweepOutcome::E18(result) = job.sweep_result().expect("sweep result") else {
            panic!("e18 sweep produced a non-e18 outcome");
        };
        let batch = chronos_pitfalls::experiments::run_e18(7, 16, 2, 1);
        assert_eq!(result.rows, batch.rows);
        assert_eq!(result.series, batch.series);
        table.stop_all_and_join();
    }

    #[test]
    fn forget_drops_only_terminal_jobs_and_frees_the_name() {
        let table = JobTable::with_workers(1);
        let job = table.submit("keeper", small_spec(Some(1_000))).unwrap();
        wait_for(&job, JobState::Paused);
        // Paused is not terminal: the job is still steerable.
        let err = table.forget("keeper").unwrap_err();
        assert!(err.contains("paused"), "unexpected error: {err}");
        assert!(table.get("keeper").is_some());
        // Unknown names are a clean error, not a panic.
        assert!(table.forget("nobody").is_err());

        job.request_stop();
        wait_for(&job, JobState::Stopped);
        table.forget("keeper").unwrap();
        assert!(table.get("keeper").is_none());
        // The name is immediately reusable.
        let again = table.submit("keeper", small_spec(None)).unwrap();
        wait_for(&again, JobState::Done);
        table.stop_all_and_join();
    }

    #[test]
    fn unpause_reenqueues_a_paused_job() {
        let table = JobTable::with_workers(1);
        let job = table.submit("pausing", small_spec(Some(1_000))).unwrap();
        wait_for(&job, JobState::Paused);
        job.request_unpause();
        wait_for(&job, JobState::Done);
        let report = job.report(Duration::from_secs(5)).unwrap();
        assert_eq!(report, Fleet::new(e16_config(7, 24, 2, 1)).run());
        table.stop_all_and_join();
    }

    #[test]
    fn spec_json_round_trips() {
        for spec in [
            small_spec(Some(9)),
            JobSpec::E16Sweep {
                seed: 3,
                clients: 10,
                resolvers: 2,
                threads: 2,
                slice_s: 100,
                pause_at_row: Some(1),
            },
            JobSpec::E18Fleet {
                seed: 11,
                clients: 48,
                resolvers: 4,
                deployment: 0.75,
                poisoned_resolvers: 2,
                threads: 2,
                slice_s: 250,
                pause_at_s: Some(500),
            },
            JobSpec::E18Sweep {
                seed: 5,
                clients: 12,
                resolvers: 3,
                threads: 1,
                slice_s: 400,
                pause_at_row: Some(2),
            },
            JobSpec::Resume {
                bytes: vec![1, 2, 0xfe],
                threads: 2,
                slice_s: 60,
                pause_at_s: None,
            },
            JobSpec::PanicProbe {
                message: "boom".to_string(),
            },
        ] {
            let json = spec.to_json();
            let reparsed = JobSpec::from_json(&json).expect("round trip parses");
            assert_eq!(format!("{spec:?}"), format!("{reparsed:?}"));
        }
    }
}
