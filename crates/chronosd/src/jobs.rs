//! Named jobs: persistent fleet runs and pooled sweeps hosted by the
//! daemon.
//!
//! A *job* owns one simulation and steps it on its own worker thread in
//! `run_until` **slices** (default 60 simulated seconds). Between slices
//! the [`fleet::Fleet`] is *parked* in a shared slot, which is the whole
//! concurrency story:
//!
//! * the worker takes the fleet out, steps one slice without holding any
//!   lock, publishes a fresh [`FleetProgress`] snapshot, and puts the
//!   fleet back;
//! * server threads that need the live state (`status`, `report`,
//!   `checkpoint`) wait on the slot condvar until the fleet is parked —
//!   so every observation and every checkpoint lands exactly on a
//!   `run_until` boundary, which the engine's property tests prove is
//!   invisible to the simulation (`piecewise_runs_equal_one_continuous_run`,
//!   `resume_equals_uninterrupted_run`).
//!
//! Determinism follows: a job's final report depends only on its
//! [`fleet::FleetConfig`] — not on slice length, worker threads, how often
//! an operator polled, or whether the run was checkpointed into a
//! different process halfway through.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use chronos_pitfalls::experiments::{e16_config, e17_config, run_e16, E16Result};
use fleet::engine::{Fleet, FleetProgress, FleetReport};
use fleet::metrics::FleetMetrics;
use netsim::time::{SimDuration, SimTime};

use crate::json::Json;
use crate::metrics::{DaemonObs, JobMetrics};

/// Default slice length in simulated seconds between observation points.
pub const DEFAULT_SLICE_S: u64 = 60;

/// What a job runs. Parsed from the `spec` object of a `submit` request
/// (see `docs/OPERATIONS.md` for the wire format), except for
/// [`JobSpec::Resume`], which the daemon builds from a checkpoint file.
#[derive(Debug, Clone)]
pub enum JobSpec {
    /// One E16 fleet: the mixed 2:1:1 population across `resolvers`
    /// caches with `poisoned_resolvers` of them poisoned at t = 100 s.
    E16Fleet {
        /// Deterministic seed.
        seed: u64,
        /// Fleet size.
        clients: usize,
        /// Independent resolver caches.
        resolvers: usize,
        /// Caches the attacker poisons (`0..=resolvers`).
        poisoned_resolvers: usize,
        /// Worker threads for intra-fleet sharded stepping.
        threads: usize,
        /// Slice length (simulated seconds) between observation points.
        slice_s: u64,
        /// Optionally park the job in `paused` state once simulated time
        /// reaches this point (checkpoint anchor for operators and CI).
        pause_at_s: Option<u64>,
    },
    /// One E17 fleet: the E16 scenario on a degraded network.
    E17Fleet {
        /// Deterministic seed.
        seed: u64,
        /// Fleet size.
        clients: usize,
        /// Independent resolver caches.
        resolvers: usize,
        /// Per-sample NTP loss / DNS SERVFAIL probability.
        loss: f64,
        /// Resolvers covered by the mid-run outage window.
        outage_coverage: usize,
        /// Worker threads for intra-fleet sharded stepping.
        threads: usize,
        /// Slice length (simulated seconds) between observation points.
        slice_s: u64,
        /// Optional pause point (simulated seconds).
        pause_at_s: Option<u64>,
    },
    /// The full E16 partial-poisoning sweep (`k = 0..=resolvers`), run
    /// through the pooled Monte-Carlo dispatcher. Sweeps are batch
    /// units: they cannot be paused or checkpointed, only observed and
    /// awaited.
    E16Sweep {
        /// Deterministic seed.
        seed: u64,
        /// Fleet size per sweep point.
        clients: usize,
        /// Independent resolver caches.
        resolvers: usize,
        /// Threads for the sweep dispatcher.
        threads: usize,
    },
    /// Resume a fleet from checkpoint bytes (any fleet kind).
    Resume {
        /// Serialized checkpoint (see `fleet::checkpoint`).
        bytes: Vec<u8>,
        /// Worker threads for the resumed run.
        threads: usize,
        /// Slice length (simulated seconds) between observation points.
        slice_s: u64,
        /// Optional pause point (simulated seconds).
        pause_at_s: Option<u64>,
    },
}

fn field_u64(spec: &Json, key: &str, default: u64) -> Result<u64, String> {
    match spec.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| format!("{key}: expected a non-negative integer")),
    }
}

fn field_usize(spec: &Json, key: &str, default: usize) -> Result<usize, String> {
    match spec.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_usize()
            .ok_or_else(|| format!("{key}: expected a non-negative integer")),
    }
}

fn field_f64(spec: &Json, key: &str, default: f64) -> Result<f64, String> {
    match spec.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| format!("{key}: expected a number")),
    }
}

impl JobSpec {
    /// Parse a `submit` spec object. Unknown kinds and malformed fields
    /// are rejected with a message naming the offending field.
    pub fn from_json(spec: &Json) -> Result<JobSpec, String> {
        let kind = spec
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| "spec.kind: expected a string".to_string())?;
        let threads = field_usize(spec, "threads", 1)?.max(1);
        let slice_s = field_u64(spec, "slice_s", DEFAULT_SLICE_S)?.max(1);
        let pause_at_s = match spec.get("pause_at_s") {
            None | Some(Json::Null) => None,
            Some(v) => Some(
                v.as_u64()
                    .ok_or_else(|| "pause_at_s: expected a non-negative integer".to_string())?,
            ),
        };
        match kind {
            "e16-fleet" => {
                let resolvers = field_usize(spec, "resolvers", 4)?.max(1);
                let poisoned_resolvers = field_usize(spec, "poisoned_resolvers", resolvers)?;
                if poisoned_resolvers > resolvers {
                    return Err(format!(
                        "poisoned_resolvers: {poisoned_resolvers} exceeds resolvers ({resolvers})"
                    ));
                }
                Ok(JobSpec::E16Fleet {
                    seed: field_u64(spec, "seed", 7)?,
                    clients: field_usize(spec, "clients", 1_000)?.max(1),
                    resolvers,
                    poisoned_resolvers,
                    threads,
                    slice_s,
                    pause_at_s,
                })
            }
            "e17-fleet" => {
                let resolvers = field_usize(spec, "resolvers", 8)?.max(1);
                let outage_coverage = field_usize(spec, "outage_coverage", 0)?;
                if outage_coverage > resolvers {
                    return Err(format!(
                        "outage_coverage: {outage_coverage} exceeds resolvers ({resolvers})"
                    ));
                }
                Ok(JobSpec::E17Fleet {
                    seed: field_u64(spec, "seed", 7)?,
                    clients: field_usize(spec, "clients", 1_000)?.max(1),
                    resolvers,
                    loss: field_f64(spec, "loss", 0.05)?,
                    outage_coverage,
                    threads,
                    slice_s,
                    pause_at_s,
                })
            }
            "e16-sweep" => Ok(JobSpec::E16Sweep {
                seed: field_u64(spec, "seed", 7)?,
                clients: field_usize(spec, "clients", 1_000)?.max(1),
                resolvers: field_usize(spec, "resolvers", 4)?.max(1),
                threads,
            }),
            other => Err(format!(
                "spec.kind: unknown kind {other:?} (expected e16-fleet, e17-fleet or e16-sweep)"
            )),
        }
    }

    /// The job-kind label reported in `jobs` / `status` responses.
    pub fn kind(&self) -> &'static str {
        match self {
            JobSpec::E16Fleet { .. } => "e16-fleet",
            JobSpec::E17Fleet { .. } => "e17-fleet",
            JobSpec::E16Sweep { .. } => "e16-sweep",
            JobSpec::Resume { .. } => "resume",
        }
    }
}

/// Job lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted; the worker thread has not yet built the simulation.
    Queued,
    /// Actively stepping slices.
    Running,
    /// Parked at the requested `pause_at_s` boundary; waits for
    /// `unpause` (or `stop`). The fleet is observable and checkpointable.
    Paused,
    /// Reached the horizon; final state retained for `report`/`checkpoint`.
    Done,
    /// Stopped by an operator at a slice boundary; state retained.
    Stopped,
    /// The worker failed (e.g. a corrupt checkpoint); see the error.
    Failed,
}

impl JobState {
    /// Wire label (`"running"`, `"paused"`, ...).
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Paused => "paused",
            JobState::Done => "done",
            JobState::Stopped => "stopped",
            JobState::Failed => "failed",
        }
    }

    /// Whether the worker has exited.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Stopped | JobState::Failed)
    }
}

/// A point-in-time view of a job, cheap to clone and render.
#[derive(Debug, Clone)]
pub struct JobSnapshot {
    /// Lifecycle state.
    pub state: JobState,
    /// Latest end-of-slice progress (fleet jobs; `None` before the first
    /// slice and for sweep jobs).
    pub progress: Option<FleetProgress>,
    /// Slices completed so far (monotonic; watch cursors key off it).
    pub slices: u64,
    /// Failure message when `state == Failed`.
    pub error: Option<String>,
}

/// One hosted job: identity, live status, and the parked simulation.
pub struct Job {
    /// Unique job name (operator-chosen at submit time).
    pub name: String,
    /// Job-kind label (`"e16-fleet"`, `"e16-sweep"`, `"resume"`, ...).
    pub kind: &'static str,
    status: Mutex<JobSnapshot>,
    status_cv: Condvar,
    slot: Mutex<Option<Fleet>>,
    slot_cv: Condvar,
    stop: AtomicBool,
    unpause: AtomicBool,
    sweep_result: Mutex<Option<E16Result>>,
    /// Per-job gauges (`None` when the table runs without observability).
    metrics: Option<JobMetrics>,
    /// The daemon logger (`None` when embedding without observability).
    logger: Option<Arc<obs::Logger>>,
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("name", &self.name)
            .field("kind", &self.kind)
            .field("state", &self.snapshot().state)
            .finish()
    }
}

impl Job {
    fn new(
        name: String,
        kind: &'static str,
        metrics: Option<JobMetrics>,
        logger: Option<Arc<obs::Logger>>,
    ) -> Job {
        Job {
            name,
            kind,
            status: Mutex::new(JobSnapshot {
                state: JobState::Queued,
                progress: None,
                slices: 0,
                error: None,
            }),
            status_cv: Condvar::new(),
            slot: Mutex::new(None),
            slot_cv: Condvar::new(),
            stop: AtomicBool::new(false),
            unpause: AtomicBool::new(false),
            sweep_result: Mutex::new(None),
            metrics,
            logger,
        }
    }

    /// The watch-subscriber gauge, when observability is attached (the
    /// daemon's `watch` handler holds it up/down around a stream).
    pub(crate) fn watchers_gauge(&self) -> Option<Arc<obs::Gauge>> {
        self.metrics.as_ref().map(|m| Arc::clone(&m.watchers))
    }

    /// The current status snapshot.
    pub fn snapshot(&self) -> JobSnapshot {
        self.status.lock().expect("status lock").clone()
    }

    /// Ask the worker to stop at the next slice boundary (idempotent).
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.status_cv.notify_all();
        self.slot_cv.notify_all();
    }

    /// Release a [`JobState::Paused`] job back into stepping.
    pub fn request_unpause(&self) {
        self.unpause.store(true, Ordering::SeqCst);
        self.status_cv.notify_all();
    }

    /// Block until the job moves past the `(seen_slices, seen_state)`
    /// cursor — another slice lands, the lifecycle state changes, or a
    /// terminal state is reached; returns the fresh snapshot. `None` on
    /// timeout.
    pub fn wait_change(
        &self,
        seen_slices: u64,
        seen_state: JobState,
        timeout: Duration,
    ) -> Option<JobSnapshot> {
        let deadline = std::time::Instant::now() + timeout;
        let mut status = self.status.lock().expect("status lock");
        loop {
            if status.slices != seen_slices
                || status.state != seen_state
                || status.state.is_terminal()
            {
                return Some(status.clone());
            }
            let left = deadline.checked_duration_since(std::time::Instant::now())?;
            let (guard, _) = self
                .status_cv
                .wait_timeout(status, left)
                .expect("status lock");
            status = guard;
        }
    }

    /// Run `f` against the parked fleet, waiting (bounded by `timeout`)
    /// for the worker to finish its current slice. Errors for sweep jobs
    /// (which own no fleet) and failed jobs.
    pub fn with_fleet<R>(
        &self,
        timeout: Duration,
        f: impl FnOnce(&Fleet) -> R,
    ) -> Result<R, String> {
        let deadline = std::time::Instant::now() + timeout;
        let mut slot = self.slot.lock().expect("slot lock");
        loop {
            if let Some(fleet) = slot.as_ref() {
                return Ok(f(fleet));
            }
            if self.snapshot().state.is_terminal() {
                return Err(format!("job {:?} holds no fleet state", self.name));
            }
            let left = deadline
                .checked_duration_since(std::time::Instant::now())
                .ok_or_else(|| format!("timed out waiting for job {:?} to park", self.name))?;
            let (guard, _) = self.slot_cv.wait_timeout(slot, left).expect("slot lock");
            slot = guard;
        }
    }

    /// Serialize the parked fleet (always at a `run_until` boundary).
    pub fn checkpoint(&self, timeout: Duration) -> Result<Vec<u8>, String> {
        let start = std::time::Instant::now();
        let bytes = self.with_fleet(timeout, |fleet| fleet.checkpoint())?;
        if let Some(m) = &self.metrics {
            m.checkpoint_wall.set(start.elapsed().as_secs_f64());
            m.checkpoint_bytes.set(bytes.len() as f64);
        }
        if let Some(logger) = &self.logger {
            logger.debug(
                "chronosd::jobs",
                "checkpoint taken",
                &[("job", &self.name), ("bytes", &bytes.len())],
            );
        }
        Ok(bytes)
    }

    /// The live (or final) aggregate report of a fleet job.
    pub fn report(&self, timeout: Duration) -> Result<FleetReport, String> {
        self.with_fleet(timeout, |fleet| fleet.report())
    }

    /// The stored sweep result (`None` until an `e16-sweep` job is done).
    pub fn sweep_result(&self) -> Option<E16Result> {
        self.sweep_result.lock().expect("sweep lock").clone()
    }

    fn set_state(&self, state: JobState, error: Option<String>) {
        if let Some(logger) = &self.logger {
            match &error {
                Some(message) => logger.error(
                    "chronosd::jobs",
                    "job failed",
                    &[("job", &self.name), ("error", message)],
                ),
                None => logger.info(
                    "chronosd::jobs",
                    "job state change",
                    &[("job", &self.name), ("state", &state.as_str())],
                ),
            }
        }
        let mut status = self.status.lock().expect("status lock");
        status.state = state;
        if error.is_some() {
            status.error = error;
        }
        drop(status);
        self.status_cv.notify_all();
        // Terminal transitions also release `with_fleet` waiters.
        self.slot_cv.notify_all();
    }

    fn publish_slice(&self, progress: FleetProgress) {
        if let (Some(m), Some(t)) = (&self.metrics, progress.throughput) {
            m.slice_wall.set(t.wall_secs);
            m.sim_per_wall.set(t.sim_per_wall);
            m.events_per_sec.set(t.events_per_sec);
        }
        let mut status = self.status.lock().expect("status lock");
        status.progress = Some(progress);
        status.slices += 1;
        drop(status);
        self.status_cv.notify_all();
    }

    fn park(&self, fleet: Fleet) {
        *self.slot.lock().expect("slot lock") = Some(fleet);
        self.slot_cv.notify_all();
    }

    fn take_parked(&self) -> Fleet {
        self.slot
            .lock()
            .expect("slot lock")
            .take()
            .expect("worker owns the only take path")
    }
}

fn build_fleet(spec: &JobSpec, metrics: Option<Arc<FleetMetrics>>) -> Result<Fleet, String> {
    match spec {
        JobSpec::E16Fleet {
            seed,
            clients,
            resolvers,
            poisoned_resolvers,
            threads,
            ..
        } => {
            let mut config = e16_config(*seed, *clients, *resolvers, *poisoned_resolvers);
            config.threads = *threads;
            let mut fleet = Fleet::new(config);
            fleet.set_metrics(metrics);
            Ok(fleet)
        }
        JobSpec::E17Fleet {
            seed,
            clients,
            resolvers,
            loss,
            outage_coverage,
            threads,
            ..
        } => {
            let mut config = e17_config(*seed, *clients, *resolvers, *loss, *outage_coverage);
            config.threads = *threads;
            let mut fleet = Fleet::new(config);
            fleet.set_metrics(metrics);
            Ok(fleet)
        }
        JobSpec::Resume { bytes, threads, .. } => {
            let mut fleet = Fleet::restore_with(bytes, metrics)
                .map_err(|e| format!("checkpoint rejected: {e}"))?;
            fleet.set_threads(*threads);
            Ok(fleet)
        }
        JobSpec::E16Sweep { .. } => unreachable!("sweep jobs run through run_sweep"),
    }
}

/// The worker loop for one job. Runs on the job's dedicated thread.
fn run_job(job: &Job, spec: JobSpec, fleet_metrics: Option<Arc<FleetMetrics>>) {
    if let JobSpec::E16Sweep {
        seed,
        clients,
        resolvers,
        threads,
    } = spec
    {
        job.set_state(JobState::Running, None);
        let result = run_e16(seed, clients, resolvers, threads);
        *job.sweep_result.lock().expect("sweep lock") = Some(result);
        job.set_state(JobState::Done, None);
        return;
    }

    let (slice_s, mut pause_at) = match &spec {
        JobSpec::E16Fleet {
            slice_s,
            pause_at_s,
            ..
        }
        | JobSpec::E17Fleet {
            slice_s,
            pause_at_s,
            ..
        }
        | JobSpec::Resume {
            slice_s,
            pause_at_s,
            ..
        } => (*slice_s, pause_at_s.map(SimTime::from_secs)),
        JobSpec::E16Sweep { .. } => unreachable!("handled above"),
    };

    let fleet = match build_fleet(&spec, fleet_metrics) {
        Ok(fleet) => fleet,
        Err(message) => {
            job.set_state(JobState::Failed, Some(message));
            return;
        }
    };
    let horizon = SimTime::ZERO + fleet.config().horizon;
    let slice = SimDuration::from_secs(slice_s);
    job.publish_slice(fleet.progress());
    job.park(fleet);
    job.set_state(JobState::Running, None);

    loop {
        if job.stop.load(Ordering::SeqCst) {
            job.set_state(JobState::Stopped, None);
            return;
        }
        let now = job
            .with_fleet(Duration::from_secs(1), |fleet| fleet.now())
            .expect("worker parked the fleet");
        if let Some(p) = pause_at {
            if now >= p {
                job.set_state(JobState::Paused, None);
                let mut status = job.status.lock().expect("status lock");
                while !job.unpause.load(Ordering::SeqCst) && !job.stop.load(Ordering::SeqCst) {
                    let (guard, _) = job
                        .status_cv
                        .wait_timeout(status, Duration::from_millis(200))
                        .expect("status lock");
                    status = guard;
                }
                drop(status);
                job.unpause.store(false, Ordering::SeqCst);
                pause_at = None;
                if job.stop.load(Ordering::SeqCst) {
                    job.set_state(JobState::Stopped, None);
                    return;
                }
                job.set_state(JobState::Running, None);
            }
        }
        if now >= horizon {
            job.set_state(JobState::Done, None);
            return;
        }
        let mut target = (now + slice).min(horizon);
        if let Some(p) = pause_at {
            if p > now {
                target = target.min(p);
            }
        }
        let mut fleet = job.take_parked();
        fleet.run_until(target);
        let progress = fleet.progress();
        job.park(fleet);
        job.publish_slice(progress);
    }
}

/// The daemon's registry of named jobs.
#[derive(Debug, Default)]
pub struct JobTable {
    jobs: Mutex<BTreeMap<String, Arc<Job>>>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    obs: Option<Arc<DaemonObs>>,
}

impl JobTable {
    /// An empty table without observability (embedding and tests).
    pub fn new() -> JobTable {
        JobTable::default()
    }

    /// An empty table whose jobs register gauges in `obs`, attach the
    /// daemon-wide [`FleetMetrics`] to their fleets, and log lifecycle
    /// transitions through the daemon logger.
    pub fn with_observability(obs: Arc<DaemonObs>) -> JobTable {
        JobTable {
            obs: Some(obs),
            ..JobTable::default()
        }
    }

    /// Register a job under `name` and start its worker thread. Fails if
    /// the name is empty or already taken (stale terminal jobs keep
    /// their name — pick a new one).
    pub fn submit(&self, name: &str, spec: JobSpec) -> Result<Arc<Job>, String> {
        if name.is_empty() {
            return Err("job name must not be empty".to_string());
        }
        let job_metrics = self.obs.as_ref().map(|o| o.job_metrics(name));
        let logger = self.obs.as_ref().map(|o| Arc::clone(&o.logger));
        let job = Arc::new(Job::new(name.to_string(), spec.kind(), job_metrics, logger));
        {
            let mut jobs = self.jobs.lock().expect("jobs lock");
            if jobs.contains_key(name) {
                return Err(format!("job {name:?} already exists"));
            }
            jobs.insert(name.to_string(), Arc::clone(&job));
        }
        if let Some(o) = &self.obs {
            o.logger.info(
                "chronosd::jobs",
                "job submitted",
                &[("job", &name), ("kind", &spec.kind())],
            );
        }
        let fleet_metrics = self.obs.as_ref().map(|o| Arc::clone(&o.fleet));
        let worker_job = Arc::clone(&job);
        let handle = std::thread::spawn(move || run_job(&worker_job, spec, fleet_metrics));
        self.handles.lock().expect("handles lock").push(handle);
        Ok(job)
    }

    /// Look up a job by name.
    pub fn get(&self, name: &str) -> Option<Arc<Job>> {
        self.jobs.lock().expect("jobs lock").get(name).cloned()
    }

    /// All jobs, in name order.
    pub fn list(&self) -> Vec<Arc<Job>> {
        self.jobs
            .lock()
            .expect("jobs lock")
            .values()
            .cloned()
            .collect()
    }

    /// Stop every job and join every worker thread (daemon shutdown).
    pub fn stop_all_and_join(&self) {
        for job in self.list() {
            job.request_stop();
        }
        let handles: Vec<_> = std::mem::take(&mut *self.handles.lock().expect("handles lock"));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec(pause_at_s: Option<u64>) -> JobSpec {
        JobSpec::E16Fleet {
            seed: 7,
            clients: 24,
            resolvers: 2,
            poisoned_resolvers: 1,
            threads: 1,
            slice_s: 500,
            pause_at_s,
        }
    }

    fn wait_for(job: &Job, state: JobState) -> JobSnapshot {
        let deadline = std::time::Instant::now() + Duration::from_secs(60);
        let mut cursor: Option<(u64, JobState)> = None;
        loop {
            let snap = match cursor {
                None => job.snapshot(),
                Some((slices, seen_state)) => job
                    .wait_change(slices, seen_state, Duration::from_secs(5))
                    .unwrap_or_else(|| job.snapshot()),
            };
            if snap.state == state {
                return snap;
            }
            assert!(
                !snap.state.is_terminal(),
                "terminal {:?} while waiting for {state:?}",
                snap.state
            );
            assert!(std::time::Instant::now() < deadline, "timed out");
            cursor = Some((snap.slices, snap.state));
        }
    }

    #[test]
    fn fleet_job_runs_to_done_and_matches_batch() {
        let table = JobTable::new();
        let job = table.submit("smoke", small_spec(None)).unwrap();
        let done = wait_for(&job, JobState::Done);
        assert!(
            done.slices > 1,
            "expected multiple slices, got {}",
            done.slices
        );
        let daemon_report = job.report(Duration::from_secs(5)).unwrap();
        let batch = Fleet::new(e16_config(7, 24, 2, 1)).run();
        assert_eq!(daemon_report, batch);
        table.stop_all_and_join();
    }

    #[test]
    fn pause_checkpoint_resume_is_byte_identical() {
        let table = JobTable::new();
        let job = table.submit("first-leg", small_spec(Some(1_500))).unwrap();
        wait_for(&job, JobState::Paused);
        let bytes = job.checkpoint(Duration::from_secs(5)).unwrap();
        let mid = job.report(Duration::from_secs(5)).unwrap();
        assert!(mid.end < netsim::time::SimTime::from_secs(6_000), "mid-run");
        job.request_stop();

        let resumed = table
            .submit(
                "second-leg",
                JobSpec::Resume {
                    bytes,
                    threads: 2,
                    slice_s: 500,
                    pause_at_s: None,
                },
            )
            .unwrap();
        wait_for(&resumed, JobState::Done);
        let resumed_report = resumed.report(Duration::from_secs(5)).unwrap();
        let batch = Fleet::new(e16_config(7, 24, 2, 1)).run();
        assert_eq!(resumed_report, batch);
        table.stop_all_and_join();
    }

    #[test]
    fn stop_parks_state_and_names_stay_unique() {
        let table = JobTable::new();
        let job = table.submit("victim", small_spec(Some(1_000))).unwrap();
        assert!(table.submit("victim", small_spec(None)).is_err());
        wait_for(&job, JobState::Paused);
        job.request_stop();
        let snap = wait_for(&job, JobState::Stopped);
        assert!(snap.progress.is_some());
        // Stopped jobs still expose their parked state.
        assert!(job.report(Duration::from_secs(5)).is_ok());
        table.stop_all_and_join();
    }

    #[test]
    fn bad_specs_and_bad_checkpoints_are_rejected() {
        assert!(JobSpec::from_json(&Json::parse(r#"{"kind":"nope"}"#).unwrap()).is_err());
        assert!(JobSpec::from_json(
            &Json::parse(r#"{"kind":"e16-fleet","resolvers":2,"poisoned_resolvers":3}"#).unwrap()
        )
        .is_err());
        let table = JobTable::new();
        let job = table
            .submit(
                "corrupt",
                JobSpec::Resume {
                    bytes: b"junk".to_vec(),
                    threads: 1,
                    slice_s: 60,
                    pause_at_s: None,
                },
            )
            .unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        loop {
            let snap = job.snapshot();
            if snap.state == JobState::Failed {
                assert!(snap.error.unwrap().contains("checkpoint rejected"));
                break;
            }
            assert!(std::time::Instant::now() < deadline, "timed out");
            std::thread::sleep(Duration::from_millis(10));
        }
        table.stop_all_and_join();
    }
}
