//! # chronosd — the simulation daemon
//!
//! Batch runs answer one question and exit. This crate turns the fleet
//! engine into a **service**: `chronosd` hosts persistent [`fleet::Fleet`]
//! runs and pooled sweeps as *named jobs*, steps them in `run_until`
//! slices on worker threads, and serves live observability over a
//! Unix-domain socket speaking newline-delimited JSON — job listings,
//! per-job progress, and full streaming [`fleet::FleetReport`] snapshots
//! (per-tier breakdowns and fault counters included) while a job is still
//! running. `chronosctl` is the operator client: submit, watch, pause,
//! checkpoint to a file, resume in a *fresh daemon process*, stop.
//!
//! The load-bearing guarantee is inherited from the engine and pinned by
//! its property tests: a job's final report is a pure function of its
//! [`fleet::FleetConfig`]. Slicing, polling, thread counts, and
//! checkpoint/resume cuts (`fleet::Fleet::checkpoint` /
//! `fleet::Fleet::restore`) are all invisible — CI literally diffs the
//! JSON report of a checkpointed-resumed daemon job against the batch
//! runner's bytes. The one documented caveat: P² quantile estimates
//! depend on `shard_size` (they are exact per shard, merged across
//! shards), so comparisons must hold `shard_size` fixed — see
//! `docs/OPERATIONS.md`.
//!
//! Module map: [`json`] (hand-rolled wire format; the vendored serde is a
//! no-op), [`render`] (canonical report/progress JSON), [`jobs`] (the job
//! table and the fair-slicing worker pool), [`daemon`] (the socket
//! server), [`client`] (the client used by `chronosctl`, the
//! `service_mode` example and the smoke tests), [`metrics`] (the
//! chronoscope layer: the metric registry behind the `metrics` command,
//! per-job gauges, and the structured logger that replaces the daemon's
//! formerly silent failure paths), [`sweep`] (the `SWP1` sweep-cursor
//! codec), [`state`] (the `--state-dir` durability layer: checksummed
//! manifest, periodic snapshots, resume-on-boot with quarantine).

#![warn(missing_docs)]

pub mod client;
pub mod daemon;
pub mod jobs;
pub mod json;
pub mod metrics;
pub mod render;
pub mod state;
pub mod sweep;

pub use client::{Client, ClientError};
pub use daemon::{Daemon, DaemonConfig, PROTOCOL_VERSION};
pub use jobs::{Job, JobSnapshot, JobSpec, JobState, JobTable, SweepOutcome};
pub use json::Json;
pub use metrics::{DaemonObs, JobMetrics, LOG_ENV};
pub use state::StateDir;
pub use sweep::{SweepCursor, SweepFlavor};
