//! The Unix-domain-socket server: accepts connections, speaks the
//! newline-delimited JSON protocol, and drives the [`crate::jobs`] table.
//!
//! One request per line, one (or, for `watch`, several) response lines
//! back; a connection handles any number of requests until the client
//! closes it. Every response carries `"ok"`; failures carry `"error"`
//! instead of the payload. The full protocol with annotated examples
//! lives in `docs/OPERATIONS.md`.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::jobs::{Job, JobSnapshot, JobSpec, JobTable};
use crate::json::Json;
use crate::render::{progress_json, report_json, sweep_json};

/// Protocol version reported by `ping` (bump on breaking wire changes).
pub const PROTOCOL_VERSION: u64 = 1;

/// How long observers wait for a stepping worker to park its fleet
/// before giving up (`status`/`report`/`checkpoint` on a busy job).
const PARK_TIMEOUT: Duration = Duration::from_secs(120);

/// The daemon: a bound socket plus the job table it serves.
#[derive(Debug)]
pub struct Daemon {
    listener: UnixListener,
    path: PathBuf,
    table: Arc<JobTable>,
    shutdown: Arc<AtomicBool>,
}

impl Daemon {
    /// Bind the control socket, replacing a stale socket file if one is
    /// left over from a dead daemon.
    pub fn bind(path: impl AsRef<Path>) -> std::io::Result<Daemon> {
        let path = path.as_ref().to_path_buf();
        // A leftover socket file makes bind fail with AddrInUse even when
        // nothing is listening; remove it and let bind decide.
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        Ok(Daemon {
            listener,
            path,
            table: Arc::new(JobTable::new()),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The socket path this daemon is bound to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The job table (shared with connection handlers; exposed for
    /// in-process embedding and tests).
    pub fn table(&self) -> Arc<JobTable> {
        Arc::clone(&self.table)
    }

    /// Serve until a `shutdown` request arrives. Each connection gets its
    /// own thread; the accept loop re-checks the shutdown flag after
    /// every accepted connection (the `shutdown` handler's own connection
    /// is what unblocks the final accept).
    pub fn serve(self) -> std::io::Result<()> {
        let mut handlers = Vec::new();
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = stream?;
            let table = Arc::clone(&self.table);
            let shutdown = Arc::clone(&self.shutdown);
            let path = self.path.clone();
            handlers.push(std::thread::spawn(move || {
                handle_connection(stream, &table, &shutdown, &path);
            }));
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
        }
        // Stop jobs first: that turns every job terminal, which ends any
        // in-flight `watch` stream, so handler threads (which poll the
        // shutdown flag between reads) can drain and exit.
        self.table.stop_all_and_join();
        for handler in handlers {
            let _ = handler.join();
        }
        let _ = std::fs::remove_file(&self.path);
        Ok(())
    }
}

fn ok(fields: Vec<(String, Json)>) -> Json {
    let mut all = vec![("ok".to_string(), Json::Bool(true))];
    all.extend(fields);
    Json::Obj(all)
}

fn err(message: impl Into<String>) -> Json {
    Json::Obj(vec![
        ("ok".to_string(), Json::Bool(false)),
        ("error".to_string(), Json::Str(message.into())),
    ])
}

fn snapshot_fields(job: &Job, snap: &JobSnapshot) -> Vec<(String, Json)> {
    vec![
        ("job".into(), Json::str(job.name.clone())),
        ("kind".into(), Json::str(job.kind)),
        ("state".into(), Json::str(snap.state.as_str())),
        ("slices".into(), Json::u64(snap.slices)),
        (
            "progress".into(),
            snap.progress
                .as_ref()
                .map(progress_json)
                .unwrap_or(Json::Null),
        ),
        (
            "error".into(),
            snap.error
                .as_ref()
                .map(|e| Json::str(e.clone()))
                .unwrap_or(Json::Null),
        ),
    ]
}

fn require_job(table: &JobTable, request: &Json) -> Result<Arc<Job>, Json> {
    let name = request
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| err("name: expected a string"))?;
    table
        .get(name)
        .ok_or_else(|| err(format!("no such job {name:?}")))
}

/// Handle one request; `None` means the response was already streamed
/// (the `watch` command writes its own lines).
fn dispatch(
    request: &Json,
    table: &JobTable,
    shutdown: &AtomicBool,
    out: &mut impl Write,
) -> std::io::Result<Option<Json>> {
    let cmd = match request.get("cmd").and_then(Json::as_str) {
        Some(cmd) => cmd,
        None => return Ok(Some(err("cmd: expected a string"))),
    };
    let response = match cmd {
        "ping" => ok(vec![
            ("service".into(), Json::str("chronosd")),
            ("protocol".into(), Json::u64(PROTOCOL_VERSION)),
            ("jobs".into(), Json::usize(table.list().len())),
        ]),
        "submit" => {
            let name = request.get("name").and_then(Json::as_str);
            let spec = request.get("spec");
            match (name, spec) {
                (Some(name), Some(spec)) => {
                    match JobSpec::from_json(spec).and_then(|spec| table.submit(name, spec)) {
                        Ok(job) => ok(vec![
                            ("job".into(), Json::str(job.name.clone())),
                            ("kind".into(), Json::str(job.kind)),
                            ("state".into(), Json::str(job.snapshot().state.as_str())),
                        ]),
                        Err(message) => err(message),
                    }
                }
                _ => err("submit needs \"name\" (string) and \"spec\" (object)"),
            }
        }
        "jobs" => {
            let rows = table
                .list()
                .iter()
                .map(|job| {
                    let snap = job.snapshot();
                    Json::Obj(snapshot_fields(job, &snap))
                })
                .collect();
            ok(vec![("jobs".into(), Json::Arr(rows))])
        }
        "status" => match require_job(table, request) {
            Ok(job) => ok(snapshot_fields(&job, &job.snapshot())),
            Err(response) => response,
        },
        "report" => match require_job(table, request) {
            Ok(job) => match job.kind {
                "e16-sweep" => match job.sweep_result() {
                    Some(result) => ok(vec![("sweep".into(), sweep_json(&result))]),
                    None => err(format!("sweep job {:?} is not done yet", job.name)),
                },
                _ => match job.report(PARK_TIMEOUT) {
                    Ok(report) => ok(vec![("report".into(), report_json(&report))]),
                    Err(message) => err(message),
                },
            },
            Err(response) => response,
        },
        "watch" => match require_job(table, request) {
            Ok(job) => {
                let count = request
                    .get("count")
                    .and_then(Json::as_u64)
                    .unwrap_or(u64::MAX);
                let mut cursor: Option<(u64, crate::jobs::JobState)> = None;
                let mut emitted = 0u64;
                loop {
                    let snap = match cursor {
                        None => job.snapshot(), // emit the current snapshot first
                        Some((slices, state)) => {
                            match job.wait_change(slices, state, PARK_TIMEOUT) {
                                Some(snap) => snap,
                                None => break,
                            }
                        }
                    };
                    let mut fields = vec![("event".to_string(), Json::str("snapshot"))];
                    fields.extend(snapshot_fields(&job, &snap));
                    writeln!(out, "{}", ok(fields).render())?;
                    out.flush()?;
                    emitted += 1;
                    // A paused job steps no further without operator
                    // action, so the stream ends there too.
                    if snap.state.is_terminal()
                        || snap.state == crate::jobs::JobState::Paused
                        || emitted >= count
                    {
                        break;
                    }
                    cursor = Some((snap.slices, snap.state));
                }
                let mut end = vec![("event".to_string(), Json::str("end"))];
                end.extend(snapshot_fields(&job, &job.snapshot()));
                return Ok(Some(ok(end)));
            }
            Err(response) => response,
        },
        "checkpoint" => match require_job(table, request) {
            Ok(job) => match request.get("path").and_then(Json::as_str) {
                Some(path) => match job.checkpoint(PARK_TIMEOUT) {
                    Ok(bytes) => match std::fs::write(path, &bytes) {
                        Ok(()) => ok(vec![
                            ("job".into(), Json::str(job.name.clone())),
                            ("path".into(), Json::str(path)),
                            ("bytes".into(), Json::usize(bytes.len())),
                        ]),
                        Err(io) => err(format!("writing {path:?}: {io}")),
                    },
                    Err(message) => err(message),
                },
                None => err("checkpoint needs \"path\" (string)"),
            },
            Err(response) => response,
        },
        "resume" => {
            let name = request.get("name").and_then(Json::as_str);
            let path = request.get("path").and_then(Json::as_str);
            match (name, path) {
                (Some(name), Some(path)) => match std::fs::read(path) {
                    Ok(bytes) => {
                        let spec = JobSpec::Resume {
                            bytes,
                            threads: request
                                .get("threads")
                                .and_then(Json::as_usize)
                                .unwrap_or(1)
                                .max(1),
                            slice_s: request
                                .get("slice_s")
                                .and_then(Json::as_u64)
                                .unwrap_or(crate::jobs::DEFAULT_SLICE_S)
                                .max(1),
                            pause_at_s: request.get("pause_at_s").and_then(Json::as_u64),
                        };
                        match table.submit(name, spec) {
                            Ok(job) => ok(vec![
                                ("job".into(), Json::str(job.name.clone())),
                                ("kind".into(), Json::str(job.kind)),
                                ("state".into(), Json::str(job.snapshot().state.as_str())),
                            ]),
                            Err(message) => err(message),
                        }
                    }
                    Err(io) => err(format!("reading {path:?}: {io}")),
                },
                _ => err("resume needs \"name\" and \"path\" (strings)"),
            }
        }
        "unpause" => match require_job(table, request) {
            Ok(job) => {
                job.request_unpause();
                ok(vec![("job".into(), Json::str(job.name.clone()))])
            }
            Err(response) => response,
        },
        "stop" => match require_job(table, request) {
            Ok(job) => {
                job.request_stop();
                ok(vec![("job".into(), Json::str(job.name.clone()))])
            }
            Err(response) => response,
        },
        "shutdown" => {
            shutdown.store(true, Ordering::SeqCst);
            ok(vec![("service".into(), Json::str("chronosd"))])
        }
        other => err(format!("unknown cmd {other:?}")),
    };
    Ok(Some(response))
}

fn handle_connection(stream: UnixStream, table: &JobTable, shutdown: &AtomicBool, path: &Path) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    // Bounded reads so an idle connection cannot pin the handler past a
    // shutdown: on each timeout the loop re-checks the flag. Partial
    // lines survive timeouts because read_until keeps consumed bytes in
    // the buffer.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(300)));
    let mut reader = BufReader::new(stream);
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let mut eof = false;
        match reader.read_until(b'\n', &mut buf) {
            Ok(0) => break,
            Ok(_) if buf.ends_with(b"\n") => {}
            Ok(_) => eof = true, // final unterminated line
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(_) => break,
        }
        let line = String::from_utf8_lossy(&buf).into_owned();
        buf.clear();
        if line.trim().is_empty() {
            if eof {
                break;
            }
            continue;
        }
        let response = match Json::parse(line.trim_end_matches(['\n', '\r'])) {
            Ok(request) => match dispatch(&request, table, shutdown, &mut writer) {
                Ok(Some(response)) => response,
                Ok(None) => continue,
                Err(_) => break, // client went away mid-stream
            },
            Err(parse) => err(format!("bad request: {parse}")),
        };
        if writeln!(writer, "{}", response.render()).is_err() || writer.flush().is_err() {
            break;
        }
        if shutdown.load(Ordering::SeqCst) {
            // The accept loop may be blocked in accept(2) with no client
            // in flight; a throwaway connection wakes it so it can see
            // the flag and exit.
            let _ = UnixStream::connect(path);
            break;
        }
    }
}
