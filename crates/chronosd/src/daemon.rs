//! The Unix-domain-socket server: accepts connections, speaks the
//! newline-delimited JSON protocol, and drives the [`crate::jobs`] table.
//!
//! One request per line, one (or, for `watch`, several) response lines
//! back; a connection handles any number of requests until the client
//! closes it. Every response carries `"ok"`; failures carry `"error"`
//! instead of the payload. The full protocol with annotated examples
//! lives in `docs/OPERATIONS.md`.
//!
//! Every daemon carries a [`DaemonObs`]: the `metrics` command renders
//! its registry as Prometheus text exposition, every dispatched command
//! bumps `chronosd_commands_total{cmd=…}`, and I/O failures that this
//! module used to swallow silently are now logged through the structured
//! logger (level from `CHRONOSD_LOG`).

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::jobs::{Job, JobSnapshot, JobSpec, JobState, JobTable};
use crate::json::Json;
use crate::metrics::DaemonObs;
use crate::render::{progress_json, report_json, sweep_json};

/// Protocol version reported by `ping` (bump on breaking wire changes).
pub const PROTOCOL_VERSION: u64 = 1;

/// How long observers wait for a stepping worker to park its fleet
/// before giving up (`status`/`report`/`checkpoint` on a busy job).
const PARK_TIMEOUT: Duration = Duration::from_secs(120);

/// Commands the daemon understands; anything else is dispatched to the
/// error arm and counted under `chronosd_commands_total{cmd="unknown"}`
/// so client typos cannot grow the label set.
const COMMANDS: [&str; 12] = [
    "ping",
    "submit",
    "jobs",
    "status",
    "report",
    "watch",
    "checkpoint",
    "resume",
    "unpause",
    "stop",
    "metrics",
    "shutdown",
];

/// The daemon: a bound socket plus the job table it serves.
#[derive(Debug)]
pub struct Daemon {
    listener: UnixListener,
    path: PathBuf,
    table: Arc<JobTable>,
    shutdown: Arc<AtomicBool>,
    obs: Arc<DaemonObs>,
    started: Instant,
}

/// Everything a connection handler needs, bundled so handler threads
/// share one `Arc` instead of four.
struct ServerCtx {
    table: Arc<JobTable>,
    shutdown: Arc<AtomicBool>,
    obs: Arc<DaemonObs>,
    started: Instant,
    path: PathBuf,
}

impl Daemon {
    /// Bind the control socket, replacing a stale socket file if one is
    /// left over from a dead daemon. Observability defaults to
    /// [`DaemonObs::from_env`]: a stderr logger at the `CHRONOSD_LOG`
    /// level and a fresh metric registry.
    pub fn bind(path: impl AsRef<Path>) -> std::io::Result<Daemon> {
        Daemon::bind_with(path, DaemonObs::from_env())
    }

    /// [`Daemon::bind`] with explicit observability state (tests and
    /// embedders can pass a quiet or captured logger).
    pub fn bind_with(path: impl AsRef<Path>, obs: DaemonObs) -> std::io::Result<Daemon> {
        let path = path.as_ref().to_path_buf();
        // A leftover socket file makes bind fail with AddrInUse even when
        // nothing is listening; remove it and let bind decide.
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        let obs = Arc::new(obs);
        obs.logger.info(
            "chronosd::daemon",
            "listening",
            &[("socket", &path.display())],
        );
        Ok(Daemon {
            listener,
            path,
            table: Arc::new(JobTable::with_observability(Arc::clone(&obs))),
            shutdown: Arc::new(AtomicBool::new(false)),
            obs,
            started: Instant::now(),
        })
    }

    /// The socket path this daemon is bound to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The job table (shared with connection handlers; exposed for
    /// in-process embedding and tests).
    pub fn table(&self) -> Arc<JobTable> {
        Arc::clone(&self.table)
    }

    /// The daemon's observability state (registry, counters, logger).
    pub fn observability(&self) -> Arc<DaemonObs> {
        Arc::clone(&self.obs)
    }

    /// Serve until a `shutdown` request arrives. Each connection gets its
    /// own thread; the accept loop re-checks the shutdown flag after
    /// every accepted connection (the `shutdown` handler's own connection
    /// is what unblocks the final accept).
    pub fn serve(self) -> std::io::Result<()> {
        let ctx = Arc::new(ServerCtx {
            table: Arc::clone(&self.table),
            shutdown: Arc::clone(&self.shutdown),
            obs: Arc::clone(&self.obs),
            started: self.started,
            path: self.path.clone(),
        });
        let mut handlers = Vec::new();
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = stream?;
            self.obs.connections.inc();
            let ctx = Arc::clone(&ctx);
            handlers.push(std::thread::spawn(move || {
                handle_connection(stream, &ctx);
            }));
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
        }
        // Stop jobs first: that turns every job terminal, which ends any
        // in-flight `watch` stream, so handler threads (which poll the
        // shutdown flag between reads) can drain and exit.
        self.table.stop_all_and_join();
        for handler in handlers {
            if handler.join().is_err() {
                self.obs
                    .logger
                    .error("chronosd::daemon", "connection handler panicked", &[]);
            }
        }
        let _ = std::fs::remove_file(&self.path);
        self.obs.logger.info("chronosd::daemon", "shut down", &[]);
        Ok(())
    }
}

/// Holds a gauge incremented for this guard's lifetime (the live
/// `watch`-subscriber count). A guard — not paired add calls — because
/// the stream loop exits through `?` on client disconnect.
struct GaugeGuard(Option<Arc<obs::Gauge>>);

impl GaugeGuard {
    fn hold(gauge: Option<Arc<obs::Gauge>>) -> GaugeGuard {
        if let Some(g) = &gauge {
            g.add(1.0);
        }
        GaugeGuard(gauge)
    }
}

impl Drop for GaugeGuard {
    fn drop(&mut self) {
        if let Some(g) = &self.0 {
            g.add(-1.0);
        }
    }
}

fn ok(fields: Vec<(String, Json)>) -> Json {
    let mut all = vec![("ok".to_string(), Json::Bool(true))];
    all.extend(fields);
    Json::Obj(all)
}

fn err(message: impl Into<String>) -> Json {
    Json::Obj(vec![
        ("ok".to_string(), Json::Bool(false)),
        ("error".to_string(), Json::Str(message.into())),
    ])
}

fn snapshot_fields(job: &Job, snap: &JobSnapshot) -> Vec<(String, Json)> {
    vec![
        ("job".into(), Json::str(job.name.clone())),
        ("kind".into(), Json::str(job.kind)),
        ("state".into(), Json::str(snap.state.as_str())),
        ("slices".into(), Json::u64(snap.slices)),
        (
            "progress".into(),
            snap.progress
                .as_ref()
                .map(progress_json)
                .unwrap_or(Json::Null),
        ),
        (
            "error".into(),
            snap.error
                .as_ref()
                .map(|e| Json::str(e.clone()))
                .unwrap_or(Json::Null),
        ),
    ]
}

fn require_job(table: &JobTable, request: &Json) -> Result<Arc<Job>, Json> {
    let name = request
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| err("name: expected a string"))?;
    table
        .get(name)
        .ok_or_else(|| err(format!("no such job {name:?}")))
}

/// The `ping` payload: identity, uptime, and job counts by state.
fn ping_fields(ctx: &ServerCtx) -> Vec<(String, Json)> {
    let jobs = ctx.table.list();
    let mut by_state = [0usize; 6];
    for job in &jobs {
        let idx = match job.snapshot().state {
            JobState::Queued => 0,
            JobState::Running => 1,
            JobState::Paused => 2,
            JobState::Done => 3,
            JobState::Stopped => 4,
            JobState::Failed => 5,
        };
        by_state[idx] += 1;
    }
    let states = ["queued", "running", "paused", "done", "stopped", "failed"];
    vec![
        ("service".into(), Json::str("chronosd")),
        ("version".into(), Json::str(env!("CARGO_PKG_VERSION"))),
        ("protocol".into(), Json::u64(PROTOCOL_VERSION)),
        (
            "uptime_s".into(),
            Json::u64(ctx.started.elapsed().as_secs()),
        ),
        ("jobs".into(), Json::usize(jobs.len())),
        (
            "job_states".into(),
            Json::Obj(
                states
                    .iter()
                    .zip(by_state)
                    .map(|(state, n)| (state.to_string(), Json::usize(n)))
                    .collect(),
            ),
        ),
    ]
}

/// Handle one request; `None` means the response was already streamed
/// (the `watch` command writes its own lines).
fn dispatch(
    request: &Json,
    ctx: &ServerCtx,
    out: &mut impl Write,
) -> std::io::Result<Option<Json>> {
    let table: &JobTable = &ctx.table;
    let shutdown: &AtomicBool = &ctx.shutdown;
    let cmd = match request.get("cmd").and_then(Json::as_str) {
        Some(cmd) => cmd,
        None => {
            ctx.obs.protocol_errors.inc();
            ctx.obs
                .logger
                .warn("chronosd::daemon", "request without cmd", &[]);
            return Ok(Some(err("cmd: expected a string")));
        }
    };
    // Unrecognized commands share one fixed label so arbitrary client
    // input cannot grow the registry.
    ctx.obs.count_command(if COMMANDS.contains(&cmd) {
        cmd
    } else {
        "unknown"
    });
    let response = match cmd {
        "ping" => ok(ping_fields(ctx)),
        "metrics" => ok(vec![("metrics".into(), Json::str(ctx.obs.render()))]),
        "submit" => {
            let name = request.get("name").and_then(Json::as_str);
            let spec = request.get("spec");
            match (name, spec) {
                (Some(name), Some(spec)) => {
                    match JobSpec::from_json(spec).and_then(|spec| table.submit(name, spec)) {
                        Ok(job) => ok(vec![
                            ("job".into(), Json::str(job.name.clone())),
                            ("kind".into(), Json::str(job.kind)),
                            ("state".into(), Json::str(job.snapshot().state.as_str())),
                        ]),
                        Err(message) => err(message),
                    }
                }
                _ => err("submit needs \"name\" (string) and \"spec\" (object)"),
            }
        }
        "jobs" => {
            let rows = table
                .list()
                .iter()
                .map(|job| {
                    let snap = job.snapshot();
                    Json::Obj(snapshot_fields(job, &snap))
                })
                .collect();
            ok(vec![("jobs".into(), Json::Arr(rows))])
        }
        "status" => match require_job(table, request) {
            Ok(job) => ok(snapshot_fields(&job, &job.snapshot())),
            Err(response) => response,
        },
        "report" => match require_job(table, request) {
            Ok(job) => match job.kind {
                "e16-sweep" => match job.sweep_result() {
                    Some(result) => ok(vec![("sweep".into(), sweep_json(&result))]),
                    None => err(format!("sweep job {:?} is not done yet", job.name)),
                },
                _ => match job.report(PARK_TIMEOUT) {
                    Ok(report) => ok(vec![("report".into(), report_json(&report))]),
                    Err(message) => err(message),
                },
            },
            Err(response) => response,
        },
        "watch" => match require_job(table, request) {
            Ok(job) => {
                let count = request
                    .get("count")
                    .and_then(Json::as_u64)
                    .unwrap_or(u64::MAX);
                let _subscribed = GaugeGuard::hold(job.watchers_gauge());
                let mut cursor: Option<(u64, crate::jobs::JobState)> = None;
                let mut emitted = 0u64;
                loop {
                    let snap = match cursor {
                        None => job.snapshot(), // emit the current snapshot first
                        Some((slices, state)) => {
                            match job.wait_change(slices, state, PARK_TIMEOUT) {
                                Some(snap) => snap,
                                None => break,
                            }
                        }
                    };
                    let mut fields = vec![("event".to_string(), Json::str("snapshot"))];
                    fields.extend(snapshot_fields(&job, &snap));
                    writeln!(out, "{}", ok(fields).render())?;
                    out.flush()?;
                    emitted += 1;
                    // A paused job steps no further without operator
                    // action, so the stream ends there too.
                    if snap.state.is_terminal()
                        || snap.state == crate::jobs::JobState::Paused
                        || emitted >= count
                    {
                        break;
                    }
                    cursor = Some((snap.slices, snap.state));
                }
                let mut end = vec![("event".to_string(), Json::str("end"))];
                end.extend(snapshot_fields(&job, &job.snapshot()));
                return Ok(Some(ok(end)));
            }
            Err(response) => response,
        },
        "checkpoint" => match require_job(table, request) {
            Ok(job) => match request.get("path").and_then(Json::as_str) {
                Some(path) => match job.checkpoint(PARK_TIMEOUT) {
                    Ok(bytes) => match std::fs::write(path, &bytes) {
                        Ok(()) => ok(vec![
                            ("job".into(), Json::str(job.name.clone())),
                            ("path".into(), Json::str(path)),
                            ("bytes".into(), Json::usize(bytes.len())),
                        ]),
                        Err(io) => err(format!("writing {path:?}: {io}")),
                    },
                    Err(message) => err(message),
                },
                None => err("checkpoint needs \"path\" (string)"),
            },
            Err(response) => response,
        },
        "resume" => {
            let name = request.get("name").and_then(Json::as_str);
            let path = request.get("path").and_then(Json::as_str);
            match (name, path) {
                (Some(name), Some(path)) => match std::fs::read(path) {
                    Ok(bytes) => {
                        let spec = JobSpec::Resume {
                            bytes,
                            threads: request
                                .get("threads")
                                .and_then(Json::as_usize)
                                .unwrap_or(1)
                                .max(1),
                            slice_s: request
                                .get("slice_s")
                                .and_then(Json::as_u64)
                                .unwrap_or(crate::jobs::DEFAULT_SLICE_S)
                                .max(1),
                            pause_at_s: request.get("pause_at_s").and_then(Json::as_u64),
                        };
                        match table.submit(name, spec) {
                            Ok(job) => ok(vec![
                                ("job".into(), Json::str(job.name.clone())),
                                ("kind".into(), Json::str(job.kind)),
                                ("state".into(), Json::str(job.snapshot().state.as_str())),
                            ]),
                            Err(message) => err(message),
                        }
                    }
                    Err(io) => err(format!("reading {path:?}: {io}")),
                },
                _ => err("resume needs \"name\" and \"path\" (strings)"),
            }
        }
        "unpause" => match require_job(table, request) {
            Ok(job) => {
                job.request_unpause();
                ok(vec![("job".into(), Json::str(job.name.clone()))])
            }
            Err(response) => response,
        },
        "stop" => match require_job(table, request) {
            Ok(job) => {
                job.request_stop();
                ok(vec![("job".into(), Json::str(job.name.clone()))])
            }
            Err(response) => response,
        },
        "shutdown" => {
            ctx.obs
                .logger
                .info("chronosd::daemon", "shutdown requested", &[]);
            shutdown.store(true, Ordering::SeqCst);
            ok(vec![("service".into(), Json::str("chronosd"))])
        }
        other => {
            ctx.obs.protocol_errors.inc();
            ctx.obs
                .logger
                .warn("chronosd::daemon", "unknown command", &[("cmd", &other)]);
            err(format!("unknown cmd {other:?}"))
        }
    };
    Ok(Some(response))
}

fn handle_connection(stream: UnixStream, ctx: &ServerCtx) {
    let shutdown: &AtomicBool = &ctx.shutdown;
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(io) => {
            ctx.obs.logger.error(
                "chronosd::daemon",
                "cannot clone connection stream",
                &[("error", &io)],
            );
            return;
        }
    };
    // Bounded reads so an idle connection cannot pin the handler past a
    // shutdown: on each timeout the loop re-checks the flag. Partial
    // lines survive timeouts because read_until keeps consumed bytes in
    // the buffer.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(300)));
    let mut reader = BufReader::new(stream);
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let mut eof = false;
        match reader.read_until(b'\n', &mut buf) {
            Ok(0) => break,
            Ok(_) if buf.ends_with(b"\n") => {}
            Ok(_) => eof = true, // final unterminated line
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(io) => {
                ctx.obs.logger.warn(
                    "chronosd::daemon",
                    "connection read failed",
                    &[("error", &io)],
                );
                break;
            }
        }
        let line = String::from_utf8_lossy(&buf).into_owned();
        buf.clear();
        if line.trim().is_empty() {
            if eof {
                break;
            }
            continue;
        }
        let response = match Json::parse(line.trim_end_matches(['\n', '\r'])) {
            Ok(request) => match dispatch(&request, ctx, &mut writer) {
                Ok(Some(response)) => response,
                Ok(None) => continue,
                Err(io) => {
                    // Client went away mid-stream.
                    ctx.obs.logger.debug(
                        "chronosd::daemon",
                        "watch stream dropped",
                        &[("error", &io)],
                    );
                    break;
                }
            },
            Err(parse) => {
                ctx.obs.protocol_errors.inc();
                ctx.obs.logger.warn(
                    "chronosd::daemon",
                    "unparseable request",
                    &[("error", &parse)],
                );
                err(format!("bad request: {parse}"))
            }
        };
        if writeln!(writer, "{}", response.render()).is_err() || writer.flush().is_err() {
            ctx.obs.logger.debug(
                "chronosd::daemon",
                "response write failed; closing connection",
                &[],
            );
            break;
        }
        if shutdown.load(Ordering::SeqCst) {
            // The accept loop may be blocked in accept(2) with no client
            // in flight; a throwaway connection wakes it so it can see
            // the flag and exit.
            let _ = UnixStream::connect(&ctx.path);
            break;
        }
    }
}
