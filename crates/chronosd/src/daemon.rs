//! The Unix-domain-socket server: accepts connections, speaks the
//! newline-delimited JSON protocol, and drives the [`crate::jobs`] table.
//!
//! One request per line, one (or, for `watch`, several) response lines
//! back; a connection handles any number of requests until the client
//! closes it. Every response carries `"ok"`; failures carry `"error"`
//! instead of the payload. The full protocol with annotated examples
//! lives in `docs/OPERATIONS.md`.
//!
//! Every daemon carries a [`DaemonObs`]: the `metrics` command renders
//! its registry as Prometheus text exposition, every dispatched command
//! bumps `chronosd_commands_total{cmd=…}`, and I/O failures that this
//! module used to swallow silently are now logged through the structured
//! logger (level from `CHRONOSD_LOG`).

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fleet::engine::Fleet;

use crate::jobs::{
    default_workers, Job, JobSnapshot, JobSpec, JobState, JobTable, Params, SweepOutcome,
};
use crate::json::Json;
use crate::metrics::DaemonObs;
use crate::render::{e18_sweep_json, progress_json, report_json, sweep_json};
use crate::state::{self, ManifestEntry, StateDir};

/// Protocol version reported by `ping` (bump on breaking wire changes).
pub const PROTOCOL_VERSION: u64 = 1;

/// How long observers wait for a stepping worker to park its fleet
/// before giving up (`status`/`report`/`checkpoint` on a busy job).
const PARK_TIMEOUT: Duration = Duration::from_secs(120);

/// Commands the daemon understands; anything else is dispatched to the
/// error arm and counted under `chronosd_commands_total{cmd="unknown"}`
/// so client typos cannot grow the label set.
const COMMANDS: [&str; 14] = [
    "ping",
    "submit",
    "jobs",
    "status",
    "report",
    "watch",
    "checkpoint",
    "resume",
    "unpause",
    "stop",
    "forget",
    "sync",
    "metrics",
    "shutdown",
];

/// Boot-time configuration beyond the socket path: the worker-pool size
/// and the durability layer.
#[derive(Debug, Clone, Default)]
pub struct DaemonConfig {
    /// Durability root (`--state-dir`); `None` runs the daemon purely in
    /// memory, exactly as before this layer existed.
    pub state_dir: Option<PathBuf>,
    /// Interval between automatic state snapshots (`--checkpoint-every-s`).
    /// `None` with a state dir means snapshots happen only on `sync` and
    /// on clean shutdown.
    pub checkpoint_every: Option<Duration>,
    /// Worker-pool size (`--workers`); default `cores - 1`, min 1.
    pub workers: Option<usize>,
    /// Override the thread count of every job restored from the state
    /// dir (`--resume-threads`) — byte-identical results regardless, per
    /// the engine's thread-invariance contract.
    pub resume_threads: Option<usize>,
}

/// The daemon: a bound socket plus the job table it serves.
#[derive(Debug)]
pub struct Daemon {
    listener: UnixListener,
    path: PathBuf,
    table: Arc<JobTable>,
    shutdown: Arc<AtomicBool>,
    obs: Arc<DaemonObs>,
    started: Instant,
    state: Option<StateDir>,
    checkpoint_every: Option<Duration>,
}

/// Everything a connection handler needs, bundled so handler threads
/// share one `Arc` instead of four.
struct ServerCtx {
    table: Arc<JobTable>,
    shutdown: Arc<AtomicBool>,
    obs: Arc<DaemonObs>,
    started: Instant,
    path: PathBuf,
    state: Option<StateDir>,
}

impl Daemon {
    /// Bind the control socket, replacing a stale socket file if one is
    /// left over from a dead daemon. Observability defaults to
    /// [`DaemonObs::from_env`]: a stderr logger at the `CHRONOSD_LOG`
    /// level and a fresh metric registry.
    pub fn bind(path: impl AsRef<Path>) -> std::io::Result<Daemon> {
        Daemon::bind_with(path, DaemonObs::from_env())
    }

    /// [`Daemon::bind`] with explicit observability state (tests and
    /// embedders can pass a quiet or captured logger).
    pub fn bind_with(path: impl AsRef<Path>, obs: DaemonObs) -> std::io::Result<Daemon> {
        Daemon::bind_with_config(path, obs, DaemonConfig::default())
    }

    /// The fully explicit constructor: bind the socket, build the worker
    /// pool, and — when `config.state_dir` is set — open the durability
    /// layer and resume every job recorded in its manifest (corrupt
    /// files are quarantined, never fatal).
    pub fn bind_with_config(
        path: impl AsRef<Path>,
        obs: DaemonObs,
        config: DaemonConfig,
    ) -> std::io::Result<Daemon> {
        let path = path.as_ref().to_path_buf();
        // A leftover socket file makes bind fail with AddrInUse even when
        // nothing is listening; remove it and let bind decide.
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        let obs = Arc::new(obs);
        obs.logger.info(
            "chronosd::daemon",
            "listening",
            &[("socket", &path.display())],
        );
        let table = Arc::new(JobTable::with_config(
            config.workers.unwrap_or_else(default_workers),
            Some(Arc::clone(&obs)),
        ));
        let state = match &config.state_dir {
            Some(root) => {
                let dir = StateDir::open(root)?;
                boot_from_state(&table, &dir, &obs, config.resume_threads);
                Some(dir)
            }
            None => None,
        };
        Ok(Daemon {
            listener,
            path,
            table,
            shutdown: Arc::new(AtomicBool::new(false)),
            obs,
            started: Instant::now(),
            state,
            checkpoint_every: config.checkpoint_every,
        })
    }

    /// The socket path this daemon is bound to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The job table (shared with connection handlers; exposed for
    /// in-process embedding and tests).
    pub fn table(&self) -> Arc<JobTable> {
        Arc::clone(&self.table)
    }

    /// The daemon's observability state (registry, counters, logger).
    pub fn observability(&self) -> Arc<DaemonObs> {
        Arc::clone(&self.obs)
    }

    /// Serve until a `shutdown` request arrives. Each connection gets its
    /// own thread; the accept loop re-checks the shutdown flag after
    /// every accepted connection (the `shutdown` handler's own connection
    /// is what unblocks the final accept). With a state dir, a ticker
    /// thread writes periodic snapshots, and a final snapshot lands on
    /// shutdown — with every daemon-stopped job recorded in its
    /// *pre-shutdown* state, so the next boot resumes it automatically.
    pub fn serve(self) -> std::io::Result<()> {
        let ctx = Arc::new(ServerCtx {
            table: Arc::clone(&self.table),
            shutdown: Arc::clone(&self.shutdown),
            obs: Arc::clone(&self.obs),
            started: self.started,
            path: self.path.clone(),
            state: self.state.clone(),
        });
        let ticker = match (&self.state, self.checkpoint_every) {
            (Some(dir), Some(every)) => {
                let dir = dir.clone();
                let table = Arc::clone(&self.table);
                let obs = Arc::clone(&self.obs);
                let shutdown = Arc::clone(&self.shutdown);
                Some(std::thread::spawn(move || {
                    let mut last = Instant::now();
                    // 100 ms polls so a shutdown never waits out a long
                    // checkpoint interval.
                    while !shutdown.load(Ordering::SeqCst) {
                        std::thread::sleep(Duration::from_millis(100));
                        if last.elapsed() >= every {
                            write_snapshot(&table, &dir, &obs, &BTreeMap::new());
                            last = Instant::now();
                        }
                    }
                }))
            }
            _ => None,
        };
        let mut handlers = Vec::new();
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = stream?;
            self.obs.connections.inc();
            let ctx = Arc::clone(&ctx);
            handlers.push(std::thread::spawn(move || {
                handle_connection(stream, &ctx);
            }));
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
        }
        if let Some(ticker) = ticker {
            let _ = ticker.join();
        }
        // Record each job's pre-shutdown state *before* the pool drain
        // turns running jobs into stopped ones: the final snapshot writes
        // these states, so jobs the daemon itself interrupted reboot as
        // running/paused, while operator-stopped jobs stay stopped.
        let resume_states: BTreeMap<String, JobState> = self
            .table
            .list()
            .iter()
            .map(|job| (job.name.clone(), job.snapshot().state))
            .collect();
        // Stop jobs first: that turns every job terminal, which ends any
        // in-flight `watch` stream, so handler threads (which poll the
        // shutdown flag between reads) can drain and exit.
        self.table.stop_all_and_join();
        if let Some(dir) = &self.state {
            write_snapshot(&self.table, dir, &self.obs, &resume_states);
        }
        for handler in handlers {
            if handler.join().is_err() {
                self.obs
                    .logger
                    .error("chronosd::daemon", "connection handler panicked", &[]);
            }
        }
        let _ = std::fs::remove_file(&self.path);
        self.obs.logger.info("chronosd::daemon", "shut down", &[]);
        Ok(())
    }
}

/// Write one state snapshot, logging (never propagating) failures.
fn write_snapshot(
    table: &JobTable,
    dir: &StateDir,
    obs: &DaemonObs,
    overrides: &BTreeMap<String, JobState>,
) -> bool {
    match state::snapshot(table, dir, overrides) {
        Ok(jobs) => {
            obs.checkpoints_written.inc();
            obs.logger.debug(
                "chronosd::daemon",
                "state snapshot written",
                &[("jobs", &jobs)],
            );
            true
        }
        Err(io) => {
            obs.logger.error(
                "chronosd::daemon",
                "state snapshot failed",
                &[("error", &io)],
            );
            false
        }
    }
}

/// Resume every job recorded in the state-dir manifest. Corruption at
/// any layer — the manifest itself, a job file's checksum, the engine's
/// structural revalidation — quarantines the offending file and adopts
/// the job as `failed` with the decode error; nothing here aborts boot.
fn boot_from_state(
    table: &JobTable,
    dir: &StateDir,
    obs: &DaemonObs,
    resume_threads: Option<usize>,
) {
    let entries = match dir.read_manifest() {
        Ok(None) => return, // first boot: nothing to resume
        Ok(Some(Ok(entries))) => entries,
        Ok(Some(Err(decode))) => {
            obs.quarantines.inc();
            let quarantined = dir.quarantine("manifest.chrm").is_ok();
            obs.logger.error(
                "chronosd::daemon",
                "manifest corrupt; quarantined, booting empty",
                &[("error", &decode), ("quarantined", &quarantined)],
            );
            return;
        }
        Err(io) => {
            obs.logger.error(
                "chronosd::daemon",
                "manifest unreadable; booting empty",
                &[("error", &io)],
            );
            return;
        }
    };
    for entry in entries {
        let mut params = entry.params;
        if let Some(threads) = resume_threads {
            params.threads = threads.max(1);
        }
        if let Err(message) = adopt_entry(table, dir, obs, &entry, params) {
            obs.logger.error(
                "chronosd::daemon",
                "job not restored",
                &[("job", &entry.name), ("error", &message)],
            );
        }
    }
}

/// Restore one manifest entry into the table.
fn adopt_entry(
    table: &JobTable,
    dir: &StateDir,
    obs: &DaemonObs,
    entry: &ManifestEntry,
    params: Params,
) -> Result<(), String> {
    // Quarantine `file` and register the job as failed with `why`.
    let quarantine = |file: &str, why: String| -> Result<(), String> {
        obs.quarantines.inc();
        let moved = dir.quarantine(file).is_ok();
        obs.logger.warn(
            "chronosd::daemon",
            "state file quarantined",
            &[("job", &entry.name), ("file", &file), ("moved", &moved)],
        );
        table
            .adopt_failed(
                &entry.name,
                &entry.kind,
                entry.spec.clone(),
                format!("state file quarantined: {why}"),
            )
            .map(|_| ())
    };
    if entry.state == JobState::Failed {
        let error = entry
            .error
            .clone()
            .unwrap_or_else(|| "failed before the last shutdown".to_string());
        return table
            .adopt_failed(&entry.name, &entry.kind, entry.spec.clone(), error)
            .map(|_| ());
    }
    let Some(file) = &entry.file else {
        // No simulation bytes: a still-queued job is resubmitted from its
        // spec; a terminal one has nothing left to serve.
        if entry.state.is_terminal() {
            return table
                .adopt_failed(
                    &entry.name,
                    &entry.kind,
                    entry.spec.clone(),
                    "no state bytes survived the last shutdown".to_string(),
                )
                .map(|_| ());
        }
        let spec = JobSpec::from_json(&entry.spec)?;
        return table.submit(&entry.name, spec).map(|_| ());
    };
    let bytes = match dir.read_job_file(file) {
        Ok(bytes) => bytes,
        Err(io) => {
            return table
                .adopt_failed(
                    &entry.name,
                    &entry.kind,
                    entry.spec.clone(),
                    format!("state file unreadable: {io}"),
                )
                .map(|_| ());
        }
    };
    if bytes.starts_with(&crate::sweep::MAGIC) {
        match crate::sweep::decode(&bytes) {
            Ok(cursor) => match table.adopt_sweep(
                &entry.name,
                &entry.kind,
                entry.spec.clone(),
                params,
                cursor,
                entry.state,
                entry.slices,
            ) {
                Ok(_) => {
                    obs.checkpoints_restored.inc();
                    Ok(())
                }
                // The cursor decoded but a row inside it failed the
                // engine's revalidation: same quarantine treatment.
                Err(message) => quarantine(file, message),
            },
            Err(decode) => quarantine(file, decode.to_string()),
        }
    } else {
        match Fleet::restore(&bytes) {
            Ok(fleet) => {
                table.adopt_fleet(
                    &entry.name,
                    &entry.kind,
                    entry.spec.clone(),
                    params,
                    fleet,
                    entry.state,
                    entry.slices,
                )?;
                obs.checkpoints_restored.inc();
                Ok(())
            }
            Err(decode) => quarantine(file, decode.to_string()),
        }
    }
}

/// Holds a gauge incremented for this guard's lifetime (the live
/// `watch`-subscriber count). A guard — not paired add calls — because
/// the stream loop exits through `?` on client disconnect.
struct GaugeGuard(Option<Arc<obs::Gauge>>);

impl GaugeGuard {
    fn hold(gauge: Option<Arc<obs::Gauge>>) -> GaugeGuard {
        if let Some(g) = &gauge {
            g.add(1.0);
        }
        GaugeGuard(gauge)
    }
}

impl Drop for GaugeGuard {
    fn drop(&mut self) {
        if let Some(g) = &self.0 {
            g.add(-1.0);
        }
    }
}

fn ok(fields: Vec<(String, Json)>) -> Json {
    let mut all = vec![("ok".to_string(), Json::Bool(true))];
    all.extend(fields);
    Json::Obj(all)
}

fn err(message: impl Into<String>) -> Json {
    Json::Obj(vec![
        ("ok".to_string(), Json::Bool(false)),
        ("error".to_string(), Json::Str(message.into())),
    ])
}

fn snapshot_fields(job: &Job, snap: &JobSnapshot) -> Vec<(String, Json)> {
    let rows = snap
        .sweep_rows
        .map(|(done, total)| {
            Json::Obj(vec![
                ("done".to_string(), Json::usize(done)),
                ("total".to_string(), Json::usize(total)),
            ])
        })
        .unwrap_or(Json::Null);
    vec![
        ("job".into(), Json::str(job.name.clone())),
        ("kind".into(), Json::str(job.kind)),
        ("state".into(), Json::str(snap.state.as_str())),
        ("slices".into(), Json::u64(snap.slices)),
        ("rows".into(), rows),
        (
            "progress".into(),
            snap.progress
                .as_ref()
                .map(progress_json)
                .unwrap_or(Json::Null),
        ),
        (
            "error".into(),
            snap.error
                .as_ref()
                .map(|e| Json::str(e.clone()))
                .unwrap_or(Json::Null),
        ),
    ]
}

fn require_job(table: &JobTable, request: &Json) -> Result<Arc<Job>, Json> {
    let name = request
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| err("name: expected a string"))?;
    table
        .get(name)
        .ok_or_else(|| err(format!("no such job {name:?}")))
}

/// The `ping` payload: identity, uptime, and job counts by state.
fn ping_fields(ctx: &ServerCtx) -> Vec<(String, Json)> {
    let jobs = ctx.table.list();
    let mut by_state = [0usize; 6];
    for job in &jobs {
        let idx = match job.snapshot().state {
            JobState::Queued => 0,
            JobState::Running => 1,
            JobState::Paused => 2,
            JobState::Done => 3,
            JobState::Stopped => 4,
            JobState::Failed => 5,
        };
        by_state[idx] += 1;
    }
    let states = ["queued", "running", "paused", "done", "stopped", "failed"];
    vec![
        ("service".into(), Json::str("chronosd")),
        ("version".into(), Json::str(env!("CARGO_PKG_VERSION"))),
        ("protocol".into(), Json::u64(PROTOCOL_VERSION)),
        (
            "uptime_s".into(),
            Json::u64(ctx.started.elapsed().as_secs()),
        ),
        ("jobs".into(), Json::usize(jobs.len())),
        (
            "job_states".into(),
            Json::Obj(
                states
                    .iter()
                    .zip(by_state)
                    .map(|(state, n)| (state.to_string(), Json::usize(n)))
                    .collect(),
            ),
        ),
    ]
}

/// Handle one request; `None` means the response was already streamed
/// (the `watch` command writes its own lines).
fn dispatch(
    request: &Json,
    ctx: &ServerCtx,
    out: &mut impl Write,
) -> std::io::Result<Option<Json>> {
    let table: &JobTable = &ctx.table;
    let shutdown: &AtomicBool = &ctx.shutdown;
    let cmd = match request.get("cmd").and_then(Json::as_str) {
        Some(cmd) => cmd,
        None => {
            ctx.obs.protocol_errors.inc();
            ctx.obs
                .logger
                .warn("chronosd::daemon", "request without cmd", &[]);
            return Ok(Some(err("cmd: expected a string")));
        }
    };
    // Unrecognized commands share one fixed label so arbitrary client
    // input cannot grow the registry.
    ctx.obs.count_command(if COMMANDS.contains(&cmd) {
        cmd
    } else {
        "unknown"
    });
    let response = match cmd {
        "ping" => ok(ping_fields(ctx)),
        "metrics" => ok(vec![("metrics".into(), Json::str(ctx.obs.render()))]),
        "submit" => {
            let name = request.get("name").and_then(Json::as_str);
            let spec = request.get("spec");
            match (name, spec) {
                (Some(name), Some(spec)) => {
                    match JobSpec::from_json(spec).and_then(|spec| table.submit(name, spec)) {
                        Ok(job) => ok(vec![
                            ("job".into(), Json::str(job.name.clone())),
                            ("kind".into(), Json::str(job.kind)),
                            ("state".into(), Json::str(job.snapshot().state.as_str())),
                        ]),
                        Err(message) => err(message),
                    }
                }
                _ => err("submit needs \"name\" (string) and \"spec\" (object)"),
            }
        }
        "jobs" => {
            let rows = table
                .list()
                .iter()
                .map(|job| {
                    let snap = job.snapshot();
                    Json::Obj(snapshot_fields(job, &snap))
                })
                .collect();
            ok(vec![("jobs".into(), Json::Arr(rows))])
        }
        "status" => match require_job(table, request) {
            Ok(job) => ok(snapshot_fields(&job, &job.snapshot())),
            Err(response) => response,
        },
        "report" => match require_job(table, request) {
            Ok(job) => {
                if job.is_sweep() {
                    // Completed rows are servable while the sweep runs:
                    // `row` asks for one row's full fleet report.
                    if let Some(row) = request.get("row").and_then(Json::as_usize) {
                        match job.sweep_row_report(row) {
                            Some(report) => ok(vec![
                                ("row".into(), Json::usize(row)),
                                ("report".into(), report_json(&report)),
                            ]),
                            None => err(format!(
                                "sweep job {:?} has not completed row {row} yet",
                                job.name
                            )),
                        }
                    } else {
                        match job.sweep_result() {
                            Some(SweepOutcome::E16(result)) => {
                                ok(vec![("sweep".into(), sweep_json(&result))])
                            }
                            Some(SweepOutcome::E18(result)) => {
                                ok(vec![("sweep".into(), e18_sweep_json(&result))])
                            }
                            None => err(format!("sweep job {:?} is not done yet", job.name)),
                        }
                    }
                } else {
                    match job.report(PARK_TIMEOUT) {
                        Ok(report) => ok(vec![("report".into(), report_json(&report))]),
                        Err(message) => err(message),
                    }
                }
            }
            Err(response) => response,
        },
        "watch" => match require_job(table, request) {
            Ok(job) => {
                let count = request
                    .get("count")
                    .and_then(Json::as_u64)
                    .unwrap_or(u64::MAX);
                let _subscribed = GaugeGuard::hold(job.watchers_gauge());
                let mut cursor: Option<(u64, crate::jobs::JobState)> = None;
                let mut emitted = 0u64;
                loop {
                    let snap = match cursor {
                        None => job.snapshot(), // emit the current snapshot first
                        Some((slices, state)) => {
                            match job.wait_change(slices, state, PARK_TIMEOUT) {
                                Some(snap) => snap,
                                None => break,
                            }
                        }
                    };
                    let mut fields = vec![("event".to_string(), Json::str("snapshot"))];
                    fields.extend(snapshot_fields(&job, &snap));
                    writeln!(out, "{}", ok(fields).render())?;
                    out.flush()?;
                    emitted += 1;
                    // A paused job steps no further without operator
                    // action, so the stream ends there too.
                    if snap.state.is_terminal()
                        || snap.state == crate::jobs::JobState::Paused
                        || emitted >= count
                    {
                        break;
                    }
                    cursor = Some((snap.slices, snap.state));
                }
                let mut end = vec![("event".to_string(), Json::str("end"))];
                end.extend(snapshot_fields(&job, &job.snapshot()));
                return Ok(Some(ok(end)));
            }
            Err(response) => response,
        },
        "checkpoint" => match require_job(table, request) {
            Ok(job) => match request.get("path").and_then(Json::as_str) {
                Some(path) => match job.checkpoint(PARK_TIMEOUT) {
                    Ok(bytes) => match std::fs::write(path, &bytes) {
                        Ok(()) => ok(vec![
                            ("job".into(), Json::str(job.name.clone())),
                            ("path".into(), Json::str(path)),
                            ("bytes".into(), Json::usize(bytes.len())),
                        ]),
                        Err(io) => err(format!("writing {path:?}: {io}")),
                    },
                    Err(message) => err(message),
                },
                None => err("checkpoint needs \"path\" (string)"),
            },
            Err(response) => response,
        },
        "resume" => {
            let name = request.get("name").and_then(Json::as_str);
            let path = request.get("path").and_then(Json::as_str);
            match (name, path) {
                (Some(name), Some(path)) => match std::fs::read(path) {
                    Ok(bytes) => {
                        let threads = request
                            .get("threads")
                            .and_then(Json::as_usize)
                            .unwrap_or(1)
                            .max(1);
                        let slice_s = request
                            .get("slice_s")
                            .and_then(Json::as_u64)
                            .unwrap_or(crate::jobs::DEFAULT_SLICE_S)
                            .max(1);
                        // The file's magic says what it is: SWP1 resumes
                        // a sweep cursor, anything else is tried as CHR1.
                        let spec = if bytes.starts_with(&crate::sweep::MAGIC) {
                            JobSpec::ResumeSweep {
                                bytes,
                                threads,
                                slice_s,
                                pause_at_row: request.get("pause_at_row").and_then(Json::as_usize),
                            }
                        } else {
                            JobSpec::Resume {
                                bytes,
                                threads,
                                slice_s,
                                pause_at_s: request.get("pause_at_s").and_then(Json::as_u64),
                            }
                        };
                        match table.submit(name, spec) {
                            Ok(job) => ok(vec![
                                ("job".into(), Json::str(job.name.clone())),
                                ("kind".into(), Json::str(job.kind)),
                                ("state".into(), Json::str(job.snapshot().state.as_str())),
                            ]),
                            Err(message) => err(message),
                        }
                    }
                    Err(io) => err(format!("reading {path:?}: {io}")),
                },
                _ => err("resume needs \"name\" and \"path\" (strings)"),
            }
        }
        "unpause" => match require_job(table, request) {
            Ok(job) => {
                job.request_unpause();
                ok(vec![("job".into(), Json::str(job.name.clone()))])
            }
            Err(response) => response,
        },
        "stop" => match require_job(table, request) {
            Ok(job) => {
                job.request_stop();
                ok(vec![("job".into(), Json::str(job.name.clone()))])
            }
            Err(response) => response,
        },
        "forget" => match request.get("name").and_then(Json::as_str) {
            Some(name) => match table.forget(name) {
                Ok(()) => {
                    // Drop the job's durable record too, so a restart
                    // does not resurrect a name the operator retired.
                    if let Some(dir) = &ctx.state {
                        if let Err(io) = dir.remove_job_file(&StateDir::job_file_name(name)) {
                            ctx.obs.logger.warn(
                                "chronosd::daemon",
                                "forgotten job checkpoint not removed",
                                &[("job", &name), ("error", &io)],
                            );
                        }
                        write_snapshot(table, dir, &ctx.obs, &BTreeMap::new());
                    }
                    ok(vec![("job".into(), Json::str(name))])
                }
                Err(message) => err(message),
            },
            None => err("forget needs \"name\" (string)"),
        },
        "sync" => match &ctx.state {
            Some(dir) => {
                if write_snapshot(table, dir, &ctx.obs, &BTreeMap::new()) {
                    ok(vec![
                        ("jobs".into(), Json::usize(table.list().len())),
                        (
                            "state_dir".into(),
                            Json::str(dir.root().display().to_string()),
                        ),
                    ])
                } else {
                    err("state snapshot failed (see daemon log)")
                }
            }
            None => err("daemon runs without --state-dir; nothing to sync"),
        },
        "shutdown" => {
            ctx.obs
                .logger
                .info("chronosd::daemon", "shutdown requested", &[]);
            shutdown.store(true, Ordering::SeqCst);
            ok(vec![("service".into(), Json::str("chronosd"))])
        }
        other => {
            ctx.obs.protocol_errors.inc();
            ctx.obs
                .logger
                .warn("chronosd::daemon", "unknown command", &[("cmd", &other)]);
            err(format!("unknown cmd {other:?}"))
        }
    };
    Ok(Some(response))
}

fn handle_connection(stream: UnixStream, ctx: &ServerCtx) {
    let shutdown: &AtomicBool = &ctx.shutdown;
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(io) => {
            ctx.obs.logger.error(
                "chronosd::daemon",
                "cannot clone connection stream",
                &[("error", &io)],
            );
            return;
        }
    };
    // Bounded reads so an idle connection cannot pin the handler past a
    // shutdown: on each timeout the loop re-checks the flag. Partial
    // lines survive timeouts because read_until keeps consumed bytes in
    // the buffer.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(300)));
    let mut reader = BufReader::new(stream);
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let mut eof = false;
        match reader.read_until(b'\n', &mut buf) {
            Ok(0) => break,
            Ok(_) if buf.ends_with(b"\n") => {}
            Ok(_) => eof = true, // final unterminated line
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(io) => {
                ctx.obs.logger.warn(
                    "chronosd::daemon",
                    "connection read failed",
                    &[("error", &io)],
                );
                break;
            }
        }
        let line = String::from_utf8_lossy(&buf).into_owned();
        buf.clear();
        if line.trim().is_empty() {
            if eof {
                break;
            }
            continue;
        }
        let response = match Json::parse(line.trim_end_matches(['\n', '\r'])) {
            Ok(request) => match dispatch(&request, ctx, &mut writer) {
                Ok(Some(response)) => response,
                Ok(None) => continue,
                Err(io) => {
                    // Client went away mid-stream.
                    ctx.obs.logger.debug(
                        "chronosd::daemon",
                        "watch stream dropped",
                        &[("error", &io)],
                    );
                    break;
                }
            },
            Err(parse) => {
                ctx.obs.protocol_errors.inc();
                ctx.obs.logger.warn(
                    "chronosd::daemon",
                    "unparseable request",
                    &[("error", &parse)],
                );
                err(format!("bad request: {parse}"))
            }
        };
        if writeln!(writer, "{}", response.render()).is_err() || writer.flush().is_err() {
            ctx.obs.logger.debug(
                "chronosd::daemon",
                "response write failed; closing connection",
                &[],
            );
            break;
        }
        if shutdown.load(Ordering::SeqCst) {
            // The accept loop may be blocked in accept(2) with no client
            // in flight; a throwaway connection wakes it so it can see
            // the flag and exit.
            let _ = UnixStream::connect(&ctx.path);
            break;
        }
    }
}
