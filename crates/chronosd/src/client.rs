//! A small client for the daemon socket, shared by `chronosctl`, the
//! service-mode example and the integration tests.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::{Duration, Instant};

use crate::json::Json;

/// A connected control-socket client (one request/response at a time).
#[derive(Debug)]
pub struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

/// A client-side failure: transport errors, protocol violations, and
/// `"ok": false` responses (carrying the daemon's error message).
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level I/O failed.
    Io(std::io::Error),
    /// The daemon's line was not valid JSON or had no `"ok"` field.
    Protocol(String),
    /// The daemon answered `"ok": false` with this message.
    Daemon(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Daemon(m) => write!(f, "daemon error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// Say precisely why a connect failed: a daemon that was never started
/// (or already removed its socket) reads differently from one that is
/// mid-boot or crashed without cleanup.
fn classify_connect(path: &Path, e: &std::io::Error) -> String {
    match e.kind() {
        std::io::ErrorKind::NotFound => format!(
            "socket absent at {} (daemon not started, or it exited cleanly)",
            path.display()
        ),
        std::io::ErrorKind::ConnectionRefused => format!(
            "connection refused at {} (socket file exists but no daemon is \
             accepting — crashed without cleanup, or still booting)",
            path.display()
        ),
        _ => format!("cannot connect to {}: {e}", path.display()),
    }
}

impl Client {
    /// Connect to a daemon socket. Connect failures are classified:
    /// "socket absent" (no file) vs "connection refused" (stale file, no
    /// listener) read differently to an operator racing daemon boot.
    pub fn connect(path: impl AsRef<Path>) -> Result<Client, ClientError> {
        let path = path.as_ref();
        let stream = UnixStream::connect(path)
            .map_err(|e| ClientError::Daemon(classify_connect(path, &e)))?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// [`Client::connect`] with bounded exponential backoff so scripts
    /// can race daemon boot: retries every transient connect failure
    /// (absent socket, refused connection) until `wait` elapses, with
    /// delays doubling 25 ms → 800 ms plus a small deterministic-ish
    /// jitter so a stampede of waiting clients doesn't thundering-herd
    /// the listener. The final error keeps the classified message.
    pub fn connect_with_retry(
        path: impl AsRef<Path>,
        wait: Duration,
    ) -> Result<Client, ClientError> {
        let path = path.as_ref();
        let deadline = Instant::now() + wait;
        let mut delay = Duration::from_millis(25);
        loop {
            match UnixStream::connect(path) {
                Ok(stream) => {
                    let writer = stream.try_clone()?;
                    return Ok(Client {
                        reader: BufReader::new(stream),
                        writer,
                    });
                }
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(ClientError::Daemon(format!(
                            "{} (gave up after {:.1}s)",
                            classify_connect(path, &e),
                            wait.as_secs_f64()
                        )));
                    }
                    // Sub-millisecond wall-clock bits as jitter: enough to
                    // decorrelate concurrent waiters, no RNG dependency.
                    let jitter = Duration::from_micros(
                        (std::time::SystemTime::now()
                            .duration_since(std::time::UNIX_EPOCH)
                            .map(|d| d.subsec_micros())
                            .unwrap_or(0)
                            % 1_000) as u64,
                    );
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    std::thread::sleep((delay + jitter).min(remaining));
                    delay = (delay * 2).min(Duration::from_millis(800));
                }
            }
        }
    }

    /// `ping` the daemon and verify it speaks our protocol version.
    /// Returns the ping payload; a daemon from a different protocol
    /// generation produces a "protocol version mismatch" error rather
    /// than a confusing failure on some later command.
    pub fn handshake(&mut self) -> Result<Json, ClientError> {
        let ping = self.request("ping", vec![])?;
        match ping.get("protocol").and_then(Json::as_u64) {
            Some(version) if version == crate::PROTOCOL_VERSION => Ok(ping),
            Some(version) => Err(ClientError::Protocol(format!(
                "protocol version mismatch: daemon speaks v{version}, this client speaks v{}",
                crate::PROTOCOL_VERSION
            ))),
            None => Err(ClientError::Protocol(
                "daemon ping carries no protocol version".into(),
            )),
        }
    }

    /// Send one request line and read one raw response line (already
    /// checked for `"ok": true`). Most callers want [`Client::request`].
    pub fn request_raw(&mut self, request: &Json) -> Result<Json, ClientError> {
        writeln!(self.writer, "{}", request.render())?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Read and validate the next response line (used after
    /// [`Client::request_raw`] for streaming commands like `watch`,
    /// which answer with several lines).
    pub fn read_response(&mut self) -> Result<Json, ClientError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Protocol("daemon closed the connection".into()));
        }
        let response = Json::parse(line.trim_end())
            .map_err(|e| ClientError::Protocol(format!("unparseable response: {e}")))?;
        match response.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(response),
            Some(false) => Err(ClientError::Daemon(
                response
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unspecified failure")
                    .to_string(),
            )),
            None => Err(ClientError::Protocol("response carries no \"ok\"".into())),
        }
    }

    /// Build and send a command with a job name plus extra fields.
    pub fn request(&mut self, cmd: &str, fields: Vec<(String, Json)>) -> Result<Json, ClientError> {
        let mut all = vec![("cmd".to_string(), Json::str(cmd))];
        all.extend(fields);
        self.request_raw(&Json::Obj(all))
    }

    /// Poll `status` until the job reaches `state` (wire label, e.g.
    /// `"paused"`, `"done"`). Errors if the job lands in a different
    /// terminal state first or `timeout` elapses.
    pub fn wait_for_state(
        &mut self,
        name: &str,
        state: &str,
        timeout: Duration,
    ) -> Result<Json, ClientError> {
        let deadline = Instant::now() + timeout;
        loop {
            let status = self.request("status", vec![("name".into(), Json::str(name))])?;
            let current = status
                .get("state")
                .and_then(Json::as_str)
                .unwrap_or("unknown")
                .to_string();
            if current == state {
                return Ok(status);
            }
            if matches!(current.as_str(), "done" | "stopped" | "failed") {
                let detail = status
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("no error recorded");
                return Err(ClientError::Daemon(format!(
                    "job {name:?} reached terminal state {current:?} while waiting for {state:?} ({detail})"
                )));
            }
            if Instant::now() >= deadline {
                return Err(ClientError::Daemon(format!(
                    "timed out waiting for job {name:?} to reach {state:?} (currently {current:?})"
                )));
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }
}
