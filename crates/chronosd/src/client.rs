//! A small client for the daemon socket, shared by `chronosctl`, the
//! service-mode example and the integration tests.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::{Duration, Instant};

use crate::json::Json;

/// A connected control-socket client (one request/response at a time).
#[derive(Debug)]
pub struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

/// A client-side failure: transport errors, protocol violations, and
/// `"ok": false` responses (carrying the daemon's error message).
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level I/O failed.
    Io(std::io::Error),
    /// The daemon's line was not valid JSON or had no `"ok"` field.
    Protocol(String),
    /// The daemon answered `"ok": false` with this message.
    Daemon(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Daemon(m) => write!(f, "daemon error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl Client {
    /// Connect to a daemon socket.
    pub fn connect(path: impl AsRef<Path>) -> Result<Client, ClientError> {
        let stream = UnixStream::connect(path)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Send one request line and read one raw response line (already
    /// checked for `"ok": true`). Most callers want [`Client::request`].
    pub fn request_raw(&mut self, request: &Json) -> Result<Json, ClientError> {
        writeln!(self.writer, "{}", request.render())?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Read and validate the next response line (used after
    /// [`Client::request_raw`] for streaming commands like `watch`,
    /// which answer with several lines).
    pub fn read_response(&mut self) -> Result<Json, ClientError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Protocol("daemon closed the connection".into()));
        }
        let response = Json::parse(line.trim_end())
            .map_err(|e| ClientError::Protocol(format!("unparseable response: {e}")))?;
        match response.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(response),
            Some(false) => Err(ClientError::Daemon(
                response
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unspecified failure")
                    .to_string(),
            )),
            None => Err(ClientError::Protocol("response carries no \"ok\"".into())),
        }
    }

    /// Build and send a command with a job name plus extra fields.
    pub fn request(&mut self, cmd: &str, fields: Vec<(String, Json)>) -> Result<Json, ClientError> {
        let mut all = vec![("cmd".to_string(), Json::str(cmd))];
        all.extend(fields);
        self.request_raw(&Json::Obj(all))
    }

    /// Poll `status` until the job reaches `state` (wire label, e.g.
    /// `"paused"`, `"done"`). Errors if the job lands in a different
    /// terminal state first or `timeout` elapses.
    pub fn wait_for_state(
        &mut self,
        name: &str,
        state: &str,
        timeout: Duration,
    ) -> Result<Json, ClientError> {
        let deadline = Instant::now() + timeout;
        loop {
            let status = self.request("status", vec![("name".into(), Json::str(name))])?;
            let current = status
                .get("state")
                .and_then(Json::as_str)
                .unwrap_or("unknown")
                .to_string();
            if current == state {
                return Ok(status);
            }
            if matches!(current.as_str(), "done" | "stopped" | "failed") {
                let detail = status
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("no error recorded");
                return Err(ClientError::Daemon(format!(
                    "job {name:?} reached terminal state {current:?} while waiting for {state:?} ({detail})"
                )));
            }
            if Instant::now() >= deadline {
                return Err(ClientError::Daemon(format!(
                    "timed out waiting for job {name:?} to reach {state:?} (currently {current:?})"
                )));
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }
}
