//! The daemon binary: bind the control socket and serve until a
//! `shutdown` request arrives.
//!
//! ```text
//! chronosd <socket-path>
//! ```
//!
//! Structured logs go to stderr; set `CHRONOSD_LOG` to
//! `error|warn|info|debug` to choose the level (default `info`). The
//! metric registry is scraped with `chronosctl <socket> metrics`.

use chronosd::Daemon;

fn main() {
    let mut args = std::env::args().skip(1);
    let path = match (args.next(), args.next()) {
        (Some(path), None) if path != "--help" && path != "-h" => path,
        _ => {
            eprintln!("usage: chronosd <socket-path>");
            eprintln!("serves the job-control protocol on a Unix-domain socket;");
            eprintln!("logs to stderr at the CHRONOSD_LOG level (error|warn|info|debug);");
            eprintln!("see docs/OPERATIONS.md for the protocol and chronosctl for a client");
            std::process::exit(2);
        }
    };
    let daemon = match Daemon::bind(&path) {
        Ok(daemon) => daemon,
        Err(e) => {
            eprintln!("chronosd: cannot bind {path}: {e}");
            std::process::exit(1);
        }
    };
    // Lifecycle lines ("listening", "shut down") come from the daemon's
    // structured logger.
    if let Err(e) = daemon.serve() {
        eprintln!("chronosd: serve failed: {e}");
        std::process::exit(1);
    }
}
