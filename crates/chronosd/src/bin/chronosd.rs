//! The daemon binary: bind the control socket and serve until a
//! `shutdown` request arrives.
//!
//! ```text
//! chronosd <socket-path> [--state-dir <dir>] [--checkpoint-every-s <n>]
//!          [--workers <n>] [--resume-threads <n>]
//! ```
//!
//! With `--state-dir`, the daemon is crash-durable: it resumes every job
//! recorded in the directory's manifest at boot (quarantining corrupt
//! files rather than dying), snapshots all job state every
//! `--checkpoint-every-s` seconds (and on the `sync` command and clean
//! shutdown), and a SIGKILL'd daemon rebooted from the same directory
//! finishes its jobs with byte-identical reports. `--workers` sizes the
//! fair-slicing worker pool (default `cores - 1`); `--resume-threads`
//! overrides the per-fleet thread count of restored jobs (results are
//! thread-invariant by the engine's contract).
//!
//! Structured logs go to stderr; set `CHRONOSD_LOG` to
//! `error|warn|info|debug` to choose the level (default `info`). The
//! metric registry is scraped with `chronosctl <socket> metrics`.

use std::time::Duration;

use chronosd::{Daemon, DaemonConfig, DaemonObs};

fn usage() -> ! {
    eprintln!("usage: chronosd <socket-path> [--state-dir <dir>] [--checkpoint-every-s <n>]");
    eprintln!("                [--workers <n>] [--resume-threads <n>]");
    eprintln!("serves the job-control protocol on a Unix-domain socket;");
    eprintln!("--state-dir enables crash durability (periodic snapshots + resume-on-boot);");
    eprintln!("logs to stderr at the CHRONOSD_LOG level (error|warn|info|debug);");
    eprintln!("see docs/OPERATIONS.md for the protocol and chronosctl for a client");
    std::process::exit(2);
}

fn numeric(flag: &str, value: Option<String>) -> u64 {
    value.and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("chronosd: {flag} needs a non-negative integer value");
        std::process::exit(2);
    })
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next().filter(|p| p != "--help" && p != "-h") else {
        usage()
    };
    let mut config = DaemonConfig::default();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--state-dir" => {
                config.state_dir = Some(args.next().unwrap_or_else(|| usage()).into());
            }
            "--checkpoint-every-s" => {
                config.checkpoint_every = Some(Duration::from_secs(
                    numeric("--checkpoint-every-s", args.next()).max(1),
                ));
            }
            "--workers" => {
                config.workers = Some(numeric("--workers", args.next()).max(1) as usize);
            }
            "--resume-threads" => {
                config.resume_threads =
                    Some(numeric("--resume-threads", args.next()).max(1) as usize);
            }
            _ => usage(),
        }
    }
    let daemon = match Daemon::bind_with_config(&path, DaemonObs::from_env(), config) {
        Ok(daemon) => daemon,
        Err(e) => {
            eprintln!("chronosd: cannot bind {path}: {e}");
            std::process::exit(1);
        }
    };
    // Lifecycle lines ("listening", "shut down") come from the daemon's
    // structured logger.
    if let Err(e) = daemon.serve() {
        eprintln!("chronosd: serve failed: {e}");
        std::process::exit(1);
    }
}
