//! The operator client for `chronosd`.
//!
//! ```text
//! chronosctl <socket> [--wait N] <command> [...]
//!
//! chronosctl <socket> ping
//! chronosctl <socket> submit <name> <kind> [--seed N] [--clients N] [--resolvers N]
//!            [--poisoned N] [--loss F] [--outage-coverage N] [--deployment F]
//!            [--threads N] [--slice-s N] [--pause-at-s N] [--pause-at-row N]
//! chronosctl <socket> jobs
//! chronosctl <socket> status <name>
//! chronosctl <socket> report <name> [--row N] # prints only the report object
//! chronosctl <socket> watch <name> [count]
//! chronosctl <socket> checkpoint <name> <file>
//! chronosctl <socket> resume <name> <file> [--threads N] [--slice-s N]
//!            [--pause-at-s N] [--pause-at-row N]   # CHR1 or SWP1, by magic
//! chronosctl <socket> unpause <name>
//! chronosctl <socket> stop <name>
//! chronosctl <socket> forget <name>          # drop a terminal job's record
//! chronosctl <socket> wait <name> <state> [timeout-s]
//! chronosctl <socket> sync                   # force a state-dir snapshot
//! chronosctl <socket> metrics                # Prometheus text exposition
//! chronosctl <socket> shutdown
//! chronosctl batch-e16 [--seed N] [--clients N] [--resolvers N] [--poisoned K] [--threads N]
//! ```
//!
//! `--wait N` (right after the socket path) retries the connection with
//! bounded exponential backoff for up to N seconds, so scripts can race
//! daemon boot; every connection then handshakes the protocol version,
//! so a mismatched daemon fails with "protocol version mismatch" instead
//! of a confusing late error.
//!
//! `batch-e16` needs no daemon: it runs the E16 sweep in-process via
//! `chronos_pitfalls::experiments::run_e16` and prints the report of the
//! `--poisoned K` row through the same canonical renderer the daemon
//! uses — so `chronosctl <socket> report <job>` for an `e16-fleet` job
//! with matching parameters is **byte-identical** to it (CI diffs the
//! two).

use std::time::Duration;

use chronosd::json::Json;
use chronosd::render::report_json;
use chronosd::Client;

fn usage() -> ! {
    eprintln!(
        "usage: chronosctl <socket> [--wait N] <command> [...]  (or: chronosctl batch-e16 [...])"
    );
    eprintln!("commands: ping, submit, jobs, status, report, watch, checkpoint, resume,");
    eprintln!(
        "          unpause, stop, forget, wait, sync, metrics, shutdown; see docs/OPERATIONS.md"
    );
    std::process::exit(2);
}

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("chronosctl: {message}");
    std::process::exit(1);
}

/// Collect `--key value` flag pairs into `(key, value)` tuples.
fn flags(args: &[String]) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let key = match args[i].strip_prefix("--") {
            Some(key) => key.to_string(),
            None => fail(format!("expected a --flag, got {:?}", args[i])),
        };
        let Some(value) = args.get(i + 1) else {
            fail(format!("--{key} needs a value"))
        };
        out.push((key, value.clone()));
        i += 2;
    }
    out
}

fn flag_num(pairs: &[(String, String)], key: &str) -> Option<Json> {
    pairs.iter().find(|(k, _)| k == key).map(|(_, v)| {
        if v.parse::<f64>().is_err() {
            fail(format!("--{key}: {v:?} is not a number"));
        }
        Json::Num(v.clone())
    })
}

fn batch_e16(rest: &[String]) {
    let pairs = flags(rest);
    let get = |key: &str, default: u64| -> u64 {
        flag_num(&pairs, key)
            .and_then(|v| v.as_u64())
            .unwrap_or(default)
    };
    let seed = get("seed", 7);
    let clients = get("clients", 1_000) as usize;
    let resolvers = (get("resolvers", 4) as usize).max(1);
    let poisoned = get("poisoned", resolvers as u64) as usize;
    let threads = (get("threads", 1) as usize).max(1);
    if poisoned > resolvers {
        fail(format!(
            "--poisoned {poisoned} exceeds --resolvers {resolvers}"
        ));
    }
    let sweep = chronos_pitfalls::experiments::run_e16(seed, clients, resolvers, threads);
    let row = sweep
        .rows
        .iter()
        .find(|row| row.poisoned_resolvers == poisoned)
        .unwrap_or_else(|| fail("sweep produced no row for the requested k"));
    println!("{}", report_json(&row.report).render());
}

fn connect(socket: &str, wait: Option<u64>) -> Client {
    let mut client = match wait {
        Some(seconds) => Client::connect_with_retry(socket, Duration::from_secs(seconds)),
        None => Client::connect(socket),
    }
    .unwrap_or_else(|e| fail(format!("connecting {socket}: {e}")));
    // Fail fast on a daemon from a different protocol generation.
    client
        .handshake()
        .unwrap_or_else(|e| fail(format!("connecting {socket}: {e}")));
    client
}

fn name_field(name: &str) -> Vec<(String, Json)> {
    vec![("name".into(), Json::str(name))]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("batch-e16") {
        batch_e16(&args[1..]);
        return;
    }
    let (socket, mut tail) = match args.split_first() {
        Some((socket, tail)) => (socket.as_str(), tail),
        None => usage(),
    };
    let mut wait = None;
    if tail.first().map(String::as_str) == Some("--wait") {
        let Some(seconds) = tail.get(1) else {
            fail("--wait needs a value (seconds)")
        };
        wait = Some(
            seconds
                .parse::<u64>()
                .unwrap_or_else(|_| fail(format!("--wait {seconds:?} is not an integer"))),
        );
        tail = &tail[2..];
    }
    let (cmd, rest) = match tail.split_first() {
        Some((cmd, rest)) => (cmd.as_str(), rest),
        None => usage(),
    };
    match cmd {
        "ping" | "jobs" | "shutdown" | "sync" => {
            let response = connect(socket, wait)
                .request(cmd, Vec::new())
                .unwrap_or_else(|e| fail(e));
            println!("{}", response.render());
        }
        "metrics" => {
            let response = connect(socket, wait)
                .request("metrics", Vec::new())
                .unwrap_or_else(|e| fail(e));
            let text = response
                .get("metrics")
                .and_then(Json::as_str)
                .unwrap_or_else(|| fail("response carries no metrics payload"));
            // Refuse to print an exposition our own parser rejects: a
            // daemon/ctl version skew should fail loudly, not feed a
            // scraper garbage.
            if let Err(e) = obs::expo::parse(text) {
                fail(format!("daemon sent invalid exposition: {e}"));
            }
            // The payload already ends with a newline per family block.
            print!("{text}");
        }
        "status" | "unpause" | "stop" | "forget" => {
            let [name] = rest else {
                fail(format!("{cmd} needs <name>"))
            };
            let response = connect(socket, wait)
                .request(cmd, name_field(name))
                .unwrap_or_else(|e| fail(e));
            println!("{}", response.render());
        }
        "report" => {
            let Some(([name], pairs)) = rest.split_first_chunk().map(|(h, t)| (h, flags(t))) else {
                fail("report needs <name> [--row N]")
            };
            let mut fields = name_field(name);
            if let Some(row) = flag_num(&pairs, "row") {
                fields.push(("row".into(), row));
            }
            let response = connect(socket, wait)
                .request("report", fields)
                .unwrap_or_else(|e| fail(e));
            // Print only the payload object so the output is
            // byte-comparable with `chronosctl batch-e16`.
            let payload = response
                .get("report")
                .or_else(|| response.get("sweep"))
                .unwrap_or_else(|| fail("response carries no report"));
            println!("{}", payload.render());
        }
        "watch" => {
            let (name, count) = match rest {
                [name] => (name, None),
                [name, count] => (name, Some(count)),
                _ => fail("watch needs <name> [count]"),
            };
            let mut fields = name_field(name);
            if let Some(count) = count {
                if count.parse::<u64>().is_err() {
                    fail(format!("watch count {count:?} is not an integer"));
                }
                fields.push(("count".into(), Json::Num(count.clone())));
            }
            let mut client = connect(socket, wait);
            let mut response = client.request("watch", fields).unwrap_or_else(|e| fail(e));
            loop {
                println!("{}", response.render());
                if response.get("event").and_then(Json::as_str) == Some("end") {
                    break;
                }
                response = client.read_response().unwrap_or_else(|e| fail(e));
            }
        }
        "submit" => {
            let Some(([name, kind], pairs)) = rest.split_first_chunk().map(|(h, t)| (h, flags(t)))
            else {
                fail("submit needs <name> <kind> [--flags]")
            };
            let mut spec = vec![("kind".to_string(), Json::str(kind.as_str()))];
            for (key, wire) in [
                ("seed", "seed"),
                ("clients", "clients"),
                ("resolvers", "resolvers"),
                ("poisoned", "poisoned_resolvers"),
                ("loss", "loss"),
                ("outage-coverage", "outage_coverage"),
                ("deployment", "deployment"),
                ("threads", "threads"),
                ("slice-s", "slice_s"),
                ("pause-at-s", "pause_at_s"),
                ("pause-at-row", "pause_at_row"),
            ] {
                if let Some(value) = flag_num(&pairs, key) {
                    spec.push((wire.to_string(), value));
                }
            }
            let mut fields = name_field(name);
            fields.push(("spec".into(), Json::Obj(spec)));
            let response = connect(socket, wait)
                .request("submit", fields)
                .unwrap_or_else(|e| fail(e));
            println!("{}", response.render());
        }
        "checkpoint" => {
            let [name, path] = rest else {
                fail("checkpoint needs <name> <file>")
            };
            let mut fields = name_field(name);
            fields.push(("path".into(), Json::str(path.as_str())));
            let response = connect(socket, wait)
                .request("checkpoint", fields)
                .unwrap_or_else(|e| fail(e));
            println!("{}", response.render());
        }
        "resume" => {
            let Some(([name, path], pairs)) = rest.split_first_chunk().map(|(h, t)| (h, flags(t)))
            else {
                fail("resume needs <name> <file> [--flags]")
            };
            let mut fields = name_field(name);
            fields.push(("path".into(), Json::str(path.as_str())));
            for (key, wire) in [
                ("threads", "threads"),
                ("slice-s", "slice_s"),
                ("pause-at-s", "pause_at_s"),
                ("pause-at-row", "pause_at_row"),
            ] {
                if let Some(value) = flag_num(&pairs, key) {
                    fields.push((wire.to_string(), value));
                }
            }
            let response = connect(socket, wait)
                .request("resume", fields)
                .unwrap_or_else(|e| fail(e));
            println!("{}", response.render());
        }
        "wait" => {
            let (name, state, timeout_s) = match rest {
                [name, state] => (name, state, 300),
                [name, state, t] => (
                    name,
                    state,
                    t.parse::<u64>()
                        .unwrap_or_else(|_| fail(format!("wait timeout {t:?} is not an integer"))),
                ),
                _ => fail("wait needs <name> <state> [timeout-s]"),
            };
            let status = connect(socket, wait)
                .wait_for_state(name, state, Duration::from_secs(timeout_s))
                .unwrap_or_else(|e| fail(e));
            println!("{}", status.render());
        }
        _ => usage(),
    }
}
