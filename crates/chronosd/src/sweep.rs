//! `SWP1`: the sweep-cursor wire format — how an in-flight `e16-sweep`
//! or `e18-sweep` grid persists across daemon restarts.
//!
//! A sweep is a sequence of fleet runs — the E16 poisoned-resolver grid
//! (`k = 0..=resolvers`) or the E18 deployment × poisoning grid
//! ([`chronos_pitfalls::experiments::e18_grid`]). Its durable state is
//! therefore a *cursor*: the final `CHR1` checkpoint of every completed
//! row (restoring one and calling `report()` reproduces the row's report
//! byte-identically, so nothing is recomputed on reboot) plus the live
//! `CHR1` checkpoint of the row currently stepping. Scheduling knobs
//! (threads, slice length, pause anchors) deliberately live *outside*
//! the cursor — in the state-dir manifest or the `resume-sweep` request
//! — because they are allowed to differ across the two legs of a resume
//! without changing a byte of the final result.
//!
//! Layout (all integers little-endian), sharing `CHR1`'s trailing
//! XOR-fold checksum ([`fleet::checkpoint::checksum`]) and its error
//! taxonomy ([`CheckpointError`]):
//!
//! ```text
//! magic    [u8; 4]           "SWP1"
//! version  u32               currently 2 (v2 added the flavor byte)
//! flavor   u8                0 = e16 grid, 1 = e18 grid
//! seed     u64
//! clients  u64
//! resolvers u64              row grid derives from this per flavor
//! row      u64               completed-row count == current row index
//! done     u64, then per row: len u64 + CHR1 bytes
//! current  u8 flag, then if 1: len u64 + CHR1 bytes
//! checksum u64               over every byte above
//! ```

use fleet::checkpoint::{checksum, CheckpointError};

/// First bytes of every sweep cursor.
pub const MAGIC: [u8; 4] = *b"SWP1";

/// Current cursor format version; other versions are rejected. Version
/// 2 added the grid-flavor byte when `e18-sweep` jobs landed.
pub const VERSION: u32 = 2;

/// Which experiment grid a sweep walks. The flavor fixes the row count
/// and the per-row fleet configuration as pure functions of
/// `(seed, clients, resolvers, row)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SweepFlavor {
    /// The E16 partial-poisoning grid: `k = 0..=resolvers`.
    #[default]
    E16,
    /// The E18 deployment × poisoning grid
    /// ([`chronos_pitfalls::experiments::e18_grid`]).
    E18,
}

impl SweepFlavor {
    /// Total rows in this flavor's grid for a given resolver count.
    pub fn total_rows(self, resolvers: usize) -> usize {
        match self {
            SweepFlavor::E16 => resolvers + 1,
            SweepFlavor::E18 => chronos_pitfalls::experiments::e18_grid(resolvers.max(1)).len(),
        }
    }

    fn to_byte(self) -> u8 {
        match self {
            SweepFlavor::E16 => 0,
            SweepFlavor::E18 => 1,
        }
    }

    fn from_byte(b: u8) -> Result<SweepFlavor, CheckpointError> {
        match b {
            0 => Ok(SweepFlavor::E16),
            1 => Ok(SweepFlavor::E18),
            _ => Err(CheckpointError::Corrupt("sweep flavor out of range")),
        }
    }
}

/// The decoded durable state of a sweep job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepCursor {
    /// Which grid the sweep walks (fixes the row count and row configs).
    pub flavor: SweepFlavor,
    /// Deterministic seed the row configs derive from.
    pub seed: u64,
    /// Fleet size per row.
    pub clients: usize,
    /// Resolver count; the grid derives from it per flavor.
    pub resolvers: usize,
    /// Completed-row count (== index of the current row).
    pub row: usize,
    /// Final `CHR1` checkpoint of each completed row, in row order.
    pub done: Vec<Vec<u8>>,
    /// Live `CHR1` checkpoint of the current row; `None` when the sweep
    /// is complete (`row == total_rows`).
    pub current: Option<Vec<u8>>,
}

/// Serialize a cursor to `SWP1` bytes.
pub fn encode(cursor: &SweepCursor) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.push(cursor.flavor.to_byte());
    for v in [
        cursor.seed,
        cursor.clients as u64,
        cursor.resolvers as u64,
        cursor.row as u64,
        cursor.done.len() as u64,
    ] {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    for blob in &cursor.done {
        buf.extend_from_slice(&(blob.len() as u64).to_le_bytes());
        buf.extend_from_slice(blob);
    }
    match &cursor.current {
        Some(blob) => {
            buf.push(1);
            buf.extend_from_slice(&(blob.len() as u64).to_le_bytes());
            buf.extend_from_slice(blob);
        }
        None => buf.push(0),
    }
    let sum = checksum(&buf);
    buf.extend_from_slice(&sum.to_le_bytes());
    buf
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self.at.checked_add(n).ok_or(CheckpointError::Truncated)?;
        if end > self.bytes.len() {
            return Err(CheckpointError::Truncated);
        }
        let out = &self.bytes[self.at..end];
        self.at = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn len(&mut self) -> Result<usize, CheckpointError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| CheckpointError::Corrupt("length overflows usize"))
    }
}

/// Decode `SWP1` bytes, reusing the `CHR1` error taxonomy: checksum is
/// verified before any structural field is trusted, so a bit flip
/// anywhere surfaces as [`CheckpointError::BadChecksum`], truncation as
/// [`CheckpointError::Truncated`], and impossible structure (row counts
/// that disagree with the payload) as [`CheckpointError::Corrupt`]. The
/// embedded `CHR1` blobs are *not* decoded here — callers restore them
/// through [`fleet::engine::Fleet::restore`], which revalidates each one.
pub fn decode(bytes: &[u8]) -> Result<SweepCursor, CheckpointError> {
    if bytes.len() < MAGIC.len() {
        return Err(CheckpointError::Truncated);
    }
    if bytes[..MAGIC.len()] != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    if bytes.len() < MAGIC.len() + 4 + 8 {
        return Err(CheckpointError::Truncated);
    }
    let (payload, trailer) = bytes.split_at(bytes.len() - 8);
    let mut sum = [0u8; 8];
    sum.copy_from_slice(trailer);
    if checksum(payload) != u64::from_le_bytes(sum) {
        return Err(CheckpointError::BadChecksum);
    }
    let mut r = Reader {
        bytes: payload,
        at: MAGIC.len(),
    };
    let version = r.u32()?;
    if version != VERSION {
        return Err(CheckpointError::BadVersion(version));
    }
    let flavor = SweepFlavor::from_byte(r.u8()?)?;
    let seed = r.u64()?;
    let clients = r.len()?;
    let resolvers = r.len()?;
    let row = r.len()?;
    let done_count = r.len()?;
    let total = flavor.total_rows(resolvers);
    if row > total {
        return Err(CheckpointError::Corrupt("row index beyond grid"));
    }
    if done_count != row {
        return Err(CheckpointError::Corrupt(
            "completed-row count != cursor row",
        ));
    }
    let mut done = Vec::with_capacity(done_count.min(1 << 16));
    for _ in 0..done_count {
        let len = r.len()?;
        done.push(r.take(len)?.to_vec());
    }
    let current = match r.u8()? {
        0 => None,
        1 => {
            let len = r.len()?;
            Some(r.take(len)?.to_vec())
        }
        _ => return Err(CheckpointError::Corrupt("current-row flag out of range")),
    };
    if r.at != payload.len() {
        return Err(CheckpointError::Corrupt("trailing bytes after cursor"));
    }
    if (row < total) != current.is_some() {
        return Err(CheckpointError::Corrupt(
            "current-row presence disagrees with cursor row",
        ));
    }
    Ok(SweepCursor {
        flavor,
        seed,
        clients,
        resolvers,
        row,
        done,
        current,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SweepCursor {
        SweepCursor {
            flavor: SweepFlavor::E16,
            seed: 7,
            clients: 16,
            resolvers: 2,
            row: 1,
            done: vec![vec![1, 2, 3, 4, 5]],
            current: Some(vec![9, 8, 7]),
        }
    }

    #[test]
    fn round_trips() {
        let cursor = sample();
        assert_eq!(decode(&encode(&cursor)).unwrap(), cursor);
        let complete = SweepCursor {
            row: 3,
            done: vec![vec![1], vec![2], vec![3]],
            current: None,
            ..sample()
        };
        assert_eq!(decode(&encode(&complete)).unwrap(), complete);
        // The E18 grid with 2 resolvers has 10 rows (5 deployments × 2
        // poisoned counts), so a mid-grid cursor round-trips too.
        let e18 = SweepCursor {
            flavor: SweepFlavor::E18,
            row: 4,
            done: vec![vec![1], vec![2], vec![3], vec![4]],
            current: Some(vec![5]),
            ..sample()
        };
        assert_eq!(decode(&encode(&e18)).unwrap(), e18);
    }

    #[test]
    fn flavor_bounds_the_grid() {
        assert_eq!(SweepFlavor::E16.total_rows(2), 3);
        assert_eq!(
            SweepFlavor::E18.total_rows(2),
            chronos_pitfalls::experiments::e18_grid(2).len()
        );
        // An E16 row index valid only under the larger E18 grid is
        // rejected once the flavor says E16.
        let wrong = SweepCursor {
            flavor: SweepFlavor::E16,
            row: 4,
            done: vec![vec![1], vec![2], vec![3], vec![4]],
            current: Some(vec![5]),
            ..sample()
        };
        assert!(matches!(
            decode(&encode(&wrong)),
            Err(CheckpointError::Corrupt(_))
        ));
    }

    #[test]
    fn corruption_is_classified() {
        let bytes = encode(&sample());
        assert_eq!(decode(&bytes[..3]), Err(CheckpointError::Truncated));
        assert_eq!(
            decode(&bytes[..bytes.len() - 1]),
            Err(CheckpointError::BadChecksum)
        );
        let mut flipped = bytes.clone();
        flipped[10] ^= 0x40;
        assert_eq!(decode(&flipped), Err(CheckpointError::BadChecksum));
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert_eq!(decode(&bad_magic), Err(CheckpointError::BadMagic));
    }

    #[test]
    fn structural_lies_are_corrupt_not_panics() {
        // A cursor whose row count disagrees with its payload must be
        // rejected as Corrupt even when the checksum is recomputed.
        let mut cursor = sample();
        cursor.row = 2; // but only 1 done blob
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.push(0); // flavor: e16
        for v in [
            cursor.seed,
            cursor.clients as u64,
            cursor.resolvers as u64,
            2u64,
            1u64,
        ] {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        buf.extend_from_slice(&5u64.to_le_bytes());
        buf.extend_from_slice(&[1, 2, 3, 4, 5]);
        buf.push(0);
        let sum = checksum(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());
        assert!(matches!(decode(&buf), Err(CheckpointError::Corrupt(_))));
    }
}
