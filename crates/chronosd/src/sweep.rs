//! `SWP1`: the sweep-cursor wire format — how an in-flight `e16-sweep`
//! grid persists across daemon restarts.
//!
//! A sweep is a sequence of fleet runs (`k = 0..=resolvers` poisoned
//! resolvers). Its durable state is therefore a *cursor*: the final
//! `CHR1` checkpoint of every completed row (restoring one and calling
//! `report()` reproduces the row's report byte-identically, so nothing
//! is recomputed on reboot) plus the live `CHR1` checkpoint of the row
//! currently stepping. Scheduling knobs (threads, slice length, pause
//! anchors) deliberately live *outside* the cursor — in the state-dir
//! manifest or the `resume-sweep` request — because they are allowed to
//! differ across the two legs of a resume without changing a byte of
//! the final result.
//!
//! Layout (all integers little-endian), sharing `CHR1`'s trailing
//! XOR-fold checksum ([`fleet::checkpoint::checksum`]) and its error
//! taxonomy ([`CheckpointError`]):
//!
//! ```text
//! magic    [u8; 4]           "SWP1"
//! version  u32               currently 1
//! seed     u64
//! clients  u64
//! resolvers u64              grid is k = 0..=resolvers
//! row      u64               completed-row count == current row index
//! done     u64, then per row: len u64 + CHR1 bytes
//! current  u8 flag, then if 1: len u64 + CHR1 bytes
//! checksum u64               over every byte above
//! ```

use fleet::checkpoint::{checksum, CheckpointError};

/// First bytes of every sweep cursor.
pub const MAGIC: [u8; 4] = *b"SWP1";

/// Current cursor format version; other versions are rejected.
pub const VERSION: u32 = 1;

/// The decoded durable state of a sweep job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepCursor {
    /// Deterministic seed the row configs derive from.
    pub seed: u64,
    /// Fleet size per row.
    pub clients: usize,
    /// Resolver count; the grid has `resolvers + 1` rows.
    pub resolvers: usize,
    /// Completed-row count (== index of the current row).
    pub row: usize,
    /// Final `CHR1` checkpoint of each completed row, in row order.
    pub done: Vec<Vec<u8>>,
    /// Live `CHR1` checkpoint of the current row; `None` when the sweep
    /// is complete (`row == resolvers + 1`).
    pub current: Option<Vec<u8>>,
}

/// Serialize a cursor to `SWP1` bytes.
pub fn encode(cursor: &SweepCursor) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    for v in [
        cursor.seed,
        cursor.clients as u64,
        cursor.resolvers as u64,
        cursor.row as u64,
        cursor.done.len() as u64,
    ] {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    for blob in &cursor.done {
        buf.extend_from_slice(&(blob.len() as u64).to_le_bytes());
        buf.extend_from_slice(blob);
    }
    match &cursor.current {
        Some(blob) => {
            buf.push(1);
            buf.extend_from_slice(&(blob.len() as u64).to_le_bytes());
            buf.extend_from_slice(blob);
        }
        None => buf.push(0),
    }
    let sum = checksum(&buf);
    buf.extend_from_slice(&sum.to_le_bytes());
    buf
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self.at.checked_add(n).ok_or(CheckpointError::Truncated)?;
        if end > self.bytes.len() {
            return Err(CheckpointError::Truncated);
        }
        let out = &self.bytes[self.at..end];
        self.at = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn len(&mut self) -> Result<usize, CheckpointError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| CheckpointError::Corrupt("length overflows usize"))
    }
}

/// Decode `SWP1` bytes, reusing the `CHR1` error taxonomy: checksum is
/// verified before any structural field is trusted, so a bit flip
/// anywhere surfaces as [`CheckpointError::BadChecksum`], truncation as
/// [`CheckpointError::Truncated`], and impossible structure (row counts
/// that disagree with the payload) as [`CheckpointError::Corrupt`]. The
/// embedded `CHR1` blobs are *not* decoded here — callers restore them
/// through [`fleet::engine::Fleet::restore`], which revalidates each one.
pub fn decode(bytes: &[u8]) -> Result<SweepCursor, CheckpointError> {
    if bytes.len() < MAGIC.len() {
        return Err(CheckpointError::Truncated);
    }
    if bytes[..MAGIC.len()] != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    if bytes.len() < MAGIC.len() + 4 + 8 {
        return Err(CheckpointError::Truncated);
    }
    let (payload, trailer) = bytes.split_at(bytes.len() - 8);
    let mut sum = [0u8; 8];
    sum.copy_from_slice(trailer);
    if checksum(payload) != u64::from_le_bytes(sum) {
        return Err(CheckpointError::BadChecksum);
    }
    let mut r = Reader {
        bytes: payload,
        at: MAGIC.len(),
    };
    let version = r.u32()?;
    if version != VERSION {
        return Err(CheckpointError::BadVersion(version));
    }
    let seed = r.u64()?;
    let clients = r.len()?;
    let resolvers = r.len()?;
    let row = r.len()?;
    let done_count = r.len()?;
    let total = resolvers + 1;
    if row > total {
        return Err(CheckpointError::Corrupt("row index beyond grid"));
    }
    if done_count != row {
        return Err(CheckpointError::Corrupt(
            "completed-row count != cursor row",
        ));
    }
    let mut done = Vec::with_capacity(done_count.min(1 << 16));
    for _ in 0..done_count {
        let len = r.len()?;
        done.push(r.take(len)?.to_vec());
    }
    let current = match r.u8()? {
        0 => None,
        1 => {
            let len = r.len()?;
            Some(r.take(len)?.to_vec())
        }
        _ => return Err(CheckpointError::Corrupt("current-row flag out of range")),
    };
    if r.at != payload.len() {
        return Err(CheckpointError::Corrupt("trailing bytes after cursor"));
    }
    if (row < total) != current.is_some() {
        return Err(CheckpointError::Corrupt(
            "current-row presence disagrees with cursor row",
        ));
    }
    Ok(SweepCursor {
        seed,
        clients,
        resolvers,
        row,
        done,
        current,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SweepCursor {
        SweepCursor {
            seed: 7,
            clients: 16,
            resolvers: 2,
            row: 1,
            done: vec![vec![1, 2, 3, 4, 5]],
            current: Some(vec![9, 8, 7]),
        }
    }

    #[test]
    fn round_trips() {
        let cursor = sample();
        assert_eq!(decode(&encode(&cursor)).unwrap(), cursor);
        let complete = SweepCursor {
            row: 3,
            done: vec![vec![1], vec![2], vec![3]],
            current: None,
            ..sample()
        };
        assert_eq!(decode(&encode(&complete)).unwrap(), complete);
    }

    #[test]
    fn corruption_is_classified() {
        let bytes = encode(&sample());
        assert_eq!(decode(&bytes[..3]), Err(CheckpointError::Truncated));
        assert_eq!(
            decode(&bytes[..bytes.len() - 1]),
            Err(CheckpointError::BadChecksum)
        );
        let mut flipped = bytes.clone();
        flipped[10] ^= 0x40;
        assert_eq!(decode(&flipped), Err(CheckpointError::BadChecksum));
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert_eq!(decode(&bad_magic), Err(CheckpointError::BadMagic));
    }

    #[test]
    fn structural_lies_are_corrupt_not_panics() {
        // A cursor whose row count disagrees with its payload must be
        // rejected as Corrupt even when the checksum is recomputed.
        let mut cursor = sample();
        cursor.row = 2; // but only 1 done blob
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        for v in [
            cursor.seed,
            cursor.clients as u64,
            cursor.resolvers as u64,
            2u64,
            1u64,
        ] {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        buf.extend_from_slice(&5u64.to_le_bytes());
        buf.extend_from_slice(&[1, 2, 3, 4, 5]);
        buf.push(0);
        let sum = checksum(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());
        assert!(matches!(decode(&buf), Err(CheckpointError::Corrupt(_))));
    }
}
