//! Daemon observability: the metric registry, the structured logger, and
//! the per-job gauge bundles behind the `metrics` protocol command.
//!
//! One [`DaemonObs`] is created when the daemon binds its socket and
//! shared (via `Arc`) with every connection handler and the job table.
//! It owns:
//!
//! * the [`obs::Registry`] rendered by the `metrics` command,
//! * daemon-wide counters — connections accepted, commands by kind,
//!   protocol errors,
//! * one daemon-wide [`fleet::metrics::FleetMetrics`] attached to every
//!   hosted fleet (engine stage timings aggregate across jobs),
//! * the [`obs::Logger`] that replaces the daemon's formerly silent
//!   failure paths (level from `CHRONOSD_LOG`, default `info`).
//!
//! A [`JobMetrics`] bundle is registered per job at submit time, labelled
//! `{job="<name>"}`; gauges hold the job's latest-slice throughput and
//! checkpoint cost. [`JobTable::new`](crate::jobs::JobTable::new) without
//! observability still works — embedding and tests pay nothing.

use fleet::metrics::FleetMetrics;
use obs::{Counter, Gauge, Level, Logger, Registry};
use std::sync::Arc;

/// Environment variable selecting the daemon log level
/// (`error|warn|info|debug`; unset or unknown → `info`).
pub const LOG_ENV: &str = "CHRONOSD_LOG";

/// The daemon's shared observability state.
#[derive(Debug)]
pub struct DaemonObs {
    /// Every instrument below (plus per-job bundles) registers here; the
    /// `metrics` command renders it.
    pub registry: Registry,
    /// The daemon's structured logger.
    pub logger: Arc<Logger>,
    /// Engine stage instrumentation, attached to every hosted fleet
    /// (daemon-wide: stages aggregate across jobs).
    pub fleet: Arc<FleetMetrics>,
    /// Connections accepted (`chronosd_connections_total`).
    pub connections: Arc<Counter>,
    /// Malformed requests — unparseable JSON, missing or unknown `cmd`
    /// (`chronosd_protocol_errors_total`).
    pub protocol_errors: Arc<Counter>,
    /// `run_until` slices stepped by the worker pool
    /// (`chronosd_slices_total`).
    pub slices_scheduled: Arc<Counter>,
    /// Job panics caught by the pool's `catch_unwind` isolation
    /// (`chronosd_job_panics_total`). Stays 0 on a healthy daemon.
    pub job_panics: Arc<Counter>,
    /// State-dir snapshots written — manifest rewrites, each covering
    /// every live job (`chronosd_checkpoints_written_total`).
    pub checkpoints_written: Arc<Counter>,
    /// Jobs restored from the state dir at boot
    /// (`chronosd_checkpoints_restored_total`).
    pub checkpoints_restored: Arc<Counter>,
    /// Corrupt state files moved to `quarantine/` at boot
    /// (`chronosd_quarantines_total`).
    pub quarantines: Arc<Counter>,
}

/// Per-job gauges, labelled `{job="<name>"}` in the registry.
#[derive(Debug, Clone)]
pub struct JobMetrics {
    /// Wall seconds of the most recent completed slice
    /// (`chronosd_job_slice_wall_seconds`).
    pub slice_wall: Arc<Gauge>,
    /// Simulated seconds advanced per wall second over the last slice
    /// (`chronosd_job_sim_seconds_per_wall_second`).
    pub sim_per_wall: Arc<Gauge>,
    /// Client events stepped per wall second over the last slice
    /// (`chronosd_job_events_per_sec`).
    pub events_per_sec: Arc<Gauge>,
    /// Size of the job's most recent checkpoint
    /// (`chronosd_job_checkpoint_bytes`).
    pub checkpoint_bytes: Arc<Gauge>,
    /// Wall seconds the most recent checkpoint took, including the wait
    /// for the fleet to park (`chronosd_job_checkpoint_wall_seconds`).
    pub checkpoint_wall: Arc<Gauge>,
    /// Live `watch` streams on this job
    /// (`chronosd_job_watch_subscribers`).
    pub watchers: Arc<Gauge>,
}

impl DaemonObs {
    /// Builds the daemon's observability state with the given logger.
    pub fn new(logger: Logger) -> DaemonObs {
        let registry = Registry::new();
        let fleet = Arc::new(FleetMetrics::registered(&registry, &[]));
        let connections = registry.counter(
            "chronosd_connections_total",
            "Connections accepted on the control socket.",
            &[],
        );
        let protocol_errors = registry.counter(
            "chronosd_protocol_errors_total",
            "Malformed requests: unparseable JSON, missing or unknown cmd.",
            &[],
        );
        let slices_scheduled = registry.counter(
            "chronosd_slices_total",
            "run_until slices stepped by the worker pool.",
            &[],
        );
        let job_panics = registry.counter(
            "chronosd_job_panics_total",
            "Job panics caught by the worker pool (job marked failed).",
            &[],
        );
        let checkpoints_written = registry.counter(
            "chronosd_checkpoints_written_total",
            "State-dir snapshots written (manifest plus job files).",
            &[],
        );
        let checkpoints_restored = registry.counter(
            "chronosd_checkpoints_restored_total",
            "Jobs restored from the state dir at boot.",
            &[],
        );
        let quarantines = registry.counter(
            "chronosd_quarantines_total",
            "Corrupt state files quarantined at boot.",
            &[],
        );
        DaemonObs {
            registry,
            logger: Arc::new(logger),
            fleet,
            connections,
            protocol_errors,
            slices_scheduled,
            job_panics,
            checkpoints_written,
            checkpoints_restored,
            quarantines,
        }
    }

    /// [`DaemonObs::new`] with a stderr logger at the level named by
    /// `CHRONOSD_LOG` (default `info`).
    pub fn from_env() -> DaemonObs {
        let level = std::env::var(LOG_ENV)
            .ok()
            .as_deref()
            .and_then(Level::parse)
            .unwrap_or(Level::Info);
        DaemonObs::new(Logger::stderr(level))
    }

    /// Counts one dispatched command (`chronosd_commands_total{cmd=…}`).
    /// Callers must map unrecognized client input to a fixed label (the
    /// daemon uses `"unknown"`) so label cardinality stays bounded.
    pub fn count_command(&self, cmd: &str) {
        self.registry
            .counter(
                "chronosd_commands_total",
                "Requests dispatched, by command.",
                &[("cmd", cmd)],
            )
            .inc();
    }

    /// Registers (or re-derives) the gauge bundle for job `name`.
    pub fn job_metrics(&self, name: &str) -> JobMetrics {
        let labels = [("job", name)];
        let gauge = |metric: &str, help: &str| self.registry.gauge(metric, help, &labels);
        JobMetrics {
            slice_wall: gauge(
                "chronosd_job_slice_wall_seconds",
                "Wall seconds of the job's most recent slice.",
            ),
            sim_per_wall: gauge(
                "chronosd_job_sim_seconds_per_wall_second",
                "Simulated seconds per wall second over the last slice.",
            ),
            events_per_sec: gauge(
                "chronosd_job_events_per_sec",
                "Client events stepped per wall second over the last slice.",
            ),
            checkpoint_bytes: gauge(
                "chronosd_job_checkpoint_bytes",
                "Size of the job's most recent checkpoint.",
            ),
            checkpoint_wall: gauge(
                "chronosd_job_checkpoint_wall_seconds",
                "Wall seconds the job's most recent checkpoint took.",
            ),
            watchers: gauge(
                "chronosd_job_watch_subscribers",
                "Live watch streams on this job.",
            ),
        }
    }

    /// Renders the registry as Prometheus text exposition (the payload
    /// of the `metrics` command).
    pub fn render(&self) -> String {
        self.registry.render_prometheus()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_carries_daemon_and_job_families() {
        let daemon = DaemonObs::new(Logger::stderr(Level::Error));
        daemon.connections.inc();
        daemon.count_command("ping");
        daemon.count_command("ping");
        let job = daemon.job_metrics("smoke");
        job.events_per_sec.set(123_456.0);
        job.watchers.add(1.0);
        let text = daemon.render();
        assert!(text.contains("chronosd_connections_total 1"));
        assert!(text.contains("chronosd_commands_total{cmd=\"ping\"} 2"));
        assert!(text.contains("chronosd_job_events_per_sec{job=\"smoke\"} 123456"));
        assert!(text.contains("chronosd_job_watch_subscribers{job=\"smoke\"} 1"));
        // Engine stage families are registered up front (zero-valued).
        assert!(text.contains("# TYPE fleet_stage_seconds histogram"));
        assert!(text.contains("fleet_events_total 0"));
        // The whole exposition must satisfy our own validator.
        obs::expo::parse(&text).expect("exposition parses");
    }

    #[test]
    fn job_metrics_are_idempotent_per_name() {
        let daemon = DaemonObs::new(Logger::stderr(Level::Error));
        let a = daemon.job_metrics("j");
        let b = daemon.job_metrics("j");
        a.slice_wall.set(2.0);
        assert_eq!(b.slice_wall.get(), 2.0);
    }
}
