//! Property tests: DNS wire format and cache invariants.

use dnslab::cache::{CacheKey, DnsCache};
use dnslab::name::Name;
use dnslab::wire::{Flags, Message, Question, RData, RcodeField, Record, RecordType};
use netsim::time::SimTime;
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z][a-z0-9-]{0,14}").expect("valid regex")
}

fn arb_name() -> impl Strategy<Value = Name> {
    proptest::collection::vec(arb_label(), 1..5)
        .prop_map(|labels| Name::from_labels(labels).expect("labels are valid"))
}

fn arb_rdata() -> impl Strategy<Value = RData> {
    prop_oneof![
        any::<u32>().prop_map(|bits| RData::A(Ipv4Addr::from(bits))),
        arb_name().prop_map(RData::Ns),
        arb_name().prop_map(RData::Cname),
        (any::<u16>(), arb_name()).prop_map(|(preference, exchange)| RData::Mx {
            preference,
            exchange
        }),
        proptest::collection::vec("[ -~]{0,40}", 1..3).prop_map(RData::Txt),
    ]
}

fn arb_record() -> impl Strategy<Value = Record> {
    (arb_name(), any::<u32>(), arb_rdata()).prop_map(|(name, ttl, rdata)| Record {
        name,
        ttl,
        rdata,
    })
}

proptest! {
    /// encode ∘ decode = identity for arbitrary well-formed messages.
    #[test]
    fn message_round_trip(
        id in any::<u16>(),
        qname in arb_name(),
        answers in proptest::collection::vec(arb_record(), 0..12),
        authorities in proptest::collection::vec(arb_record(), 0..4),
        additionals in proptest::collection::vec(arb_record(), 0..4),
        rd in any::<bool>(),
        aa in any::<bool>(),
    ) {
        let msg = Message {
            id,
            flags: Flags {
                response: true,
                authoritative: aa,
                recursion_desired: rd,
                rcode: RcodeField(dnslab::wire::Rcode::NoError),
                ..Flags::default()
            },
            question: vec![Question { name: qname, qtype: RecordType::A }],
            answers,
            authorities,
            additionals,
        };
        let wire = msg.encode();
        let back = Message::decode(&wire).unwrap();
        prop_assert_eq!(back, msg);
    }

    /// Decoding never panics on arbitrary bytes.
    #[test]
    fn decode_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        let _ = Message::decode(&bytes);
    }

    /// Tracked encoding is byte-identical to plain encoding and its spans
    /// index real field positions.
    #[test]
    fn tracked_encoding_consistent(
        qname in arb_name(),
        answers in proptest::collection::vec(arb_record(), 1..10),
    ) {
        let mut msg = Message::response_to(&Message::query(1, Question::a(qname)));
        msg.answers = answers;
        let (wire, spans) = msg.encode_tracked();
        prop_assert_eq!(&wire, &msg.encode());
        for span in &spans {
            let f = span.fields;
            prop_assert!(f.start < f.end);
            prop_assert!(f.end <= wire.len());
            prop_assert!(f.rdata_offset + f.rdata_len <= f.end);
            if let RData::A(addr) = span.record.rdata {
                prop_assert_eq!(&wire[f.rdata_offset..f.rdata_offset + 4], &addr.octets()[..]);
            }
        }
    }

    /// The cache never serves expired records, and remaining TTLs are
    /// bounded by the originals.
    #[test]
    fn cache_never_serves_expired(
        ttl in 1u32..5000,
        insert_at in 0u64..1000,
        query_delta in 0u64..10_000,
        count in 1usize..10,
    ) {
        let mut cache = DnsCache::new(64);
        let name: Name = "pool.ntp.org".parse().unwrap();
        let records: Vec<Record> = (0..count)
            .map(|i| Record::a(name.clone(), Ipv4Addr::new(10, 0, 0, i as u8 + 1), ttl))
            .collect();
        let t0 = SimTime::from_secs(insert_at);
        let t1 = SimTime::from_secs(insert_at + query_delta);
        cache.insert(t0, CacheKey::a(name.clone()), &records);
        match cache.get(t1, &CacheKey::a(name)) {
            Some(out) => {
                prop_assert!(query_delta < u64::from(ttl));
                for r in out {
                    prop_assert!(r.ttl <= ttl);
                    prop_assert!(u64::from(r.ttl) <= u64::from(ttl) - query_delta);
                }
            }
            None => prop_assert!(query_delta >= u64::from(ttl)),
        }
    }

    /// The TTL cap bounds every stored TTL.
    #[test]
    fn ttl_cap_is_respected(ttl in 1u32..200_000, cap in 1u32..100_000) {
        let mut cache = DnsCache::new(8);
        cache.set_ttl_cap(Some(cap));
        let name: Name = "pool.ntp.org".parse().unwrap();
        cache.insert(
            SimTime::ZERO,
            CacheKey::a(name.clone()),
            &[Record::a(name.clone(), Ipv4Addr::new(1, 2, 3, 4), ttl)],
        );
        if let Some(records) = cache.get(SimTime::ZERO, &CacheKey::a(name)) {
            for r in records {
                prop_assert!(r.ttl <= cap.min(ttl));
            }
        }
    }
}
